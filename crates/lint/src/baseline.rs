//! The committed findings baseline: grandfathered debt.
//!
//! Format — one entry per line, sorted, `#` comments allowed:
//!
//! ```text
//! D3 crates/dataset/src/pipeline.rs:134:10 `.expect()` in a supervision path
//! ```
//!
//! An entry matches a finding when rule, file, line, column *and message*
//! all agree, so any edit that moves or changes the grandfathered code
//! invalidates the entry. Both directions fail CI:
//!
//! * a finding with no entry is a **regression**;
//! * an entry with no finding is **stale** — the debt was paid (or the
//!   code moved) and the baseline must be regenerated, so the file can
//!   never accumulate dead weight.

use crate::{Finding, Outcome, RuleId};

/// One baseline line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    pub rule: RuleId,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Entry {
    fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && self.file == f.file
            && self.line == f.line
            && self.col == f.col
            && self.message == f.message
    }

    pub fn render(&self) -> String {
        format!(
            "{} {}:{}:{} {}",
            self.rule.as_str(),
            self.file,
            self.line,
            self.col,
            self.message
        )
    }
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

impl Baseline {
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the committed format; malformed lines are hard errors (a
    /// baseline that silently drops entries hides regressions).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let entry = parse_entry(line)
                .ok_or_else(|| format!("baseline line {}: malformed entry {line:?}", n + 1))?;
            entries.push(entry);
        }
        Ok(Self { entries })
    }

    /// Renders findings as a fresh baseline file.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# divide-lint baseline — grandfathered findings.\n\
             # Regenerate with `divide-lint --write-baseline`; CI fails on any finding\n\
             # not listed here AND on any entry that no longer matches a finding.\n",
        );
        for f in findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out
    }

    /// Splits findings into new vs baselined, and reports stale entries.
    pub fn judge(&self, findings: Vec<Finding>) -> Outcome {
        let mut used = vec![false; self.entries.len()];
        let mut new = Vec::new();
        let mut baselined = Vec::new();
        for f in findings {
            match self.entries.iter().position(|e| e.matches(&f)) {
                Some(i) => {
                    used[i] = true;
                    baselined.push(f);
                }
                None => new.push(f),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.clone())
            .collect();
        Outcome {
            new,
            baselined,
            stale,
        }
    }
}

fn parse_entry(line: &str) -> Option<Entry> {
    let (rule, rest) = line.split_once(' ')?;
    let rule = RuleId::parse(rule)?;
    let (loc, message) = rest.split_once(' ')?;
    // file:line:col — the file part may itself contain no colons by
    // construction (workspace-relative, forward slashes).
    let mut parts = loc.rsplitn(3, ':');
    let col: u32 = parts.next()?.parse().ok()?;
    let line_no: u32 = parts.next()?.parse().ok()?;
    let file = parts.next()?.to_string();
    if file.is_empty() || message.is_empty() {
        return None;
    }
    Some(Entry {
        rule,
        file,
        line: line_no,
        col,
        message: message.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, file: &str, line: u32, msg: &str) -> Finding {
        Finding {
            file: file.into(),
            line,
            col: 5,
            rule,
            message: msg.into(),
            hint: String::new(),
        }
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let f = finding(RuleId::D3, "crates/x/src/a.rs", 10, "`.unwrap()` somewhere");
        let text = Baseline::render(std::slice::from_ref(&f));
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries.len(), 1);
        assert!(parsed.entries[0].matches(&f));
    }

    #[test]
    fn judge_splits_new_baselined_and_stale() {
        let old = finding(RuleId::D3, "a.rs", 1, "old debt");
        let gone = finding(RuleId::D1, "b.rs", 2, "paid off");
        let text = Baseline::render(&[old.clone(), gone]);
        let base = Baseline::parse(&text).unwrap();

        let fresh = finding(RuleId::D2, "c.rs", 3, "regression");
        let outcome = base.judge(vec![old.clone(), fresh.clone()]);
        assert_eq!(outcome.baselined, vec![old]);
        assert_eq!(outcome.new, vec![fresh]);
        assert_eq!(outcome.stale.len(), 1);
        assert_eq!(outcome.stale[0].file, "b.rs");
        assert!(!outcome.is_clean());
    }

    #[test]
    fn malformed_lines_are_hard_errors() {
        for bad in ["Z9 a.rs:1:1 nope", "D3 missing-loc", "D3 a.rs:x:1 msg"] {
            assert!(Baseline::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
