//! A lightweight, panic-free Rust lexer with line/column tracking.
//!
//! The analyzer's rules are lexical: they match token *sequences*
//! (`Instant :: now`, `. unwrap ( )`) and never need types or a full
//! parse tree, so a tokenizer that strips comments and string noise is
//! enough — and keeps the workspace's offline vendor policy (no `syn`).
//!
//! Design constraints:
//!
//! * **Total**: `lex` terminates and never panics on arbitrary input
//!   (including invalid UTF-8 via [`lex_bytes`] and unterminated
//!   strings/comments); a proptest pins this down. Malformed trailing
//!   constructs degrade to best-effort tokens, never errors — a linter
//!   that dies on weird input protects nothing.
//! * **Position-faithful**: every token carries the 1-based line and
//!   column of its first character, so findings are clickable.
//! * **Suppression-aware**: `// lint:allow(rule,...): reason` comments are
//!   collected (with their line) while ordinary comments are discarded.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// Token classes the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `for`, `_`, `r#raw`).
    Ident(String),
    /// String literal *content* (escapes resolved for `\"` and `\\` only;
    /// raw strings verbatim). Byte strings land here too.
    Str(String),
    /// Character literal (content irrelevant to every rule).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime(String),
    /// Numeric literal (digits and suffix folded together).
    Num(String),
    /// A single punctuation character (`:`, `=`, `>`, `.`, `{`, ...).
    /// Multi-character operators arrive as consecutive tokens.
    Punct(char),
}

/// A `// lint:allow(RULES): reason` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Source line the comment sits on (suppresses findings on this line
    /// and the next — "above the offending line" style).
    pub line: u32,
    /// Rule ids named in the parentheses, e.g. `["D3"]`.
    pub rules: Vec<String>,
    /// The free-text reason after the colon (may be empty; the lint that
    /// *requires* a reason checks this).
    pub reason: String,
}

/// The full result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
}

/// Lexes raw bytes: invalid UTF-8 is replaced (lossy) before lexing, so
/// the lexer is total over arbitrary byte strings.
pub fn lex_bytes(bytes: &[u8]) -> Lexed {
    lex(&String::from_utf8_lossy(bytes))
}

/// Lexes a source string into tokens plus suppression comments.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one character, maintaining line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, line: u32, col: u32) {
        self.out.tokens.push(Token { kind, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, col),
                'r' | 'b' if self.raw_or_byte_prefix() => { /* handled inside */ }
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c), line, col);
                }
            }
        }
        self.out
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `rb...` and
    /// falls through (returning false) when the `r`/`b` starts a plain
    /// identifier. `r#ident` raw identifiers are lexed as identifiers.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let (line, col) = (self.line, self.col);
        let mut j = 0usize;
        // Optional b, optional r, then hashes+quote (raw) or quote (plain).
        let mut saw_r = false;
        match self.peek(j) {
            Some('b') => {
                j += 1;
                if self.peek(j) == Some('r') {
                    saw_r = true;
                    j += 1;
                }
            }
            Some('r') => {
                saw_r = true;
                j += 1;
            }
            _ => return false,
        }
        let mut hashes = 0usize;
        while saw_r && self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        if self.peek(j) != Some('"') {
            // `r#ident` raw identifier: consume as an identifier.
            if saw_r && hashes == 1 && self.peek(j).is_some_and(unicode_ident_start) {
                self.bump(); // r
                self.bump(); // #
                self.ident(line, col);
                return true;
            }
            return false;
        }
        if hashes > 0 || saw_r {
            // Raw string: consume prefix + hashes + opening quote.
            for _ in 0..(j + 1) {
                self.bump();
            }
            let mut content = String::new();
            loop {
                match self.bump() {
                    None => break, // unterminated: tolerate
                    Some('"') => {
                        // Need `hashes` following '#' characters to close.
                        let mut k = 0usize;
                        while k < hashes && self.peek(k) == Some('#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..hashes {
                                self.bump();
                            }
                            break;
                        }
                        content.push('"');
                    }
                    Some(c) => content.push(c),
                }
            }
            self.push(TokKind::Str(content), line, col);
            true
        } else {
            // b"..." plain byte string: consume the `b`, then the string.
            self.bump();
            self.string(line, col);
            true
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if let Some(supp) = parse_suppression(&text, line) {
            self.out.suppressions.push(supp);
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => break, // unterminated: tolerate
                Some('/') if self.peek(0) == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek(0) == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
            }
        }
    }

    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut content = String::new();
        loop {
            match self.bump() {
                None => break, // unterminated: tolerate
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => content.push('"'),
                    Some('\\') => content.push('\\'),
                    Some(c) => {
                        // Other escapes kept raw; rules only compare
                        // escape-free wire names.
                        content.push('\\');
                        content.push(c);
                    }
                    None => break,
                },
                Some(c) => content.push(c),
            }
        }
        self.push(TokKind::Str(content), line, col);
    }

    /// Disambiguates `'a'` / `'\n'` (char) from `'a` / `'static` (lifetime).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then closing quote.
                self.bump();
                self.bump(); // escape payload (simplified; \u{..} below)
                if self.peek(0) == Some('{') {
                    while let Some(c) = self.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, line, col);
            }
            Some(c) if unicode_ident_start(c) && self.peek(1) != Some('\'') => {
                // Lifetime: ident chars follow, no closing quote.
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if unicode_ident_continue(c) {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime(name), line, col);
            }
            Some(_) => {
                // 'x' char literal.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, line, col);
            }
            None => {
                self.push(TokKind::Char, line, col);
            }
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if unicode_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident(name), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Digits, underscores, hex/float/suffix letters, exponent
            // signs. Over-eager is fine: no rule inspects numbers.
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                // A `.` only belongs to the number if a digit follows
                // (so `0..n` and `1.max(2)` stay three tokens).
                if c == '.' && !self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    break;
                }
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num(text), line, col);
        let _ = self.src; // keep the borrow used
    }
}

fn unicode_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn unicode_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses `lint:allow(D1,D3): reason` out of one line comment's text.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    let reason = tail.strip_prefix(':').unwrap_or("").trim().to_string();
    Some(Suppression {
        line,
        rules,
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped_from_ident_stream() {
        let src = r#"
            // Instant::now in a comment
            /* HashMap::iter in /* a nested */ block */
            let x = "Instant::now() in a string";
            call(x);
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert_eq!(
            ids,
            vec!["let", "x", "call", "x"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn raw_strings_with_hashes_lex_as_one_token() {
        let lexed = lex(r###"let s = r#"quote " inside"#; next()"###);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["quote \" inside"]);
        assert!(idents(r###"let s = r#"quote " inside"#; next()"###).contains(&"next".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_the_following_code() {
        // Lifetimes lex as `Lifetime` tokens, never as identifiers.
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(ids, vec!["fn", "f", "x", "str", "str", "x"]);
        let lts: Vec<String> = lex("&'static STR")
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Lifetime(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lts, vec!["static"]);
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let lexed = lex("let c = 'x'; let n = '\\n'; let u = '\\u{1F600}';");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn positions_are_one_based_line_and_column() {
        let lexed = lex("ab\n  cd");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn suppression_comments_are_collected() {
        let src = "x();\n// lint:allow(D3, E1): poisoning contract\ny();";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 1);
        let s = &lexed.suppressions[0];
        assert_eq!(s.line, 2);
        assert_eq!(s.rules, vec!["D3", "E1"]);
        assert_eq!(s.reason, "poisoning contract");
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in [
            "\"unterminated",
            "/* unterminated",
            "r#\"unterminated",
            "'",
            "'\\",
            "b\"",
            "r###\"deep",
        ] {
            let _ = lex(src);
        }
    }

    #[test]
    fn number_dots_leave_ranges_and_method_calls_alone() {
        let ids = idents("for i in 0..n { x.max(1.5); }");
        assert!(ids.contains(&"max".to_string()));
        assert!(ids.contains(&"n".to_string()));
    }
}
