//! The rule families. Each module exposes `check(...)`, pushing
//! [`Finding`](crate::Finding)s for one source file (or, for the
//! cross-file rules E1/W1, for the whole workspace).

pub mod determinism;
pub mod exhaustive;
pub mod ordering;
pub mod panics;
pub mod posture;
