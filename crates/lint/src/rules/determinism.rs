//! **D1** — determinism: replay-critical crates must not read the wall
//! clock, OS entropy, or the process environment.
//!
//! A journaled resume replays attempts on the *virtual* clock with draws
//! derived from `(seed, tag, attempt)`; any ambient input desynchronizes
//! the resumed run from the original and silently voids the
//! byte-identity guarantees (DESIGN.md §7). Tests are exempt — they may
//! stage temp dirs and real time freely.

use crate::scan::{self, SourceFile};
use crate::{Finding, RuleId};

/// `(path segments, what, hint)` — a match on the qualified path.
const BANNED_PATHS: &[(&[&str], &str, &str)] = &[
    (
        &["Instant", "now"],
        "wall-clock read `Instant::now()` in a replay-critical crate",
        "use the campaign's virtual clock (`SimTime`/`EventQueue`) instead",
    ),
    (
        &["SystemTime", "now"],
        "wall-clock read `SystemTime::now()` in a replay-critical crate",
        "use the campaign's virtual clock (`SimTime`/`EventQueue`) instead",
    ),
    (
        &["std", "time", "Instant"],
        "import of `std::time::Instant` in a replay-critical crate",
        "use the campaign's virtual clock (`SimTime`/`EventQueue`) instead",
    ),
    (
        &["std", "time", "SystemTime"],
        "import of `std::time::SystemTime` in a replay-critical crate",
        "use the campaign's virtual clock (`SimTime`/`EventQueue`) instead",
    ),
    (
        &["std", "env"],
        "process-environment read via `std::env` in a replay-critical crate",
        "thread configuration through `BqtConfig`/`CurationOptions` instead",
    ),
];

/// Bare identifiers that always mean OS entropy.
const BANNED_IDENTS: &[(&str, &str, &str)] = &[
    (
        "thread_rng",
        "OS-entropy RNG `thread_rng` in a replay-critical crate",
        "derive a seeded `StdRng` from the campaign seed (`mix64`)",
    ),
    (
        "from_entropy",
        "OS-entropy seeding `from_entropy` in a replay-critical crate",
        "derive a seeded `StdRng` from the campaign seed (`mix64`)",
    ),
];

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let tokens = file.tokens();
    for i in 0..tokens.len() {
        let tok = &tokens[i];
        if file.is_test_line(tok.line) {
            continue;
        }
        for (segs, what, hint) in BANNED_PATHS {
            if scan::path_at(tokens, i, segs).is_some() {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: tok.line,
                    col: tok.col,
                    rule: RuleId::D1,
                    message: (*what).to_string(),
                    hint: (*hint).to_string(),
                });
            }
        }
        for (name, what, hint) in BANNED_IDENTS {
            if scan::is_ident(tok, name) {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: tok.line,
                    col: tok.col,
                    rule: RuleId::D1,
                    message: (*what).to_string(),
                    hint: (*hint).to_string(),
                });
            }
        }
    }
}
