//! **D1** — determinism: replay-critical crates must not read the wall
//! clock, OS entropy, or the process environment.
//!
//! A journaled resume replays attempts on the *virtual* clock with draws
//! derived from `(seed, tag, attempt)`; any ambient input desynchronizes
//! the resumed run from the original and silently voids the
//! byte-identity guarantees (DESIGN.md §7). Tests are exempt — they may
//! stage temp dirs and real time freely.

use crate::scan::{self, SourceFile};
use crate::{Finding, RuleId};

/// `(path segments, what, hint)` — a match on the qualified path. The
/// `what` is context-free ("wall-clock read `Instant::now()`"): D1
/// suffixes "in a replay-critical crate", the T1 taint rule suffixes
/// the entry point it leaks into.
pub(crate) const BANNED_PATHS: &[(&[&str], &str, &str)] = &[
    (
        &["Instant", "now"],
        "wall-clock read `Instant::now()`",
        "use the campaign's virtual clock (`SimTime`/`EventQueue`) instead",
    ),
    (
        &["SystemTime", "now"],
        "wall-clock read `SystemTime::now()`",
        "use the campaign's virtual clock (`SimTime`/`EventQueue`) instead",
    ),
    (
        &["std", "time", "Instant"],
        "import of `std::time::Instant`",
        "use the campaign's virtual clock (`SimTime`/`EventQueue`) instead",
    ),
    (
        &["std", "time", "SystemTime"],
        "import of `std::time::SystemTime`",
        "use the campaign's virtual clock (`SimTime`/`EventQueue`) instead",
    ),
    (
        &["std", "env"],
        "process-environment read via `std::env`",
        "thread configuration through `BqtConfig`/`CurationOptions` instead",
    ),
];

/// Bare identifiers that always mean OS entropy.
pub(crate) const BANNED_IDENTS: &[(&str, &str, &str)] = &[
    (
        "thread_rng",
        "OS-entropy RNG `thread_rng`",
        "derive a seeded `StdRng` from the campaign seed (`mix64`)",
    ),
    (
        "from_entropy",
        "OS-entropy seeding `from_entropy`",
        "derive a seeded `StdRng` from the campaign seed (`mix64`)",
    ),
];

/// Ambient-input sites in `tokens[range]`, as `(token index, what, hint)`.
pub(crate) fn ambient_sites(
    tokens: &[crate::lexer::Token],
    range: (usize, usize),
) -> Vec<(usize, &'static str, &'static str)> {
    let mut out = Vec::new();
    if tokens.is_empty() || range.0 > range.1 {
        return out;
    }
    let end = range.1.min(tokens.len() - 1);
    for i in range.0..=end {
        for (segs, what, hint) in BANNED_PATHS {
            if scan::path_at(tokens, i, segs).is_some() {
                out.push((i, *what, *hint));
            }
        }
        for (name, what, hint) in BANNED_IDENTS {
            if scan::is_ident(&tokens[i], name) {
                out.push((i, *what, *hint));
            }
        }
    }
    out
}

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let tokens = file.tokens();
    if tokens.is_empty() {
        return;
    }
    for (i, what, hint) in ambient_sites(tokens, (0, tokens.len() - 1)) {
        let tok = &tokens[i];
        if file.is_test_line(tok.line) {
            continue;
        }
        findings.push(Finding {
            file: file.rel.clone(),
            line: tok.line,
            col: tok.col,
            rule: RuleId::D1,
            message: format!("{what} in a replay-critical crate"),
            hint: hint.to_string(),
        });
    }
}
