//! **D3** — panic safety: supervision code (orchestrator, driver,
//! journal, monitor, telemetry fan-out) must not `unwrap()` or
//! `expect()` outside tests.
//!
//! A panic in these paths doesn't just kill one query: it tears down the
//! whole campaign mid-journal (leaving recovery to the torn-tail
//! scanner) or rips through the recorder fan-out the poisoning machinery
//! exists to protect. Fallible paths return typed errors
//! (`JournalError`); genuinely-infallible spots are restructured
//! (`let .. else`, `map_or`) or carry an explicit
//! `// lint:allow(D3): reason` stating the contract.

use crate::scan::{self, SourceFile};
use crate::{Finding, RuleId};

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let tokens = file.tokens();
    for i in 1..tokens.len() {
        let tok = &tokens[i];
        if file.is_test_line(tok.line) {
            continue;
        }
        let Some(name) = scan::ident_name(tok) else {
            continue;
        };
        let is_call = |n: usize| tokens.get(n).is_some_and(|t| scan::is_punct(t, '('));
        if !scan::is_punct(&tokens[i - 1], '.') || !is_call(i + 1) {
            continue;
        }
        let message = match name {
            // `.unwrap()` exactly: `unwrap_or*` are total and fine.
            "unwrap" if tokens.get(i + 2).is_some_and(|t| scan::is_punct(t, ')')) => {
                "`.unwrap()` in a supervision path"
            }
            "expect" => "`.expect()` in a supervision path",
            _ => continue,
        };
        findings.push(Finding {
            file: file.rel.clone(),
            line: tok.line,
            col: tok.col,
            rule: RuleId::D3,
            message: message.to_string(),
            hint: "return a typed error, restructure with let-else/map_or, or justify with \
                   `// lint:allow(D3): reason`"
                .into(),
        });
    }
}
