//! **E1** — telemetry exhaustiveness: every `EventKind` variant must be
//! covered by the JSONL serializer, the JSONL parser, the replay-stable
//! subset filter, and the `MetricsAggregator` — and none of those
//! surfaces may hide behind a wildcard arm.
//!
//! This is what makes the wire format a *closed* schema: adding an event
//! variant without teaching the serializer (or the parser its wire name)
//! fails CI with a `file:line` diagnostic instead of silently dropping
//! the event from `events.jsonl`, the resume byte-identity check, and
//! the health dashboard.

use crate::lexer::TokKind;
use crate::scan::{self, SourceFile};
use crate::{E1Config, Finding, RuleId};
use std::collections::BTreeSet;

pub fn check(cfg: &E1Config, files: &[SourceFile], findings: &mut Vec<Finding>) {
    let Some(enum_file) = files.iter().find(|f| f.rel == cfg.enum_file) else {
        findings.push(config_error(
            cfg,
            format!("enum file {} not found", cfg.enum_file),
        ));
        return;
    };
    let Some(variants) = scan::enum_variants(enum_file.tokens(), &cfg.enum_name) else {
        findings.push(config_error(
            cfg,
            format!("enum {} not found in {}", cfg.enum_name, cfg.enum_file),
        ));
        return;
    };
    if variants.is_empty() {
        findings.push(config_error(
            cfg,
            format!("enum {} has no variants", cfg.enum_name),
        ));
        return;
    }

    // Variant-coverage surfaces: each must name every variant (as
    // `EventKind::V`) and contain no `_ =>` wildcard arm.
    let surfaces: [(&SourceFile, &str, &str); 4] = [
        (enum_file, cfg.name_fn.as_str(), "wire-name map"),
        (enum_file, cfg.stable_fn.as_str(), "replay-stable filter"),
        (
            match files.iter().find(|f| f.rel == cfg.serializer_file) {
                Some(f) => f,
                None => {
                    findings.push(config_error(
                        cfg,
                        format!("serializer file {} not found", cfg.serializer_file),
                    ));
                    return;
                }
            },
            cfg.serialize_fn.as_str(),
            "JSONL serializer",
        ),
        (
            match files.iter().find(|f| f.rel == cfg.aggregator_file) {
                Some(f) => f,
                None => {
                    findings.push(config_error(
                        cfg,
                        format!("aggregator file {} not found", cfg.aggregator_file),
                    ));
                    return;
                }
            },
            cfg.aggregate_fn.as_str(),
            "metrics aggregator",
        ),
    ];

    for (file, fn_name, label) in surfaces {
        check_surface(cfg, file, fn_name, label, &variants, findings);
    }

    // Parser coverage is by wire name: every string the `name()` map
    // yields must appear as a string literal inside the parse fn.
    check_parser(cfg, enum_file, files, &variants, findings);
}

fn check_surface(
    cfg: &E1Config,
    file: &SourceFile,
    fn_name: &str,
    label: &str,
    variants: &[String],
    findings: &mut Vec<Finding>,
) {
    let tokens = file.tokens();
    let Some((fn_kw, open, close)) = scan::fn_span(tokens, fn_name) else {
        findings.push(Finding {
            file: file.rel.clone(),
            line: 1,
            col: 1,
            rule: RuleId::E1,
            message: format!("{label} `fn {fn_name}` not found"),
            hint: format!("the telemetry schema requires `{fn_name}` to exist and stay exhaustive"),
        });
        return;
    };
    let at = &tokens[fn_kw];
    let body = &tokens[open..=close];

    // Which variants does the body name as `Enum::Variant`?
    let mut covered = BTreeSet::new();
    for i in 0..body.len() {
        if scan::is_ident(&body[i], &cfg.enum_name) {
            if let Some(end) = scan::path_at(body, i, &[cfg.enum_name.as_str()]) {
                if body.get(end).is_some_and(|t| scan::is_punct(t, ':'))
                    && body.get(end + 1).is_some_and(|t| scan::is_punct(t, ':'))
                {
                    if let Some(v) = body.get(end + 2).and_then(scan::ident_name) {
                        covered.insert(v.to_string());
                    }
                }
            }
        }
    }
    for v in variants {
        if !covered.contains(v) {
            findings.push(Finding {
                file: file.rel.clone(),
                line: at.line,
                col: at.col,
                rule: RuleId::E1,
                message: format!(
                    "{label} `fn {fn_name}` does not cover `{}::{v}`",
                    cfg.enum_name
                ),
                hint: format!("add an explicit `{}::{v}` arm — no wildcard", cfg.enum_name),
            });
        }
    }

    // `_ =>` hides future variants from this surface.
    for i in 0..body.len() {
        if scan::is_ident(&body[i], "_")
            && body.get(i + 1).is_some_and(|t| scan::is_punct(t, '='))
            && body.get(i + 2).is_some_and(|t| scan::is_punct(t, '>'))
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: body[i].line,
                col: body[i].col,
                rule: RuleId::E1,
                message: format!("wildcard `_ =>` arm in {label} `fn {fn_name}`"),
                hint: "enumerate the remaining variants explicitly so new events cannot \
                       silently skip this surface"
                    .into(),
            });
        }
    }
}

fn check_parser(
    cfg: &E1Config,
    enum_file: &SourceFile,
    files: &[SourceFile],
    variants: &[String],
    findings: &mut Vec<Finding>,
) {
    let Some(parser_file) = files.iter().find(|f| f.rel == cfg.serializer_file) else {
        return; // already reported
    };
    let Some((_, open, close)) = scan::fn_span(enum_file.tokens(), &cfg.name_fn) else {
        return; // already reported
    };
    let wire_names: Vec<&str> = enum_file.tokens()[open..=close]
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    if wire_names.len() != variants.len() {
        findings.push(Finding {
            file: enum_file.rel.clone(),
            line: enum_file.tokens()[open].line,
            col: enum_file.tokens()[open].col,
            rule: RuleId::E1,
            message: format!(
                "wire-name map `fn {}` yields {} names for {} variants",
                cfg.name_fn,
                wire_names.len(),
                variants.len()
            ),
            hint: "one wire name per variant, no sharing".into(),
        });
    }
    let Some((fn_kw, popen, pclose)) = scan::fn_span(parser_file.tokens(), &cfg.parse_fn) else {
        findings.push(Finding {
            file: parser_file.rel.clone(),
            line: 1,
            col: 1,
            rule: RuleId::E1,
            message: format!("JSONL parser `fn {}` not found", cfg.parse_fn),
            hint: "the wire format must stay strictly re-parseable".into(),
        });
        return;
    };
    let parsed: BTreeSet<&str> = parser_file.tokens()[popen..=pclose]
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let at = &parser_file.tokens()[fn_kw];
    for name in wire_names {
        if !parsed.contains(name) {
            findings.push(Finding {
                file: parser_file.rel.clone(),
                line: at.line,
                col: at.col,
                rule: RuleId::E1,
                message: format!(
                    "JSONL parser `fn {}` does not handle wire name {name:?}",
                    cfg.parse_fn
                ),
                hint: "add the match arm so parse→serialize stays byte-identical".into(),
            });
        }
    }
}

fn config_error(cfg: &E1Config, message: String) -> Finding {
    Finding {
        file: cfg.enum_file.clone(),
        line: 1,
        col: 1,
        rule: RuleId::E1,
        message,
        hint: "fix the E1 configuration or restore the schema surface".into(),
    }
}
