//! **W1** — workspace lint posture: the root manifest must declare a
//! shared `[workspace.lints]` table and every member must opt in with
//! `[lints] workspace = true`, so `cargo clippy -- -D warnings` has one
//! source of truth (and `unsafe_code = "deny"` reaches every crate).

use crate::{Finding, RuleId};
use std::path::Path;

pub fn check(
    root: &Path,
    member_dirs: &[String],
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let root_manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest)
        .map_err(|e| format!("cannot read {}: {e}", root_manifest.display()))?;
    if !text.contains("[workspace.lints") {
        findings.push(manifest_finding(
            "Cargo.toml",
            "workspace manifest has no `[workspace.lints]` table",
            "declare the shared lint table (rust.unsafe_code = \"deny\" plus the clippy set)",
        ));
    }

    let mut manifests: Vec<String> = Vec::new();
    for dir in member_dirs {
        let base = root.join(dir);
        let Ok(entries) = std::fs::read_dir(&base) else {
            continue;
        };
        for entry in entries.flatten() {
            let manifest = entry.path().join("Cargo.toml");
            if manifest.is_file() {
                manifests.push(format!(
                    "{}/{}/Cargo.toml",
                    dir,
                    entry.file_name().to_string_lossy()
                ));
            }
        }
    }
    manifests.sort();
    for rel in manifests {
        let text = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        if !opts_in(&text) {
            findings.push(manifest_finding(
                &rel,
                "member does not opt into the shared `[workspace.lints]` table",
                "add `[lints]\\nworkspace = true` to the manifest",
            ));
        }
    }
    Ok(())
}

/// A `[lints]` section whose body sets `workspace = true`.
fn opts_in(manifest: &str) -> bool {
    let Some(at) = manifest.find("[lints]") else {
        return false;
    };
    let body = &manifest[at + "[lints]".len()..];
    let end = body.find("\n[").unwrap_or(body.len());
    body[..end]
        .lines()
        .any(|l| l.split('#').next().unwrap_or("").replace(' ', "") == "workspace=true")
}

fn manifest_finding(rel: &str, message: &str, hint: &str) -> Finding {
    Finding {
        file: rel.to_string(),
        line: 1,
        col: 1,
        rule: RuleId::W1,
        message: message.to_string(),
        hint: hint.to_string(),
    }
}
