//! **D2** — ordered output: files that emit serialized or ordered
//! artifacts (the WAL, `events.jsonl`, `health.prom`, `profile.folded`,
//! dataset CSVs) must not iterate `HashMap`/`HashSet`.
//!
//! Hash iteration order is arbitrary and — with a randomized hasher —
//! varies between *runs of the same binary*, so one `for (k, v) in &map`
//! feeding a writer breaks byte-identity across crash/resume. Keyed
//! lookups (`get`, `entry`, `remove`, `insert`) are fine; only
//! order-revealing iteration is flagged. The fix is `BTreeMap`/`BTreeSet`
//! or an explicit collect-and-sort.
//!
//! The rule is lexical: it tracks identifiers *declared* with a hash-map
//! type in the same file (let annotations, struct fields, fn params,
//! `= HashMap::new()` initializers) and flags iteration over them. An
//! unordered map that crosses file boundaries into an ordered-output
//! file should be converted at its declaration — which this rule forces,
//! because the declaring file is in scope whenever its consumers are.

use crate::lexer::Token;
use crate::scan::{self, SourceFile};
use crate::{Finding, RuleId};
use std::collections::BTreeSet;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that reveal iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    let tokens = file.tokens();
    for (i, name, how) in iteration_sites(tokens) {
        let tok = &tokens[i];
        if file.is_test_line(tok.line) {
            continue;
        }
        findings.push(finding(file, tok, &name, how));
    }
}

/// Hash-order iteration sites as `(token index, map name, how)` —
/// shared with the T1 taint rule, which treats them as determinism
/// sources inside fn bodies rather than per-file findings.
pub(crate) fn iteration_sites(tokens: &[Token]) -> Vec<(usize, String, &'static str)> {
    let tracked = tracked_idents(tokens);
    let mut out = Vec::new();
    if tracked.is_empty() {
        return out;
    }
    for i in 0..tokens.len() {
        // `name.iter()` / `self.name.keys()` — the receiver ident sits
        // two tokens before the method name.
        if let Some(method) = scan::ident_name(&tokens[i]) {
            if let Some(&known) = ITER_METHODS.iter().find(|m| **m == method) {
                if i >= 2
                    && scan::is_punct(&tokens[i - 1], '.')
                    && scan::ident_name(&tokens[i - 2]).is_some_and(|n| tracked.contains(n))
                    && tokens.get(i + 1).is_some_and(|t| scan::is_punct(t, '('))
                {
                    let name = scan::ident_name(&tokens[i - 2]).unwrap_or_default();
                    out.push((i, name.to_string(), known));
                }
            }
            // `for x in &name { ... }` — implicit IntoIterator.
            if method == "in" {
                if let Some((name, k)) = for_in_target(tokens, i, &tracked) {
                    out.push((k, name.to_string(), "for-in"));
                }
            }
        }
    }
    out
}

fn finding(file: &SourceFile, tok: &Token, name: &str, how: &str) -> Finding {
    Finding {
        file: file.rel.clone(),
        line: tok.line,
        col: tok.col,
        rule: RuleId::D2,
        message: format!(
            "iteration (`{how}`) over unordered map `{name}` in an ordered-output file"
        ),
        hint: "declare it as BTreeMap/BTreeSet, or collect and sort explicitly before emitting"
            .into(),
    }
}

/// After `in`, skip `&`, `mut`, `self`, `.`; if the next ident is tracked
/// and the loop body opens right after it, that's hash-order iteration.
/// Returns `(name, token index of the name)`.
fn for_in_target<'a>(
    tokens: &'a [Token],
    in_idx: usize,
    tracked: &BTreeSet<String>,
) -> Option<(&'a str, usize)> {
    let mut k = in_idx + 1;
    while k < tokens.len() {
        let t = &tokens[k];
        if scan::is_punct(t, '&') || scan::is_ident(t, "mut") || scan::is_ident(t, "self") {
            k += 1;
            continue;
        }
        if scan::is_punct(t, '.') {
            k += 1;
            continue;
        }
        break;
    }
    let name = scan::ident_name(tokens.get(k)?)?;
    if !tracked.contains(name) {
        return None;
    }
    // Only a direct `{` means the map itself is the iterator; a method
    // call on it is judged by the method rule instead.
    if scan::is_punct(tokens.get(k + 1)?, '{') {
        Some((name, k))
    } else {
        None
    }
}

/// Identifiers declared with a hash-map type anywhere in the file:
/// `name: HashMap<..>` (fields, params, let annotations) and
/// `name = HashMap::new()` style initializers.
fn tracked_idents(tokens: &[Token]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for i in 0..tokens.len() {
        let Some(ty) = scan::ident_name(&tokens[i]) else {
            continue;
        };
        if !HASH_TYPES.contains(&ty) {
            continue;
        }
        // Walk left over a qualifying path (`std :: collections ::`).
        let mut j = i;
        while j >= 2
            && scan::is_punct(&tokens[j - 1], ':')
            && scan::is_punct(&tokens[j - 2], ':')
            && j >= 3
            && scan::ident_name(&tokens[j - 3]).is_some()
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        // `name : HashMap` — annotation (let / field / param).
        if scan::is_punct(&tokens[j - 1], ':')
            && j >= 2
            && !scan::is_punct(&tokens[j - 2], ':')
            && scan::ident_name(&tokens[j - 2]).is_some()
        {
            if let Some(name) = scan::ident_name(&tokens[j - 2]) {
                tracked.insert(name.to_string());
            }
        }
        // `name = HashMap::...` — inferred-type initializer.
        if scan::is_punct(&tokens[j - 1], '=')
            && j >= 2
            && scan::ident_name(&tokens[j - 2]).is_some()
        {
            if let Some(name) = scan::ident_name(&tokens[j - 2]) {
                tracked.insert(name.to_string());
            }
        }
    }
    tracked
}
