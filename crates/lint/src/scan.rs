//! Per-file scaffolding shared by every rule: a lexed source file with
//! its test regions resolved, plus token-sequence matching helpers.

use crate::lexer::{self, Lexed, TokKind, Token};

/// One lexed source file plus the line ranges occupied by test code.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    pub lexed: Lexed,
    /// Inclusive `(start_line, end_line)` ranges of `#[test]` functions
    /// and `#[cfg(test)]` items — exempt from D1/D2/D3.
    pub test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    pub fn new(rel: String, bytes: &[u8]) -> Self {
        let lexed = lexer::lex_bytes(bytes);
        let test_ranges = test_line_ranges(&lexed.tokens);
        Self {
            rel,
            lexed,
            test_ranges,
        }
    }

    /// Whether `line` falls inside test-only code. Integration-test and
    /// bench/example trees are exempt wholesale by path.
    pub fn is_test_line(&self, line: u32) -> bool {
        path_is_test(&self.rel)
            || self
                .test_ranges
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }

    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }
}

/// Paths whose entire contents are test/bench/example code.
fn path_is_test(rel: &str) -> bool {
    let prefixed = format!("/{rel}");
    ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|d| prefixed.contains(d))
}

/// Whether `rel` falls under any scope prefix.
pub fn in_scope(rel: &str, scopes: &[String]) -> bool {
    scopes.iter().any(|s| rel.starts_with(s.as_str()))
}

pub fn is_ident(tok: &Token, name: &str) -> bool {
    matches!(&tok.kind, TokKind::Ident(s) if s == name)
}

pub fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokKind::Punct(c)
}

pub fn ident_name(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Matches `segs[0] :: segs[1] :: ...` starting at `i`; returns the index
/// one past the match.
pub fn path_at(tokens: &[Token], i: usize, segs: &[&str]) -> Option<usize> {
    let mut at = i;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            if !(is_punct(tokens.get(at)?, ':') && is_punct(tokens.get(at + 1)?, ':')) {
                return None;
            }
            at += 2;
        }
        if !is_ident(tokens.get(at)?, seg) {
            return None;
        }
        at += 1;
    }
    Some(at)
}

/// Finds the span of `fn name`'s body: token indices `(fn_kw, open, close)`
/// where `open`/`close` delimit the body braces. Searches past earlier
/// same-named bindings; the first `fn name` wins.
pub fn fn_span(tokens: &[Token], name: &str) -> Option<(usize, usize, usize)> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if is_ident(&tokens[i], "fn") && is_ident(&tokens[i + 1], name) {
            // The body is the first `{` after the signature; generics,
            // argument lists and return types carry no braces.
            let mut j = i + 2;
            while j < tokens.len() && !is_punct(&tokens[j], '{') {
                if is_punct(&tokens[j], ';') {
                    // Trait method signature without a body; keep looking.
                    break;
                }
                j += 1;
            }
            if j < tokens.len() && is_punct(&tokens[j], '{') {
                let close = matching_brace(tokens, j)?;
                return Some((i, j, close));
            }
        }
        i += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, tok) in tokens.iter().enumerate().skip(open) {
        if is_punct(tok, '{') {
            depth += 1;
        } else if is_punct(tok, '}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Collects the variant names of `enum name { ... }`.
pub fn enum_variants(tokens: &[Token], name: &str) -> Option<Vec<String>> {
    let mut i = 0;
    let open = loop {
        if i + 2 >= tokens.len() {
            return None;
        }
        if is_ident(&tokens[i], "enum") && is_ident(&tokens[i + 1], name) {
            let mut j = i + 2;
            while j < tokens.len() && !is_punct(&tokens[j], '{') {
                j += 1;
            }
            if j < tokens.len() {
                break j;
            }
            return None;
        }
        i += 1;
    };
    let close = matching_brace(tokens, open)?;
    let mut variants = Vec::new();
    let mut k = open + 1;
    while k < close {
        let tok = &tokens[k];
        if is_punct(tok, '#') {
            // Variant attribute: skip the bracket group.
            k += 1;
            if k < close && is_punct(&tokens[k], '[') {
                let mut depth = 0usize;
                while k < close {
                    if is_punct(&tokens[k], '[') {
                        depth += 1;
                    } else if is_punct(&tokens[k], ']') {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            continue;
        }
        if let Some(v) = ident_name(tok) {
            variants.push(v.to_string());
            k += 1;
            // Skip the payload: struct/tuple fields or a discriminant.
            if k < close && is_punct(&tokens[k], '{') {
                k = matching_brace(tokens, k).map_or(close, |c| c + 1);
            } else if k < close && is_punct(&tokens[k], '(') {
                let mut depth = 0usize;
                while k < close {
                    if is_punct(&tokens[k], '(') {
                        depth += 1;
                    } else if is_punct(&tokens[k], ')') {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
            // Skip to past the separating comma (covers `= disc` too).
            while k < close && !is_punct(&tokens[k], ',') {
                k += 1;
            }
        }
        k += 1;
    }
    Some(variants)
}

/// Line ranges (inclusive) of items annotated with a test attribute:
/// `#[test]`, `#[cfg(test)]` and friends — any attribute whose token
/// stream contains the identifier `test`.
pub fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_punct(&tokens[i], '#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Inner attributes (`#![...]`) configure the enclosing item; a
        // file-level `#![cfg(test)]` is rare enough to ignore.
        if j < tokens.len() && is_punct(&tokens[j], '!') {
            i = j + 1;
            continue;
        }
        if j >= tokens.len() || !is_punct(&tokens[j], '[') {
            i += 1;
            continue;
        }
        // Find the matching ']' and look for `test` inside. `not(test)`
        // guards production-only code and must not count.
        let mut depth = 0usize;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() {
            if is_punct(&tokens[j], '[') {
                depth += 1;
            } else if is_punct(&tokens[j], ']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if is_ident(&tokens[j], "test") {
                has_test = true;
            } else if is_ident(&tokens[j], "not") {
                has_not = true;
            }
            j += 1;
        }
        let has_test = has_test && !has_not;
        if j >= tokens.len() {
            break;
        }
        if !has_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then mark the next braced block.
        let mut k = j + 1;
        loop {
            if k + 1 < tokens.len() && is_punct(&tokens[k], '#') && is_punct(&tokens[k + 1], '[') {
                let mut depth = 0usize;
                while k < tokens.len() {
                    if is_punct(&tokens[k], '[') {
                        depth += 1;
                    } else if is_punct(&tokens[k], ']') {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        // Scan to the item's opening brace; a bare `;` first means the
        // attribute decorated a braceless item (use, extern) — skip it.
        let start_line = tokens[i].line;
        while k < tokens.len() && !is_punct(&tokens[k], '{') && !is_punct(&tokens[k], ';') {
            k += 1;
        }
        if k < tokens.len() && is_punct(&tokens[k], '{') {
            if let Some(close) = matching_brace(tokens, k) {
                ranges.push((start_line, tokens[close].line));
                i = close + 1;
                continue;
            }
            // Unterminated block: treat everything after as test code.
            ranges.push((start_line, u32::MAX));
            break;
        }
        i = k + 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_span_is_detected() {
        let src = "fn live() { work(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); }\n\
                   }\n";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(2, 6)]);
    }

    #[test]
    fn test_fn_without_module_is_detected() {
        let src = "fn live() {}\n#[test]\nfn t() {\n  boom();\n}\nfn live2() {}\n";
        let ranges = test_line_ranges(&lex(src).tokens);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn non_test_attributes_mark_nothing() {
        let src = "#[derive(Debug)]\nstruct S { x: u32 }\n#[inline]\nfn f() {}\n";
        assert!(test_line_ranges(&lex(src).tokens).is_empty());
    }

    #[test]
    fn enum_variants_skip_payloads_attributes_and_discriminants() {
        let src = "pub enum E {\n\
                   #[doc(hidden)]\n\
                   A,\n\
                   B { x: u32, y: Vec<u8> },\n\
                   C(String, u64),\n\
                   D = 7,\n\
                   }";
        let vs = enum_variants(&lex(src).tokens, "E").unwrap();
        assert_eq!(vs, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn fn_span_finds_the_body() {
        let src = "impl X { fn a(&self) -> u32 { 1 } fn b(&self) { if x { y() } } }";
        let lexed = lex(src);
        let (_, open, close) = fn_span(&lexed.tokens, "b").unwrap();
        assert!(open < close);
        let slice = &lexed.tokens[open..=close];
        assert!(slice.iter().any(|t| is_ident(t, "y")));
        assert!(!slice.iter().any(|t| is_ident(t, "a")));
    }

    #[test]
    fn path_at_matches_qualified_paths() {
        let lexed = lex("std::env::var(\"X\")");
        assert!(path_at(&lexed.tokens, 0, &["std", "env"]).is_some());
        assert!(path_at(&lexed.tokens, 0, &["std", "fs"]).is_none());
    }
}
