//! The workspace scope manifest — the **single** place a module gets
//! registered with the analyzer.
//!
//! Before this file existed, D1/D2/D3 each carried their own copy of
//! the crate/file lists inside `Config::workspace`, so adding a module
//! meant editing several parallel vectors (and forgetting one meant a
//! silently unlinted path). Now every rule family reads from here:
//!
//! * [`REPLAY_CRITICAL`] — D1 scope *and* the crates whose fns count as
//!   replay-critical context for T1;
//! * [`ORDERED_OUTPUT`] — D2 scope;
//! * [`SUPERVISION`] — D3 scope;
//! * [`WORKER_PATHS`] — T3 scope: files whose worker loops may only
//!   share state through per-shard slots + the `(at, seq)` merge;
//! * [`HARNESS`] — driver code (bench, the linter itself) that calls
//!   *into* the system but never receives call-graph edges;
//! * [`REPLAY_ENTRY_POINTS`] / [`SUPERVISION_ENTRY_POINTS`] — the T1/T2
//!   sinks: the functions whose transitive closure must stay free of
//!   ambient inputs (T1) and panics (T2).

/// One interprocedural entry point: `(file prefix, impl owner, fn)`.
#[derive(Debug, Clone, Copy)]
pub struct EntryPointDef {
    pub file: &'static str,
    /// `None` matches a free fn or any owner.
    pub owner: Option<&'static str>,
    pub name: &'static str,
}

/// D1 + T1 context: anything here feeds the virtual clock, the seeded
/// draws, or the journal replay path.
pub const REPLAY_CRITICAL: &[&str] = &[
    "crates/net/src/",
    "crates/core/src/",
    "crates/dataset/src/",
    "crates/serve/src/",
];

/// D2: files that emit serialized or ordered artifacts — the WAL, the
/// JSONL event log, the Prometheus exposition, the folded profile, the
/// Chrome trace export, and the dataset CSVs.
pub const ORDERED_OUTPUT: &[&str] = &[
    "crates/core/src/journal.rs",
    "crates/core/src/telemetry/",
    "crates/core/src/monitor/",
    "crates/core/src/shard.rs",
    "crates/core/src/trace/",
    "crates/dataset/src/",
    "crates/serve/src/",
];

/// D3: supervision paths — a panic here takes down a campaign (or a
/// recorder fan-out) instead of surfacing a typed error.
pub const SUPERVISION: &[&str] = &["crates/core/src/", "crates/dataset/src/pipeline.rs"];

/// T3: worker paths that execute shards on OS threads. Cross-shard
/// state here must flow through per-shard slots indexed by shard id and
/// be merged on `(at, seq)` — never through un-sharded locks or atomic
/// synchronization order.
pub const WORKER_PATHS: &[&str] = &["crates/core/src/shard.rs", "crates/serve/src/engine.rs"];

/// Driver/harness code: may freely call entry points (and read the wall
/// clock — it *measures* the system), so it must never receive incoming
/// call-graph edges, or every benchmark timer would taint the campaign.
pub const HARNESS: &[&str] = &["crates/bench/src/", "crates/lint/src/"];

/// T1 sinks: the replay-critical public entry points. A wall-clock /
/// entropy / env / hash-order source transitively reachable from any of
/// these voids the byte-identity guarantee.
pub const REPLAY_ENTRY_POINTS: &[EntryPointDef] = &[
    EntryPointDef {
        file: "crates/core/src/campaign.rs",
        owner: Some("Campaign"),
        name: "run",
    },
    EntryPointDef {
        file: "crates/core/src/campaign.rs",
        owner: Some("Campaign"),
        name: "run_sharded",
    },
    EntryPointDef {
        file: "crates/core/src/campaign.rs",
        owner: Some("Campaign"),
        name: "epochs",
    },
    EntryPointDef {
        file: "crates/core/src/journal.rs",
        owner: None,
        name: "read_entries",
    },
    EntryPointDef {
        file: "crates/core/src/journal.rs",
        owner: None,
        name: "recover",
    },
    EntryPointDef {
        file: "crates/core/src/journal.rs",
        owner: Some("Journal"),
        name: "replay",
    },
    EntryPointDef {
        file: "crates/core/src/monitor/merge.rs",
        owner: Some("WatermarkHeap"),
        name: "push",
    },
    EntryPointDef {
        file: "crates/core/src/monitor/merge.rs",
        owner: Some("WatermarkHeap"),
        name: "pop_ready",
    },
    EntryPointDef {
        file: "crates/core/src/trace/assemble.rs",
        owner: Some("TraceAssembler"),
        name: "observe",
    },
    EntryPointDef {
        file: "crates/core/src/trace/assemble.rs",
        owner: Some("TraceAssembler"),
        name: "finish",
    },
    EntryPointDef {
        file: "crates/serve/src/router.rs",
        owner: Some("Router"),
        name: "route",
    },
    EntryPointDef {
        file: "crates/serve/src/router.rs",
        owner: Some("Router"),
        name: "handle",
    },
    EntryPointDef {
        file: "crates/dataset/src/pipeline.rs",
        owner: None,
        name: "curate_city",
    },
    EntryPointDef {
        file: "crates/dataset/src/pipeline.rs",
        owner: None,
        name: "curate_city_journaled",
    },
];

/// T2 sinks: supervision entry points. A panic transitively reachable
/// from these tears down a campaign mid-journal instead of surfacing a
/// typed error. The set matches [`REPLAY_ENTRY_POINTS`]: every replay
/// entry is also a supervised one.
pub const SUPERVISION_ENTRY_POINTS: &[EntryPointDef] = REPLAY_ENTRY_POINTS;

/// Helper: materialize a `&'static str` slice into the owned form
/// `Config` carries.
pub fn owned(scopes: &[&str]) -> Vec<String> {
    scopes.iter().map(|s| s.to_string()).collect()
}
