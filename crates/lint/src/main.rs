//! The `divide-lint` CLI.
//!
//! ```text
//! divide-lint [--root DIR] [--baseline FILE | --no-baseline]
//!             [--write-baseline] [--quiet]
//!             [--format text|json|sarif] [--out FILE]
//! ```
//!
//! `--format json` / `--format sarif` additionally emit the combined
//! finding set (new + baselined) in machine-readable form — to stdout,
//! or to `--out FILE` so CI can upload the document as an artifact while
//! keeping the human summary on the console. Exit codes: `0` clean, `1`
//! new findings or stale baseline entries, `2` usage / configuration
//! errors (unreadable files, malformed baseline).

use divide_lint::{analyze, baseline::Baseline, discover_root, emit, Config, Finding};
use std::path::PathBuf;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    quiet: bool,
    format: Format,
    out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: divide-lint [--root DIR] [--baseline FILE | --no-baseline] \
         [--write-baseline] [--quiet] [--format text|json|sarif] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        root: None,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        quiet: false,
        format: Format::Text,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => args.write_baseline = true,
            "--quiet" | "-q" => args.quiet = true,
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    _ => usage(),
                }
            }
            "--out" => args.out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("divide-lint: {msg}");
    std::process::exit(2);
}

fn print_findings(header: &str, findings: &[Finding], quiet: bool) {
    if findings.is_empty() {
        return;
    }
    println!("{header}");
    for f in findings {
        println!("  {f}");
        if !quiet && !f.hint.is_empty() {
            println!("      hint: {}", f.hint);
        }
    }
}

fn main() {
    let args = parse_args();
    let root = match args
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|d| discover_root(&d)))
    {
        Some(r) => r,
        None => fail("no workspace root found (run inside the workspace or pass --root)"),
    };
    let config = Config::workspace(root.clone());

    let baseline_path = args.baseline.unwrap_or_else(|| root.join("lint.baseline"));

    if args.write_baseline {
        let findings = analyze(&config).unwrap_or_else(|e| fail(&e));
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            fail(&format!("cannot write {}: {e}", baseline_path.display()));
        }
        println!(
            "divide-lint: wrote {} entries to {}",
            findings.len(),
            baseline_path.display()
        );
        return;
    }

    let baseline = if args.no_baseline {
        Baseline::empty()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text).unwrap_or_else(|e| fail(&e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::empty(),
            Err(e) => fail(&format!("cannot read {}: {e}", baseline_path.display())),
        }
    };

    let outcome = match analyze(&config) {
        Ok(findings) => baseline.judge(findings),
        Err(e) => fail(&e),
    };

    if args.format != Format::Text {
        // The machine-readable document carries every live finding —
        // baselined debt included — in canonical order.
        let mut all: Vec<Finding> = outcome
            .new
            .iter()
            .chain(&outcome.baselined)
            .cloned()
            .collect();
        divide_lint::sort_canonical(&mut all);
        let doc = match args.format {
            Format::Json => emit::json(&all),
            Format::Sarif => emit::sarif(&all),
            Format::Text => unreachable!("guarded above"),
        };
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &doc) {
                    fail(&format!("cannot write {}: {e}", path.display()));
                }
            }
            None => print!("{doc}"),
        }
    }

    print_findings("new findings (not baselined):", &outcome.new, args.quiet);
    if !outcome.stale.is_empty() {
        println!("stale baseline entries (no longer match any finding):");
        for e in &outcome.stale {
            println!("  {}", e.render());
        }
        println!("  regenerate with `divide-lint --write-baseline` after review");
    }
    println!(
        "divide-lint: {} new, {} baselined, {} stale",
        outcome.new.len(),
        outcome.baselined.len(),
        outcome.stale.len()
    );
    std::process::exit(if outcome.is_clean() { 0 } else { 1 });
}
