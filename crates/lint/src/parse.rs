//! A brace-tree item parser on top of the lexer — still no `syn`.
//!
//! The interprocedural rules (T1/T2/T3) need to know *which function* a
//! token belongs to and *which functions it calls*, not just that a
//! banned token sequence exists somewhere in a file. This module walks
//! the token stream once, tracking a stack of brace contexts (`mod`,
//! `impl`, `trait`, `fn`, plain blocks), and extracts:
//!
//! * every `fn` item with its name, enclosing `impl`/`trait` type, the
//!   token span of its signature + body, and its `file:line:col`;
//! * every call expression inside a function body, classified as a free
//!   call (`helper(..)`), a qualified call (`Type::new(..)` — only the
//!   last two path segments are kept), a method call (`recv.step(..)`
//!   with a receiver hint), or a macro invocation (`panic!(..)`).
//!
//! Design constraints mirror the lexer's:
//!
//! * **Total**: the parser terminates and never panics on arbitrary
//!   token streams — mismatched braces, truncated headers, generics
//!   soup. A proptest pins this down. Where real Rust syntax is
//!   ambiguous to a lexical pass (const-generic braces, comparison `<`
//!   vs generics), it degrades to a best-effort item tree rather than
//!   erroring: a linter that dies on weird input protects nothing.
//! * **Span-faithful**: every extracted item carries in-bounds token
//!   indices and the 1-based line/column of its first token.

use crate::lexer::Token;
use crate::scan::{self, SourceFile};

/// How a method call names its receiver — the resolution heuristic in
/// [`crate::callgraph`] keys off this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.step(..)` — resolve against the enclosing impl type first.
    SelfRecv,
    /// `worker.step(..)` — a named local/param; local type inference may
    /// narrow the candidate set.
    Var(String),
    /// `make().step(..)`, `slots[i].step(..)` — chained/indexed; resolve
    /// by method name alone (over-approximate).
    Opaque,
}

/// One call expression, classified lexically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `helper(..)` — a free function call.
    Free(String),
    /// `Type::new(..)` / `module::helper(..)` — the last two path
    /// segments (`qualifier`, `name`).
    Qualified(String, String),
    /// `recv.method(..)`.
    Method(Receiver, String),
    /// `name!(..)` — macros never get call-graph edges, but `panic!`
    /// and friends are T2 taint sources.
    Macro(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    pub callee: Callee,
    pub line: u32,
    pub col: u32,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl` self type or `trait` name, if any. For
    /// `impl Trait for Type` this is `Type`.
    pub owner: Option<String>,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    pub col: u32,
    /// Token-index span `[fn_kw, body_close]` (inclusive); for bodyless
    /// signatures the span ends at the terminating `;`.
    pub span: (usize, usize),
    /// Token index of the body's `{`, if the fn has a body.
    pub body_open: Option<usize>,
    pub calls: Vec<CallSite>,
    /// Whether the `fn` keyword sits in test code (test attribute range
    /// or a tests/benches/examples path) — excluded from the call graph.
    pub is_test: bool,
}

/// The item tree of one source file: a flat fn list (nesting resolved).
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "fn", "in", "as", "move", "let", "else",
    "impl", "mod", "use", "pub", "struct", "enum", "trait", "type", "where", "unsafe", "dyn",
    "ref", "mut", "box", "await", "async", "const", "static", "crate", "super", "Self", "self",
    "break", "continue", "yield",
];

/// One entry on the brace stack.
#[derive(Debug, Clone)]
enum Ctx {
    /// A `fn` body; the payload indexes `ParsedFile::fns`.
    Fn(usize),
    /// An `impl`/`trait` block with its (best-effort) self-type name.
    Owner(Option<String>),
    /// Any other `{ .. }` group.
    Block,
}

/// What the last item header promised the next `{` will open.
#[derive(Debug, Clone)]
enum Pending {
    Fn(usize),
    Owner(Option<String>),
}

pub fn parse_file(file: &SourceFile) -> ParsedFile {
    Parser {
        file,
        tokens: file.tokens(),
        out: ParsedFile::default(),
        stack: Vec::new(),
        pending: None,
    }
    .run()
}

struct Parser<'a> {
    file: &'a SourceFile,
    tokens: &'a [Token],
    out: ParsedFile,
    stack: Vec<Ctx>,
    pending: Option<Pending>,
}

impl Parser<'_> {
    fn run(mut self) -> ParsedFile {
        let mut i = 0usize;
        while i < self.tokens.len() {
            let tok = &self.tokens[i];
            if scan::is_punct(tok, '#') {
                // Attributes carry ident+paren shapes that look like
                // calls; skip the whole `#[...]` / `#![...]` group.
                i = self.skip_attribute(i);
                continue;
            }
            if scan::is_punct(tok, '{') {
                let ctx = match self.pending.take() {
                    Some(Pending::Fn(idx)) => {
                        self.out.fns[idx].body_open = Some(i);
                        Ctx::Fn(idx)
                    }
                    Some(Pending::Owner(name)) => Ctx::Owner(name),
                    None => Ctx::Block,
                };
                self.stack.push(ctx);
                i += 1;
                continue;
            }
            if scan::is_punct(tok, '}') {
                if let Some(Ctx::Fn(idx)) = self.stack.pop() {
                    // Close the fn span at this `}` only if it is the
                    // body's own brace (the matching Ctx::Fn pop).
                    self.out.fns[idx].span.1 = i;
                }
                i += 1;
                continue;
            }
            if scan::is_punct(tok, ';') {
                // A bodyless header (trait method signature, `mod x;`).
                if let Some(Pending::Fn(idx)) = self.pending.take() {
                    self.out.fns[idx].span.1 = i;
                }
                i += 1;
                continue;
            }
            let Some(name) = scan::ident_name(tok) else {
                i += 1;
                continue;
            };
            match name {
                "impl" | "trait" => {
                    let (owner, next) = self.parse_owner_header(i);
                    self.pending = Some(Pending::Owner(owner));
                    i = next;
                    continue;
                }
                "mod" => {
                    // `mod name { .. }` opens a plain owner-less scope;
                    // `mod name;` is skipped by the `;` arm.
                    self.pending = Some(Pending::Owner(self.current_owner()));
                    i += 1;
                    continue;
                }
                "fn" => {
                    if let Some(fn_name) = self.tokens.get(i + 1).and_then(scan::ident_name) {
                        let idx = self.out.fns.len();
                        self.out.fns.push(FnDef {
                            name: fn_name.to_string(),
                            owner: self.current_owner(),
                            line: tok.line,
                            col: tok.col,
                            span: (i, self.tokens.len().saturating_sub(1)),
                            body_open: None,
                            calls: Vec::new(),
                            is_test: self.file.is_test_line(tok.line),
                        });
                        self.pending = Some(Pending::Fn(idx));
                        i += 2;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                _ => {}
            }
            // Call collection only inside a fn body.
            if let Some(fn_idx) = self.current_fn() {
                if let Some(site) = self.call_at(i) {
                    self.out.fns[fn_idx].calls.push(site);
                }
            }
            i += 1;
        }
        // Unterminated bodies: any fn still open keeps its default span
        // end (last token), which stays in-bounds.
        self.out
    }

    /// Innermost enclosing fn on the stack (a `fn` nested in a `fn`
    /// collects its own calls).
    fn current_fn(&self) -> Option<usize> {
        self.stack.iter().rev().find_map(|c| match c {
            Ctx::Fn(idx) => Some(*idx),
            _ => None,
        })
    }

    /// Innermost enclosing impl/trait type, looking through plain blocks
    /// and `mod` scopes but not through another fn's body.
    fn current_owner(&self) -> Option<String> {
        for ctx in self.stack.iter().rev() {
            match ctx {
                Ctx::Owner(name) => return name.clone(),
                Ctx::Fn(_) => return None,
                Ctx::Block => {}
            }
        }
        None
    }

    /// Parses an `impl`/`trait` header starting at its keyword; returns
    /// the best-effort self-type name and the index of the token that
    /// opens the block (the `{`, or wherever scanning gave up).
    ///
    /// Handles `impl<T> Type<T>`, `impl Trait for Type`, `&mut Type`,
    /// and stops at `{` or `where`. The self type is the *last* path
    /// segment of the subject (`for`-target if present).
    fn parse_owner_header(&self, kw: usize) -> (Option<String>, usize) {
        let mut j = kw + 1;
        let mut subject: Option<String> = None;
        let mut saw_for = false;
        let mut angle = 0i32;
        while j < self.tokens.len() {
            let t = &self.tokens[j];
            if angle == 0 && (scan::is_punct(t, '{') || scan::is_ident(t, "where")) {
                break;
            }
            if scan::is_punct(t, '<') {
                angle += 1;
            } else if scan::is_punct(t, '>') {
                angle = (angle - 1).max(0);
            } else if angle == 0 {
                if scan::is_ident(t, "for") {
                    saw_for = true;
                    subject = None;
                } else if let Some(name) = scan::ident_name(t) {
                    if name != "dyn" && name != "mut" && name != "const" {
                        subject = Some(name.to_string());
                    }
                }
            }
            j += 1;
        }
        let _ = saw_for;
        (subject, j)
    }

    /// Skips a `#[...]`/`#![...]` attribute group starting at the `#`.
    fn skip_attribute(&self, hash: usize) -> usize {
        let mut j = hash + 1;
        if self.tokens.get(j).is_some_and(|t| scan::is_punct(t, '!')) {
            j += 1;
        }
        if !self.tokens.get(j).is_some_and(|t| scan::is_punct(t, '[')) {
            return hash + 1;
        }
        let mut depth = 0usize;
        while j < self.tokens.len() {
            if scan::is_punct(&self.tokens[j], '[') {
                depth += 1;
            } else if scan::is_punct(&self.tokens[j], ']') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.tokens.len()
    }

    /// Classifies a call expression whose name sits at `i`, if any.
    fn call_at(&self, i: usize) -> Option<CallSite> {
        let tok = &self.tokens[i];
        let name = scan::ident_name(tok)?;
        let next = self.tokens.get(i + 1)?;
        // `name!(..)` / `name![..]` / `name!{..}` — macro invocation.
        if scan::is_punct(next, '!')
            && self
                .tokens
                .get(i + 2)
                .is_some_and(|t| "([{".chars().any(|c| scan::is_punct(t, c)))
        {
            return Some(CallSite {
                callee: Callee::Macro(name.to_string()),
                line: tok.line,
                col: tok.col,
            });
        }
        // `name::<T>(..)` turbofish: treat the `::<` as transparent.
        let paren_after_turbofish = scan::is_punct(next, ':')
            && self
                .tokens
                .get(i + 2)
                .is_some_and(|t| scan::is_punct(t, ':'))
            && self
                .tokens
                .get(i + 3)
                .is_some_and(|t| scan::is_punct(t, '<'))
            && self.turbofish_close(i + 3).is_some_and(|c| {
                self.tokens
                    .get(c + 1)
                    .is_some_and(|t| scan::is_punct(t, '('))
            });
        if !scan::is_punct(next, '(') && !paren_after_turbofish {
            return None;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            return None;
        }
        // Qualified: `prev :: name (` — keep the immediate qualifier.
        if i >= 3
            && scan::is_punct(&self.tokens[i - 1], ':')
            && scan::is_punct(&self.tokens[i - 2], ':')
        {
            if let Some(q) = scan::ident_name(&self.tokens[i - 3]) {
                return Some(CallSite {
                    callee: Callee::Qualified(q.to_string(), name.to_string()),
                    line: tok.line,
                    col: tok.col,
                });
            }
            // `<T as Trait>::name(..)` — qualifier is opaque; fall
            // through to an unqualified method-style match.
            return Some(CallSite {
                callee: Callee::Method(Receiver::Opaque, name.to_string()),
                line: tok.line,
                col: tok.col,
            });
        }
        // Method: `recv . name (`.
        if i >= 2 && scan::is_punct(&self.tokens[i - 1], '.') {
            let recv = match scan::ident_name(&self.tokens[i - 2]) {
                Some("self") => Receiver::SelfRecv,
                Some(v) => Receiver::Var(v.to_string()),
                None => Receiver::Opaque,
            };
            return Some(CallSite {
                callee: Callee::Method(recv, name.to_string()),
                line: tok.line,
                col: tok.col,
            });
        }
        Some(CallSite {
            callee: Callee::Free(name.to_string()),
            line: tok.line,
            col: tok.col,
        })
    }

    /// Index of the `>` closing a turbofish `<` at `open`, scanning a
    /// bounded window (generics in call position are short; a missing
    /// close just means "not a turbofish").
    fn turbofish_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in open..self.tokens.len().min(open + 64) {
            if scan::is_punct(&self.tokens[j], '<') {
                depth += 1;
            } else if scan::is_punct(&self.tokens[j], '>') {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            } else if scan::is_punct(&self.tokens[j], ';') {
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&SourceFile::new("x.rs".into(), src.as_bytes()))
    }

    fn fn_named<'a>(parsed: &'a ParsedFile, name: &str) -> &'a FnDef {
        parsed
            .fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn fns_carry_owner_and_span() {
        let src = "impl Campaign { pub fn run(&self) -> u32 { self.step() } }\n\
                   fn free() { helper(1); }";
        let parsed = parse(src);
        assert_eq!(parsed.fns.len(), 2);
        let run = fn_named(&parsed, "run");
        assert_eq!(run.owner.as_deref(), Some("Campaign"));
        assert!(run.body_open.is_some());
        let free = fn_named(&parsed, "free");
        assert_eq!(free.owner, None);
    }

    #[test]
    fn trait_impls_resolve_the_for_target() {
        let src = "impl fmt::Display for ShardPlan { fn fmt(&self) {} }\n\
                   impl<'a, T: Clone> Wrapper<'a, T> { fn get(&self) {} }";
        let parsed = parse(src);
        assert_eq!(fn_named(&parsed, "fmt").owner.as_deref(), Some("ShardPlan"));
        assert_eq!(fn_named(&parsed, "get").owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn calls_are_classified_by_shape() {
        let src = "fn f(w: Worker) {\n\
                       helper(1);\n\
                       Journal::replay(2);\n\
                       self.observe(3);\n\
                       w.step(4);\n\
                       make().chain(5);\n\
                       panic!(\"boom\");\n\
                       if x { loop {} }\n\
                   }";
        let parsed = parse(src);
        let calls = &fn_named(&parsed, "f").calls;
        assert!(calls.contains(&CallSite {
            callee: Callee::Free("helper".into()),
            line: 2,
            col: 1
        }));
        assert!(calls
            .iter()
            .any(|c| c.callee == Callee::Qualified("Journal".into(), "replay".into())));
        assert!(calls
            .iter()
            .any(|c| c.callee == Callee::Method(Receiver::SelfRecv, "observe".into())));
        assert!(calls
            .iter()
            .any(|c| c.callee == Callee::Method(Receiver::Var("w".into()), "step".into())));
        assert!(calls
            .iter()
            .any(|c| c.callee == Callee::Method(Receiver::Opaque, "chain".into())));
        assert!(calls
            .iter()
            .any(|c| c.callee == Callee::Macro("panic".into())));
        assert!(!calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Free(n) if n == "if" || n == "loop")));
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let parsed = parse("fn f() { parse::<u64>(x); }");
        let calls = &fn_named(&parsed, "f").calls;
        assert!(calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Free(n) if n == "parse")));
    }

    #[test]
    fn nested_fns_collect_their_own_calls() {
        let src = "fn outer() { inner_call(); fn nested() { deep_call(); } }";
        let parsed = parse(src);
        let outer = fn_named(&parsed, "outer");
        let nested = fn_named(&parsed, "nested");
        assert!(outer
            .calls
            .iter()
            .any(|c| c.callee == Callee::Free("inner_call".into())));
        assert!(!outer
            .calls
            .iter()
            .any(|c| c.callee == Callee::Free("deep_call".into())));
        assert!(nested
            .calls
            .iter()
            .any(|c| c.callee == Callee::Free("deep_call".into())));
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        let parsed = parse(src);
        assert!(!fn_named(&parsed, "live").is_test);
        assert!(fn_named(&parsed, "t").is_test);
    }

    #[test]
    fn attributes_do_not_register_calls() {
        let src = "#[derive(Debug, Clone)]\nstruct S;\nfn f() { #[allow(dead_code)] let x = g(); }";
        let parsed = parse(src);
        let calls = &fn_named(&parsed, "f").calls;
        assert_eq!(calls.len(), 1);
        assert!(matches!(&calls[0].callee, Callee::Free(n) if n == "g"));
    }

    #[test]
    fn trait_method_signatures_have_no_body() {
        let src = "trait T { fn sig(&self); fn with_default(&self) { self.sig() } }";
        let parsed = parse(src);
        assert_eq!(fn_named(&parsed, "sig").body_open, None);
        assert!(fn_named(&parsed, "with_default").body_open.is_some());
        assert_eq!(fn_named(&parsed, "sig").owner.as_deref(), Some("T"));
    }

    #[test]
    fn unbalanced_braces_do_not_panic_and_spans_stay_in_bounds() {
        for src in [
            "fn f() { g(",
            "} } fn g() {",
            "impl { fn",
            "fn",
            "fn f() { { { }",
            "impl X for { }",
        ] {
            let file = SourceFile::new("x.rs".into(), src.as_bytes());
            let parsed = parse_file(&file);
            for f in &parsed.fns {
                assert!(f.span.0 <= f.span.1);
                assert!(f.span.1 < file.tokens().len().max(1));
            }
        }
    }
}
