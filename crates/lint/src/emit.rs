//! Machine-readable finding output for `--format json|sarif`.
//!
//! Both emitters are hand-rolled (the workspace has no serde) and emit
//! byte-stable output: findings arrive already in canonical
//! `(file, line, col, rule)` order from [`crate::sort_canonical`], keys
//! are written in a fixed order, and nothing depends on map iteration.
//!
//! The SARIF document targets 2.1.0 with the minimal result shape CI
//! code-scanning ingestion needs: `ruleId`, a message, and one physical
//! location per finding; the hint travels as the second message line.

use crate::{Finding, RuleId};
use std::fmt::Write as _;

/// Every rule the driver declares, with its one-line description.
const RULES: &[(RuleId, &str)] = &[
    (
        RuleId::D1,
        "no wall-clock, OS-entropy or env reads in replay-critical crates",
    ),
    (
        RuleId::D2,
        "no unordered-map iteration in ordered-output files",
    ),
    (RuleId::D3, "no unwrap/expect in supervision paths"),
    (
        RuleId::E1,
        "closed event schemas stay exhaustive across every surface",
    ),
    (RuleId::W1, "workspace members opt into [workspace.lints]"),
    (
        RuleId::T1,
        "no ambient input reachable from a replay entry point",
    ),
    (
        RuleId::T2,
        "no panic site reachable from a supervision entry point",
    ),
    (
        RuleId::T3,
        "worker paths share state only through per-shard slots",
    ),
];

/// JSON string escaping per RFC 8259.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A flat JSON array of finding objects — the stable scripting surface.
pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"hint\": \"{}\"}}",
            f.rule,
            escape(&f.file),
            f.line,
            f.col,
            escape(&f.message),
            escape(&f.hint)
        );
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// A SARIF 2.1.0 document with one run.
pub fn sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"divide-lint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (rule, desc)) in RULES.iter().enumerate() {
        let _ = write!(
            out,
            "            {{\"id\": \"{rule}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            escape(desc)
        );
        if i + 1 < RULES.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let text = if f.hint.is_empty() {
            f.message.clone()
        } else {
            format!("{}\n{}", f.message, f.hint)
        };
        let _ = write!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            f.rule,
            escape(&text),
            escape(&f.file),
            f.line,
            f.col
        );
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/core/src/a.rs".into(),
                line: 3,
                col: 7,
                rule: RuleId::T1,
                message: "wall-clock read `Instant::now()` reachable from replay entry `run`"
                    .into(),
                hint: "call chain: run (a.rs:1) -> stamp (a.rs:3); use the virtual clock".into(),
            },
            Finding {
                file: "crates/core/src/b.rs".into(),
                line: 9,
                col: 1,
                rule: RuleId::D3,
                message: "`.unwrap()` in a supervision path".into(),
                hint: "say \"why\"\there".into(),
            },
        ]
    }

    #[test]
    fn json_escapes_and_lists_every_finding() {
        let out = json(&sample());
        assert!(out.contains("\"rule\": \"T1\""));
        assert!(out.contains("say \\\"why\\\"\\there"));
        assert_eq!(out.matches("\"file\":").count(), 2);
    }

    #[test]
    fn sarif_has_schema_rules_and_locations() {
        let out = sarif(&sample());
        assert!(out.contains("sarif-2.1.0.json"));
        assert!(out.contains("\"ruleId\": \"T1\""));
        assert!(out.contains("\"startLine\": 3"));
        // every declared rule is present in the driver metadata
        for (rule, _) in RULES {
            assert!(out.contains(&format!("\"id\": \"{rule}\"")));
        }
    }

    #[test]
    fn emitters_are_stable_across_calls() {
        let s = sample();
        assert_eq!(json(&s), json(&s));
        assert_eq!(sarif(&s), sarif(&s));
    }
}
