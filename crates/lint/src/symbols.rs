//! The workspace-wide symbol table: every `fn` item from every parsed
//! file, flattened into a deterministic id space with name indexes the
//! call-graph resolver queries.
//!
//! Ids are assigned in `(file, definition order)` — the file list is
//! already path-sorted by [`crate::collect_sources`] — so every
//! downstream artifact (edges, BFS witnesses, findings) is independent
//! of filesystem iteration order.

use crate::parse::{CallSite, FnDef, ParsedFile};
use crate::scan::{self, SourceFile};
use std::collections::BTreeMap;

/// One function in the workspace.
#[derive(Debug)]
pub struct FnInfo {
    /// Workspace-relative file path.
    pub file: String,
    /// Index into the aligned `SourceFile`/`ParsedFile` slices.
    pub file_idx: usize,
    pub name: String,
    pub owner: Option<String>,
    pub line: u32,
    pub col: u32,
    /// Token-index span of the whole item (signature + body).
    pub span: (usize, usize),
    pub body_open: Option<usize>,
    pub calls: Vec<CallSite>,
    pub is_test: bool,
    /// Harness code (bench/lint drivers): may call into the system but
    /// never receives call-graph edges — see `scopes::HARNESS`.
    pub is_harness: bool,
}

impl FnInfo {
    /// `Owner::name` or bare `name` — used in witness chains.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The flattened table plus its name indexes.
#[derive(Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnInfo>,
    /// Free functions (no owner) by name.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods (any owner) by name.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// `(owner, name)` exact pairs.
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table from aligned file/parse slices. `harness` lists
    /// path prefixes whose fns get no incoming edges.
    pub fn build(files: &[SourceFile], parsed: &[ParsedFile], harness: &[String]) -> Self {
        let mut table = SymbolTable::default();
        for (file_idx, (file, pf)) in files.iter().zip(parsed).enumerate() {
            let is_harness = scan::in_scope(&file.rel, harness);
            for def in &pf.fns {
                let FnDef {
                    name,
                    owner,
                    line,
                    col,
                    span,
                    body_open,
                    calls,
                    is_test,
                } = def.clone();
                let id = table.fns.len();
                if !is_test {
                    if let Some(owner) = &owner {
                        table
                            .by_owner_name
                            .entry((owner.clone(), name.clone()))
                            .or_default()
                            .push(id);
                        table
                            .methods_by_name
                            .entry(name.clone())
                            .or_default()
                            .push(id);
                    } else {
                        table.free_by_name.entry(name.clone()).or_default().push(id);
                    }
                }
                table.fns.push(FnInfo {
                    file: file.rel.clone(),
                    file_idx,
                    name,
                    owner,
                    line,
                    col,
                    span,
                    body_open,
                    calls,
                    is_test,
                    is_harness,
                });
            }
        }
        table
    }

    pub fn free(&self, name: &str) -> &[usize] {
        self.free_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    pub fn methods(&self, name: &str) -> &[usize] {
        self.methods_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    pub fn owned(&self, owner: &str, name: &str) -> &[usize] {
        self.by_owner_name
            .get(&(owner.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// Non-test fns matching `(file prefix, optional owner, name)` — how
    /// the scopes manifest names entry points.
    pub fn lookup_entry(&self, file_prefix: &str, owner: Option<&str>, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && f.name == name
                    && f.file.starts_with(file_prefix)
                    && owner.is_none_or(|o| f.owner.as_deref() == Some(o))
            })
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn build(sources: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::new(rel.to_string(), src.as_bytes()))
            .collect();
        let parsed: Vec<ParsedFile> = files.iter().map(parse_file).collect();
        let table = SymbolTable::build(&files, &parsed, &["harness/".to_string()]);
        (files, table)
    }

    #[test]
    fn indexes_split_free_fns_from_methods() {
        let (_, table) = build(&[
            (
                "a.rs",
                "pub fn helper() {}\nimpl W { pub fn helper(&self) {} }",
            ),
            ("b.rs", "impl V { pub fn helper(&self) {} }"),
        ]);
        assert_eq!(table.free("helper").len(), 1);
        assert_eq!(table.methods("helper").len(), 2);
        assert_eq!(table.owned("W", "helper").len(), 1);
        assert_eq!(table.owned("V", "helper").len(), 1);
    }

    #[test]
    fn test_fns_are_invisible_to_the_indexes() {
        let (_, table) = build(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests { pub fn helper() {} }\npub fn live() {}",
        )]);
        assert!(table.free("helper").is_empty());
        assert_eq!(table.free("live").len(), 1);
    }

    #[test]
    fn harness_files_are_marked() {
        let (_, table) = build(&[
            ("harness/perf.rs", "pub fn measure() {}"),
            ("core/run.rs", "pub fn run() {}"),
        ]);
        let measure = &table.fns[table.free("measure")[0]];
        assert!(measure.is_harness);
        let run = &table.fns[table.free("run")[0]];
        assert!(!run.is_harness);
    }

    #[test]
    fn entry_lookup_matches_prefix_owner_and_name() {
        let (_, table) = build(&[(
            "core/campaign.rs",
            "impl Campaign { pub fn run(&self) {} }\nimpl Other { pub fn run(&self) {} }",
        )]);
        assert_eq!(
            table.lookup_entry("core/", Some("Campaign"), "run").len(),
            1
        );
        assert_eq!(table.lookup_entry("core/", None, "run").len(), 2);
        assert!(table.lookup_entry("serve/", None, "run").is_empty());
    }
}
