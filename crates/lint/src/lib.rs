//! `divide-lint` — the workspace's static analyzer.
//!
//! The pipeline's headline property — byte-identical crash+resume
//! reports, event logs and health artifacts (DESIGN.md §7–§9) — rests on
//! invariants that used to be enforced only by convention. One stray
//! `Instant::now()` in the orchestrator, one `HashMap` iteration feeding
//! `events.jsonl`, or one `unwrap()` inside the recorder fan-out silently
//! breaks every resume guarantee. This crate checks those invariants
//! mechanically on every CI run:
//!
//! * **D1 determinism** — no wall-clock, OS entropy or environment reads
//!   in replay-critical crates;
//! * **D2 ordered output** — no `HashMap`/`HashSet` iteration in files
//!   that emit serialized or ordered artifacts;
//! * **D3 panic-safety** — no `unwrap()`/`expect()` in non-test
//!   supervision code (orchestrator, driver, journal, monitor, telemetry);
//! * **E1 telemetry exhaustiveness** — the `EventKind` enum, its JSONL
//!   serializer/parser, the replay-stable filter and the
//!   `MetricsAggregator` must all cover exactly the same variant set,
//!   with no wildcard arms;
//! * **W1 lint posture** — every workspace member opts into the shared
//!   `[workspace.lints]` table.
//!
//! On top of the lexical rules sits an *interprocedural* layer
//! ([`parse`] → [`symbols`] → [`callgraph`] → [`taint`]): a brace-tree
//! item parser extracts every `fn`, `impl` and call expression, a
//! workspace-wide symbol table and over-approximate call graph link
//! them, and three transitive rules ride on top:
//!
//! * **T1 determinism taint** — no replay entry point may *reach* a
//!   wall-clock / entropy / env read or hash-order iteration, however
//!   many calls deep; findings carry the witness call chain;
//! * **T2 panic reachability** — the call-graph upgrade of D3: no
//!   supervision entry may reach an `unwrap`/`expect`/panicking macro;
//! * **T3 lock discipline** — worker paths share state only through
//!   per-shard slots merged on `(at, seq)`, never un-sharded locks or
//!   synchronizing atomic orderings.
//!
//! Findings carry `file:line:col`, a rule id and a fix hint. Deliberate
//! exceptions are suppressed inline with `// lint:allow(rule): reason`;
//! pre-existing debt is grandfathered in a committed baseline file so CI
//! fails only on regressions (and on stale baseline entries, so the file
//! can never rot).
//!
//! The analyzer is deliberately lexical: a lightweight panic-free lexer
//! ([`lexer`]) and token-sequence rules, no `syn`, keeping the
//! workspace's offline vendor policy.

pub mod baseline;
pub mod callgraph;
pub mod emit;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod scopes;
pub mod symbols;
pub mod taint;

pub use baseline::Baseline;
pub use scan::SourceFile;
pub use taint::EntrySpec;

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifies one rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Determinism: no wall clock / OS entropy / env reads in replay paths.
    D1,
    /// Ordered output: no unordered-map iteration feeding serialized files.
    D2,
    /// Panic safety: no `unwrap()`/`expect()` in supervision paths.
    D3,
    /// Telemetry exhaustiveness: event schema surfaces cover every variant.
    E1,
    /// Workspace lint posture: members opt into `[workspace.lints]`.
    W1,
    /// Determinism taint: replay entries must not reach ambient inputs.
    T1,
    /// Panic reachability: supervision entries must not reach panics.
    T2,
    /// Lock discipline: worker paths use per-shard slots, not shared locks.
    T3,
}

impl RuleId {
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::E1 => "E1",
            RuleId::W1 => "W1",
            RuleId::T1 => "T1",
            RuleId::T2 => "T2",
            RuleId::T3 => "T3",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "D1" => RuleId::D1,
            "D2" => RuleId::D2,
            "D3" => RuleId::D3,
            "E1" => RuleId::E1,
            "W1" => RuleId::W1,
            "T1" => RuleId::T1,
            "T2" => RuleId::T2,
            "T3" => RuleId::T3,
            _ => return None,
        })
    }

    /// Lexical rules whose inline `lint:allow` also silences this rule:
    /// a reasoned `allow(D1)` on a wall-clock read is the same judgment
    /// call T1 would re-litigate, so the allow carries over.
    fn alias_of(&self) -> &'static [&'static str] {
        match self {
            RuleId::T1 => &["D1", "D2"],
            RuleId::T2 => &["D3"],
            _ => &[],
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: where, which rule, what, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    pub rule: RuleId,
    /// What is wrong (stable across unrelated edits; baseline-matched).
    pub message: String,
    /// How to fix it (informational, not baseline-matched).
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}:{} {}",
            self.rule, self.file, self.line, self.col, self.message
        )
    }
}

/// Scope configuration: which paths each rule family applies to.
///
/// Paths are workspace-relative prefixes with forward slashes; a file is
/// in scope when its relative path starts with any listed prefix. The
/// workspace policy lives in [`Config::workspace`]; tests build custom
/// configs aimed at fixture trees.
#[derive(Debug, Clone)]
pub struct Config {
    pub root: PathBuf,
    /// D1: replay-critical scopes.
    pub d1_scopes: Vec<String>,
    /// D2: files/dirs that emit serialized or ordered output.
    pub d2_scopes: Vec<String>,
    /// D3: supervision code paths.
    pub d3_scopes: Vec<String>,
    /// E1: the closed event/query schemas to keep exhaustive — one
    /// entry per enum surface (empty disables the rule).
    pub e1: Vec<E1Config>,
    /// W1: member manifest globs that must opt into workspace lints
    /// (None disables the rule).
    pub w1_member_dirs: Option<Vec<String>>,
    /// T1: replay entry points (empty disables the rule). Any entry here
    /// switches source collection to the whole tree — the call graph
    /// must span every crate to be sound.
    pub t1_entries: Vec<EntrySpec>,
    /// T2: supervision entry points (empty disables the rule).
    pub t2_entries: Vec<EntrySpec>,
    /// T2: also seed `slice[idx]` indexing as panic sources. Off in the
    /// workspace policy — checked-by-construction indexing dominates —
    /// but exercised by fixtures.
    pub t2_indexing: bool,
    /// T3: worker-path files held to the shard-slot discipline.
    pub t3_scopes: Vec<String>,
    /// Harness scopes (bench, the linter itself): their fns get no
    /// incoming call-graph edges.
    pub harness_scopes: Vec<String>,
}

/// Where the telemetry schema and its consumers live.
#[derive(Debug, Clone)]
pub struct E1Config {
    /// File declaring the event enum, its `name()` map and the
    /// replay-stable filter.
    pub enum_file: String,
    /// The enum's type name (`EventKind`).
    pub enum_name: String,
    /// Method mapping variants to wire names.
    pub name_fn: String,
    /// The replay-stable subset filter.
    pub stable_fn: String,
    /// File holding the JSONL serializer and parser.
    pub serializer_file: String,
    pub serialize_fn: String,
    pub parse_fn: String,
    /// File holding the metrics aggregator.
    pub aggregator_file: String,
    pub aggregate_fn: String,
}

impl Config {
    /// The committed policy for this workspace (see DESIGN.md §10). The
    /// scope lists live in one place — the [`scopes`] manifest — so
    /// registering a module means one edit, not five parallel vectors.
    pub fn workspace(root: PathBuf) -> Self {
        Self {
            root,
            d1_scopes: scopes::owned(scopes::REPLAY_CRITICAL),
            d2_scopes: scopes::owned(scopes::ORDERED_OUTPUT),
            d3_scopes: scopes::owned(scopes::SUPERVISION),
            e1: vec![
                E1Config {
                    enum_file: "crates/core/src/telemetry/mod.rs".into(),
                    enum_name: "EventKind".into(),
                    name_fn: "name".into(),
                    stable_fn: "replay_stable".into(),
                    serializer_file: "crates/core/src/telemetry/jsonl.rs".into(),
                    serialize_fn: "to_line".into(),
                    parse_fn: "parse_line".into(),
                    aggregator_file: "crates/core/src/telemetry/aggregate.rs".into(),
                    aggregate_fn: "observe".into(),
                },
                // The serving wire schema: `ServeQuery` with its wire-name
                // map, cacheability classifier, JSONL-stable codec and the
                // store's exhaustive answer dispatch.
                E1Config {
                    enum_file: "crates/serve/src/api.rs".into(),
                    enum_name: "ServeQuery".into(),
                    name_fn: "wire_name".into(),
                    stable_fn: "cacheable".into(),
                    serializer_file: "crates/serve/src/api.rs".into(),
                    serialize_fn: "query_to_line".into(),
                    parse_fn: "parse_query_line".into(),
                    aggregator_file: "crates/serve/src/store.rs".into(),
                    aggregate_fn: "answer".into(),
                },
                // The span-tree schema: `SpanKind` with its wire-name map,
                // attribution-class bucketing, Chrome trace-event emitter
                // and the critical-path attribution fold.
                E1Config {
                    enum_file: "crates/core/src/trace/mod.rs".into(),
                    enum_name: "SpanKind".into(),
                    name_fn: "wire_name".into(),
                    stable_fn: "bucket".into(),
                    serializer_file: "crates/core/src/trace/perfetto.rs".into(),
                    serialize_fn: "span_json".into(),
                    parse_fn: "parse_span_kind".into(),
                    aggregator_file: "crates/core/src/trace/attribution.rs".into(),
                    aggregate_fn: "charge".into(),
                },
            ],
            w1_member_dirs: Some(vec!["crates".into(), "vendor".into()]),
            t1_entries: EntrySpec::from_defs(scopes::REPLAY_ENTRY_POINTS),
            t2_entries: EntrySpec::from_defs(scopes::SUPERVISION_ENTRY_POINTS),
            t2_indexing: false,
            t3_scopes: scopes::owned(scopes::WORKER_PATHS),
            harness_scopes: scopes::owned(scopes::HARNESS),
        }
    }

    /// A config with every scope empty — fixture tests enable exactly the
    /// rules they exercise.
    pub fn bare(root: PathBuf) -> Self {
        Self {
            root,
            d1_scopes: Vec::new(),
            d2_scopes: Vec::new(),
            d3_scopes: Vec::new(),
            e1: Vec::new(),
            w1_member_dirs: None,
            t1_entries: Vec::new(),
            t2_entries: Vec::new(),
            t2_indexing: false,
            t3_scopes: Vec::new(),
            harness_scopes: Vec::new(),
        }
    }

    /// Whether any interprocedural rule is on — these need the whole
    /// source tree, not just the lexical scopes.
    fn needs_graph(&self) -> bool {
        !self.t1_entries.is_empty() || !self.t2_entries.is_empty()
    }

    fn rust_scopes(&self) -> Vec<String> {
        if self.needs_graph() {
            // The empty prefix matches every path: the call graph is only
            // sound if it spans all crates.
            return vec![String::new()];
        }
        let mut scopes: Vec<String> = self
            .d1_scopes
            .iter()
            .chain(&self.d2_scopes)
            .chain(&self.d3_scopes)
            .chain(&self.t3_scopes)
            .cloned()
            .collect();
        for e1 in &self.e1 {
            scopes.push(e1.enum_file.clone());
            scopes.push(e1.serializer_file.clone());
            scopes.push(e1.aggregator_file.clone());
        }
        scopes.sort();
        scopes.dedup();
        scopes
    }
}

/// Runs every configured rule and returns suppression-filtered findings,
/// sorted by `(file, line, col, rule)`.
pub fn analyze(config: &Config) -> Result<Vec<Finding>, String> {
    let files = collect_sources(config)?;
    let mut findings = Vec::new();
    for file in &files {
        if scan::in_scope(&file.rel, &config.d1_scopes) {
            rules::determinism::check(file, &mut findings);
        }
        if scan::in_scope(&file.rel, &config.d2_scopes) {
            rules::ordering::check(file, &mut findings);
        }
        if scan::in_scope(&file.rel, &config.d3_scopes) {
            rules::panics::check(file, &mut findings);
        }
        if scan::in_scope(&file.rel, &config.t3_scopes) {
            taint::check_t3(file, &mut findings);
        }
    }
    for e1 in &config.e1 {
        rules::exhaustive::check(e1, &files, &mut findings);
    }
    if let Some(dirs) = &config.w1_member_dirs {
        rules::posture::check(&config.root, dirs, &mut findings)?;
    }
    if config.needs_graph() {
        let parsed: Vec<parse::ParsedFile> = files.iter().map(parse::parse_file).collect();
        let table = symbols::SymbolTable::build(&files, &parsed, &config.harness_scopes);
        let graph = callgraph::CallGraph::build(&table, &files);
        taint::check_t1(&table, &graph, &files, &config.t1_entries, &mut findings);
        taint::check_t2(
            &table,
            &graph,
            &files,
            &config.t2_entries,
            config.t2_indexing,
            &mut findings,
        );
    }
    findings.retain(|f| !is_suppressed(f, &files));
    sort_canonical(&mut findings);
    findings.dedup();
    Ok(findings)
}

/// The one finding order every consumer sees: `(file, line, col, rule)`,
/// with message and hint as final tie-breaks. Applied before baseline
/// diffing and before every emitter, so text, JSON and SARIF output are
/// byte-stable run over run.
pub fn sort_canonical(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule, &a.message, &a.hint)
            .cmp(&(&b.file, b.line, b.col, b.rule, &b.message, &b.hint))
    });
}

/// The outcome of an analysis run judged against a baseline.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Findings not covered by the baseline: regressions, CI-fatal.
    pub new: Vec<Finding>,
    /// Findings matched by a baseline entry: grandfathered debt.
    pub baselined: Vec<Finding>,
    /// Baseline entries matching no current finding: stale, CI-fatal
    /// (the debt was paid — the entry must be removed).
    pub stale: Vec<baseline::Entry>,
}

impl Outcome {
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Runs the analysis and splits the result against `baseline`.
pub fn analyze_with_baseline(config: &Config, baseline: &Baseline) -> Result<Outcome, String> {
    let findings = analyze(config)?;
    Ok(baseline.judge(findings))
}

fn is_suppressed(finding: &Finding, files: &[SourceFile]) -> bool {
    // W1 findings sit on manifests, which carry no suppressions.
    let Some(file) = files.iter().find(|f| f.rel == finding.file) else {
        return false;
    };
    let aliases = finding.rule.alias_of();
    file.lexed.suppressions.iter().any(|s| {
        (s.line == finding.line || s.line + 1 == finding.line)
            && s.rules
                .iter()
                .any(|r| r == finding.rule.as_str() || aliases.iter().any(|a| a == r))
    })
}

/// Loads and lexes every `.rs` file any rule's scope names, in sorted
/// path order (the analyzer's own output must be deterministic).
fn collect_sources(config: &Config) -> Result<Vec<SourceFile>, String> {
    let mut rel_paths = Vec::new();
    walk_rs(&config.root, Path::new(""), &mut rel_paths)?;
    rel_paths.sort();
    let scopes = config.rust_scopes();
    let mut files = Vec::new();
    for rel in rel_paths {
        if !scan::in_scope(&rel, &scopes) {
            continue;
        }
        let abs = config.root.join(&rel);
        let bytes =
            std::fs::read(&abs).map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        files.push(SourceFile::new(rel, &bytes));
    }
    Ok(files)
}

fn walk_rs(root: &Path, rel: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let dir = root.join(rel);
    let entries =
        std::fs::read_dir(&dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut names: Vec<(bool, String)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.path().is_dir();
        names.push((is_dir, name));
    }
    names.sort();
    for (is_dir, name) in names {
        // Build output, VCS metadata, and the vendored shims are never in
        // any rule's scope; skipping them keeps the walk fast.
        if is_dir && matches!(name.as_str(), "target" | ".git" | "vendor" | ".claude") {
            continue;
        }
        let child = if rel.as_os_str().is_empty() {
            PathBuf::from(&name)
        } else {
            rel.join(&name)
        };
        if is_dir {
            walk_rs(root, &child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the analysis root.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
