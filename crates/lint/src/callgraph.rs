//! The over-approximate workspace call graph.
//!
//! Edges are resolved from call-site shapes with a name+receiver
//! heuristic — no type checking, so the graph *over*-approximates real
//! reachability (DESIGN.md §15 discusses the trade-off):
//!
//! * `Type::name(..)` → fns named `name` inside `impl Type` blocks; if
//!   none exist (a std type, or `module::helper(..)`), free fns named
//!   `name` in files plausibly belonging to module `module`;
//! * `self.name(..)` → methods of the caller's own impl type first,
//!   falling back to every method named `name` (trait dispatch);
//! * `var.name(..)` → a light local-type scan (`var: Type`,
//!   `var = Type::..`) narrows the target; otherwise every method named
//!   `name` matches;
//! * `name(..)` → every free fn named `name`;
//! * macros get no edges (they are taint *sources*, not calls).
//!
//! Over-approximation errs on the side of flagging: a spurious edge can
//! only produce a finding a human then suppresses with a reasoned
//! `lint:allow`; a missing edge would silently void a replay guarantee.
//! Two deliberate exceptions keep the noise bounded: test fns and
//! harness files (bench/lint drivers) receive no incoming edges — the
//! measured system never calls back into its drivers.

use crate::lexer::{TokKind, Token};
use crate::parse::{Callee, Receiver};
use crate::scan::{self, SourceFile};
use crate::symbols::SymbolTable;
use std::collections::{BTreeSet, VecDeque};

/// Forward adjacency: `callees[f]` is sorted and deduplicated.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub callees: Vec<Vec<usize>>,
}

impl CallGraph {
    /// `files` is the same aligned slice the table was built from — the
    /// resolver reaches back into it for local-type scans.
    pub fn build(table: &SymbolTable, files: &[SourceFile]) -> Self {
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); table.fns.len()];
        for (caller, info) in table.fns.iter().enumerate() {
            if info.is_test {
                continue;
            }
            let mut targets = BTreeSet::new();
            for call in &info.calls {
                resolve(table, files, caller, &call.callee, &mut targets);
            }
            callees[caller] = targets
                .into_iter()
                .filter(|&t| t != caller && !table.fns[t].is_harness && !table.fns[t].is_test)
                .collect();
        }
        Self { callees }
    }

    /// BFS distance from `from` to every fn (`None` = unreachable).
    /// Neighbor order is the sorted adjacency, so ties break toward the
    /// lowest fn id — deterministically.
    pub fn distances(&self, from: usize) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.callees.len()];
        if from >= dist.len() {
            return dist;
        }
        dist[from] = Some(0);
        let mut queue = VecDeque::from([from]);
        while let Some(at) = queue.pop_front() {
            let Some(d) = dist[at] else { continue };
            for &next in &self.callees[at] {
                if dist[next].is_none() {
                    dist[next] = Some(d + 1);
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// The lexicographically-first shortest call chain `from → .. → to`,
    /// as fn ids (inclusive both ends). `None` if unreachable.
    pub fn witness(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let dist = self.distances(from);
        dist.get(to).copied().flatten()?;
        // Walk backward from `to`: at each step pick the lowest-id
        // predecessor one step closer to `from`.
        let mut chain = vec![to];
        let mut at = to;
        while at != from {
            let d = dist[at]?;
            let mut pred = None;
            for (p, targets) in self.callees.iter().enumerate() {
                if dist[p] == Some(d.saturating_sub(1)) && targets.binary_search(&at).is_ok() {
                    pred = Some(p);
                    break;
                }
            }
            at = pred?;
            chain.push(at);
        }
        chain.reverse();
        Some(chain)
    }
}

fn resolve(
    table: &SymbolTable,
    files: &[SourceFile],
    caller: usize,
    callee: &Callee,
    out: &mut BTreeSet<usize>,
) {
    match callee {
        Callee::Free(name) => out.extend(table.free(name)),
        Callee::Qualified(qualifier, name) => {
            let owned = table.owned(qualifier, name);
            if !owned.is_empty() {
                out.extend(owned);
                return;
            }
            // `module::helper(..)` — free fns named `name` whose path
            // mentions the module; with no path match, no edge (a std
            // or vendored qualifier).
            let module_file = format!("/{qualifier}.rs");
            let module_dir = format!("/{qualifier}/");
            out.extend(table.free(name).iter().copied().filter(|&id| {
                let f = format!("/{}", table.fns[id].file);
                f.ends_with(&module_file) || f.contains(&module_dir)
            }));
        }
        Callee::Method(recv, name) => {
            match recv {
                Receiver::SelfRecv => {
                    if let Some(owner) = &table.fns[caller].owner {
                        let owned = table.owned(owner, name);
                        if !owned.is_empty() {
                            out.extend(owned);
                            return;
                        }
                    }
                }
                Receiver::Var(var) => {
                    let mut narrowed = false;
                    for ty in local_types(table, files, caller, var) {
                        let owned = table.owned(&ty, name);
                        if !owned.is_empty() {
                            out.extend(owned);
                            narrowed = true;
                        }
                    }
                    if narrowed {
                        return;
                    }
                }
                Receiver::Opaque => {}
            }
            out.extend(table.methods(name));
        }
        Callee::Macro(_) => {}
    }
}

/// Scans the caller's token span for `var: Type` annotations and
/// `var = Type::..` / `var = Type {..}` initializers; returns candidate
/// type names (capitalized idents only).
fn local_types(table: &SymbolTable, files: &[SourceFile], caller: usize, var: &str) -> Vec<String> {
    let info = &table.fns[caller];
    let mut out = Vec::new();
    let Some(file) = files.get(info.file_idx) else {
        return out;
    };
    let tokens: &[Token] = file.tokens();
    let (start, end) = info.span;
    let end = end.min(tokens.len().saturating_sub(1));
    let mut i = start;
    while i + 2 <= end {
        if scan::is_ident(&tokens[i], var) {
            // `var : [& mut] Type`
            if scan::is_punct(&tokens[i + 1], ':')
                && !tokens.get(i + 2).is_some_and(|t| scan::is_punct(t, ':'))
            {
                let mut j = i + 2;
                while j <= end
                    && (scan::is_punct(&tokens[j], '&')
                        || scan::is_ident(&tokens[j], "mut")
                        || matches!(&tokens[j].kind, TokKind::Lifetime(_)))
                {
                    j += 1;
                }
                if let Some(name) = tokens.get(j).and_then(scan::ident_name) {
                    push_type(&mut out, name);
                }
            }
            // `var = Type ::` / `var = Type {` / `var = Type (`
            if scan::is_punct(&tokens[i + 1], '=') {
                if let Some(name) = tokens.get(i + 2).and_then(scan::ident_name) {
                    let after = tokens.get(i + 3);
                    if after.is_some_and(|t| {
                        scan::is_punct(t, ':') || scan::is_punct(t, '{') || scan::is_punct(t, '(')
                    }) {
                        push_type(&mut out, name);
                    }
                }
            }
        }
        i += 1;
    }
    out
}

fn push_type(out: &mut Vec<String>, name: &str) {
    if name.chars().next().is_some_and(char::is_uppercase) && !out.iter().any(|t| t == name) {
        out.push(name.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::symbols::SymbolTable;

    fn graph(sources: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::new(rel.to_string(), src.as_bytes()))
            .collect();
        let parsed = files.iter().map(parse_file).collect::<Vec<_>>();
        let table = SymbolTable::build(&files, &parsed, &["harness/".to_string()]);
        let g = CallGraph::build(&table, &files);
        (table, g)
    }

    fn id(table: &SymbolTable, name: &str) -> usize {
        table
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn free_calls_link_across_files() {
        let (t, g) = graph(&[
            ("a.rs", "pub fn top() { helper(); }"),
            ("b.rs", "pub fn helper() { leaf(); }\npub fn leaf() {}"),
        ]);
        let (top, helper, leaf) = (id(&t, "top"), id(&t, "helper"), id(&t, "leaf"));
        assert_eq!(g.callees[top], vec![helper]);
        assert_eq!(g.witness(top, leaf), Some(vec![top, helper, leaf]));
    }

    #[test]
    fn qualified_calls_prefer_the_impl_owner() {
        let (t, g) = graph(&[
            ("a.rs", "pub fn top() { Journal::replay(); }"),
            (
                "b.rs",
                "impl Journal { pub fn replay(&self) {} }\nimpl Other { pub fn replay(&self) {} }",
            ),
        ]);
        let top = id(&t, "top");
        assert_eq!(g.callees[top].len(), 1);
        assert_eq!(t.fns[g.callees[top][0]].owner.as_deref(), Some("Journal"));
    }

    #[test]
    fn module_qualified_calls_match_by_path() {
        let (t, g) = graph(&[
            ("a.rs", "pub fn top() { journal::recover(); }"),
            ("journal.rs", "pub fn recover() {}"),
            ("other.rs", "pub fn recover() {}"),
        ]);
        let top = id(&t, "top");
        assert_eq!(g.callees[top].len(), 1);
        assert_eq!(t.fns[g.callees[top][0]].file, "journal.rs");
    }

    #[test]
    fn self_calls_resolve_within_the_owner() {
        let (t, g) = graph(&[(
            "a.rs",
            "impl W { pub fn run(&self) { self.step(); } pub fn step(&self) {} }\n\
             impl V { pub fn step(&self) {} }",
        )]);
        let run = id(&t, "run");
        assert_eq!(g.callees[run].len(), 1);
        assert_eq!(t.fns[g.callees[run][0]].owner.as_deref(), Some("W"));
    }

    #[test]
    fn var_receivers_narrow_through_local_types() {
        let (t, g) = graph(&[(
            "a.rs",
            "pub fn top(w: Worker) { w.step(); }\n\
             impl Worker { pub fn step(&self) {} }\n\
             impl Other { pub fn step(&self) {} }",
        )]);
        let top = id(&t, "top");
        assert_eq!(g.callees[top].len(), 1);
        assert_eq!(t.fns[g.callees[top][0]].owner.as_deref(), Some("Worker"));
    }

    #[test]
    fn unknown_receivers_over_approximate_to_all_methods() {
        let (t, g) = graph(&[(
            "a.rs",
            "pub fn top() { make().step(); }\n\
             impl Worker { pub fn step(&self) {} }\n\
             impl Other { pub fn step(&self) {} }",
        )]);
        let top = id(&t, "top");
        assert_eq!(g.callees[top].len(), 2);
    }

    #[test]
    fn harness_and_test_fns_get_no_incoming_edges() {
        let (t, g) = graph(&[
            ("a.rs", "pub fn top() { measure(); probe(); }"),
            ("harness/perf.rs", "pub fn measure() {}"),
            ("b.rs", "#[cfg(test)]\nmod tests { pub fn probe() {} }"),
        ]);
        let top = id(&t, "top");
        assert!(g.callees[top].is_empty(), "{:?}", g.callees[top]);
    }

    #[test]
    fn witness_is_shortest_and_deterministic() {
        let (t, g) = graph(&[(
            "a.rs",
            "pub fn entry() { mid_a(); mid_b(); }\n\
             pub fn mid_a() { sink(); }\n\
             pub fn mid_b() { via(); }\n\
             pub fn via() { sink(); }\n\
             pub fn sink() {}",
        )]);
        let chain = g.witness(id(&t, "entry"), id(&t, "sink")).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(t.fns[chain[1]].name, "mid_a");
    }
}
