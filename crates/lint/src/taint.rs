//! **T1/T2/T3** — the interprocedural rule family, built on the
//! [`crate::parse`] → [`crate::symbols`] → [`crate::callgraph`] stack.
//!
//! The lexical D-rules answer "does this *file* contain a banned
//! construct"; the T-rules answer the question that actually matters for
//! replay: "can a *replay entry point* reach one". A wall-clock read in
//! a leaf helper is harmless until somebody wires that helper into
//! `Campaign::run` — at which point the D1 scope list may not even cover
//! the helper's crate. T1 closes that hole transitively:
//!
//! * **T1 determinism taint** — seeds taint at wall-clock / OS-entropy /
//!   `std::env` reads and hash-order iteration sites, and reports every
//!   source a replay entry point ([`crate::scopes::REPLAY_ENTRY_POINTS`])
//!   can reach, with the full witness call chain in the hint;
//! * **T2 panic reachability** — same propagation for
//!   `unwrap`/`expect`/panicking macros (and, optionally, slice
//!   indexing) reachable from supervision entries — the call-graph
//!   upgrade of D3's file-scope approximation;
//! * **T3 lock discipline** — a lexical check on worker-path files
//!   ([`crate::scopes::WORKER_PATHS`]): cross-shard state must flow
//!   through per-shard slots (`slots[id].lock()`) merged on `(at, seq)`,
//!   never through un-sharded locks or non-`Relaxed` atomic orderings
//!   that would make output depend on OS scheduling.
//!
//! Findings land on the *source* token (the `Instant::now()`, the
//! `unwrap()`), where a `lint:allow` belongs and where the baseline can
//! match them stably; the witness chain lives in the hint so an edit to
//! an intermediate caller doesn't churn baseline entries.

use crate::callgraph::CallGraph;
use crate::lexer::Token;
use crate::rules::{determinism, ordering};
use crate::scan::{self, SourceFile};
use crate::scopes::EntryPointDef;
use crate::symbols::SymbolTable;
use crate::{Finding, RuleId};
use std::collections::BTreeSet;

/// Owned form of [`EntryPointDef`] carried by `Config`.
#[derive(Debug, Clone)]
pub struct EntrySpec {
    /// Workspace-relative file prefix the entry must live under.
    pub file: String,
    /// `None` matches any owner (or a free fn).
    pub owner: Option<String>,
    pub name: String,
}

impl EntrySpec {
    pub fn from_def(def: &EntryPointDef) -> Self {
        Self {
            file: def.file.to_string(),
            owner: def.owner.map(str::to_string),
            name: def.name.to_string(),
        }
    }

    pub fn from_defs(defs: &[EntryPointDef]) -> Vec<Self> {
        defs.iter().map(Self::from_def).collect()
    }
}

/// Resolved entry points with their BFS distance maps — computed once,
/// shared by every source site a rule seeds.
struct Reach {
    /// `(entry fn id, display name, distances)`, in manifest order.
    entries: Vec<(usize, String, Vec<Option<u32>>)>,
}

impl Reach {
    fn new(table: &SymbolTable, graph: &CallGraph, specs: &[EntrySpec]) -> Self {
        let mut seen = BTreeSet::new();
        let mut entries = Vec::new();
        for spec in specs {
            for id in table.lookup_entry(&spec.file, spec.owner.as_deref(), &spec.name) {
                if seen.insert(id) {
                    entries.push((id, table.fns[id].display(), graph.distances(id)));
                }
            }
        }
        Self { entries }
    }

    /// The nearest entry reaching `target`: ties break toward manifest
    /// order, so the reported entry is stable under unrelated edits.
    fn nearest(&self, target: usize) -> Option<(usize, &str)> {
        let mut best: Option<(u32, usize, &str)> = None;
        for (id, display, dist) in &self.entries {
            let Some(d) = dist.get(target).copied().flatten() else {
                continue;
            };
            if best.is_none_or(|(bd, _, _)| d < bd) {
                best = Some((d, *id, display));
            }
        }
        best.map(|(_, id, display)| (id, display))
    }
}

/// Renders `entry → .. → sink` as `Name (file:line) -> ..`.
fn render_chain(table: &SymbolTable, graph: &CallGraph, entry: usize, sink: usize) -> String {
    let ids = graph.witness(entry, sink).unwrap_or_else(|| vec![sink]);
    let hops: Vec<String> = ids
        .iter()
        .map(|&id| {
            let f = &table.fns[id];
            format!("{} ({}:{})", f.display(), f.file, f.line)
        })
        .collect();
    format!("call chain: {}", hops.join(" -> "))
}

/// Maps a token index to the innermost enclosing non-test fn, if any.
/// Nested fns shadow their parents so a source inside a helper is
/// attributed to the helper, not to every fn whose span contains it.
fn enclosing_fn(table: &SymbolTable, file_idx: usize, tok: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (span width, id)
    for (id, f) in table.fns.iter().enumerate() {
        if f.file_idx != file_idx || f.is_test {
            continue;
        }
        let (start, end) = f.span;
        if tok < start || tok > end {
            continue;
        }
        let width = end - start;
        if best.is_none_or(|(bw, _)| width < bw) {
            best = Some((width, id));
        }
    }
    best.map(|(_, id)| id)
}

/// **T1**: every determinism source (ambient input or hash-order
/// iteration) reachable from a replay entry point.
pub fn check_t1(
    table: &SymbolTable,
    graph: &CallGraph,
    files: &[SourceFile],
    specs: &[EntrySpec],
    findings: &mut Vec<Finding>,
) {
    if specs.is_empty() {
        return;
    }
    let reach = Reach::new(table, graph, specs);
    if reach.entries.is_empty() {
        return;
    }
    for (file_idx, file) in files.iter().enumerate() {
        let tokens = file.tokens();
        if tokens.is_empty() {
            continue;
        }
        // (token index, what, fix hint)
        let mut sources: Vec<(usize, String, String)> = Vec::new();
        for (i, what, hint) in determinism::ambient_sites(tokens, (0, tokens.len() - 1)) {
            sources.push((i, what.to_string(), hint.to_string()));
        }
        for (i, name, how) in ordering::iteration_sites(tokens) {
            sources.push((
                i,
                format!("hash-order iteration (`{how}`) over `{name}`"),
                "declare it as BTreeMap/BTreeSet, or collect and sort explicitly".to_string(),
            ));
        }
        for (i, what, fix) in sources {
            let tok = &tokens[i];
            if file.is_test_line(tok.line) {
                continue;
            }
            let Some(fid) = enclosing_fn(table, file_idx, i) else {
                continue; // top-level items (imports) stay D1's business
            };
            if table.fns[fid].is_harness {
                continue;
            }
            let Some((entry, display)) = reach.nearest(fid) else {
                continue;
            };
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                rule: RuleId::T1,
                message: format!("{what} reachable from replay entry `{display}`"),
                hint: format!("{}; {fix}", render_chain(table, graph, entry, fid)),
            });
        }
    }
}

/// **T2**: every panic site reachable from a supervision entry point.
/// `indexing` additionally seeds `slice[idx]` expressions — off in the
/// workspace policy (too many checked-by-construction sites), on in
/// fixtures that exercise it.
pub fn check_t2(
    table: &SymbolTable,
    graph: &CallGraph,
    files: &[SourceFile],
    specs: &[EntrySpec],
    indexing: bool,
    findings: &mut Vec<Finding>,
) {
    if specs.is_empty() {
        return;
    }
    let reach = Reach::new(table, graph, specs);
    if reach.entries.is_empty() {
        return;
    }
    for (file_idx, file) in files.iter().enumerate() {
        let tokens = file.tokens();
        for (i, what) in panic_sites(tokens, indexing) {
            let tok = &tokens[i];
            if file.is_test_line(tok.line) {
                continue;
            }
            let Some(fid) = enclosing_fn(table, file_idx, i) else {
                continue;
            };
            if table.fns[fid].is_harness {
                continue;
            }
            let Some((entry, display)) = reach.nearest(fid) else {
                continue;
            };
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                rule: RuleId::T2,
                message: format!("{what} reachable from supervision entry `{display}`"),
                hint: format!(
                    "{}; return a typed error or restructure with let-else/map_or",
                    render_chain(table, graph, entry, fid)
                ),
            });
        }
    }
}

/// Macros that abort the thread outright. `assert!` family is exempt:
/// those are deliberate invariant checks whose failure means the code
/// is wrong, not that an input was — flagging them would train people
/// to delete their invariants.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Panic sites in a token stream: `(token index, description)`.
fn panic_sites(tokens: &[Token], indexing: bool) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let Some(name) = scan::ident_name(&tokens[i]) else {
            continue;
        };
        let prev_dot = i >= 1 && scan::is_punct(&tokens[i - 1], '.');
        let next = |n: usize| tokens.get(i + n);
        // `.unwrap()` exactly — `unwrap_or*` are total.
        if prev_dot
            && name == "unwrap"
            && next(1).is_some_and(|t| scan::is_punct(t, '('))
            && next(2).is_some_and(|t| scan::is_punct(t, ')'))
        {
            out.push((i, "`.unwrap()`".to_string()));
        }
        if prev_dot && name == "expect" && next(1).is_some_and(|t| scan::is_punct(t, '(')) {
            out.push((i, "`.expect()`".to_string()));
        }
        // `panic!(..)` and friends.
        let is_macro = next(1).is_some_and(|t| scan::is_punct(t, '!'));
        if is_macro && PANIC_MACROS.contains(&name) {
            out.push((i, format!("panicking macro `{name}!`")));
        }
    }
    // `recv[idx]` — optional, noisy on checked-by-construction code.
    if indexing {
        for i in 1..tokens.len() {
            if scan::is_punct(&tokens[i], '[')
                && scan::ident_name(&tokens[i - 1]).is_some()
                && tokens.get(i + 1).is_some_and(|t| !scan::is_punct(t, ']'))
            {
                out.push((i, "possibly-panicking indexing `[..]`".to_string()));
            }
        }
        out.sort_by_key(|(i, _)| *i);
    }
    out
}

/// Tracked lock identifiers: `name: ..Mutex<..>` / `name = Mutex::new(..)`
/// declarations, including through wrappers (`Arc<Mutex<..>>`). The
/// leftward walk stops at `:` or `=` and takes the ident before it.
fn tracked_locks(tokens: &[Token]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for i in 0..tokens.len() {
        let Some(ty) = scan::ident_name(&tokens[i]) else {
            continue;
        };
        if ty != "Mutex" && ty != "RwLock" {
            continue;
        }
        // Walk left over wrapper-type syntax to the declaring `:`/`=`.
        let mut j = i;
        let mut steps = 0;
        while j >= 1 && steps < 16 {
            let t = &tokens[j - 1];
            let wrapper = scan::ident_name(t).is_some_and(|n| {
                n.chars().next().is_some_and(char::is_uppercase) || n == "std" || n == "sync"
            });
            if wrapper
                || scan::is_punct(t, '<')
                || scan::is_punct(t, ':') && j >= 2 && scan::is_punct(&tokens[j - 2], ':')
            {
                j -= 1;
                steps += 1;
                continue;
            }
            break;
        }
        if j == 0 {
            continue;
        }
        let before = &tokens[j - 1];
        let declares = (scan::is_punct(before, ':')
            && !(j >= 2 && scan::is_punct(&tokens[j - 2], ':')))
            || scan::is_punct(before, '=');
        if declares && j >= 2 {
            if let Some(name) = scan::ident_name(&tokens[j - 2]) {
                // `type Alias = Mutex<..>` declares a type, not a value.
                if !(j >= 3 && scan::is_ident(&tokens[j - 3], "type")) {
                    tracked.insert(name.to_string());
                }
            }
        }
    }
    tracked
}

/// Atomic orderings that impose cross-shard synchronization order. The
/// sanctioned worker idiom needs none: shard claims use a `Relaxed`
/// counter (any interleaving yields the same partition) and results
/// merge on `(at, seq)` after `join`.
const SYNC_ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];

/// Methods that take a lock.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// **T3**: lock/ordering discipline in worker-path files. Flags
/// un-sharded lock acquisition (`shared.lock()` where `shared` is a
/// tracked `Mutex`/`RwLock` — per-shard `slots[id].lock()` passes, the
/// receiver there is an index expression) and non-`Relaxed` atomic
/// orderings.
pub fn check_t3(file: &SourceFile, findings: &mut Vec<Finding>) {
    let tokens = file.tokens();
    let tracked = tracked_locks(tokens);
    for i in 0..tokens.len() {
        let tok = &tokens[i];
        if file.is_test_line(tok.line) {
            continue;
        }
        let Some(name) = scan::ident_name(tok) else {
            continue;
        };
        // `shared.lock()` — receiver is a bare tracked ident (an indexed
        // receiver puts `]` before the dot and never matches).
        if LOCK_METHODS.contains(&name)
            && i >= 2
            && scan::is_punct(&tokens[i - 1], '.')
            && tokens.get(i + 1).is_some_and(|t| scan::is_punct(t, '('))
        {
            if let Some(recv) = scan::ident_name(&tokens[i - 2]) {
                if tracked.contains(recv) {
                    findings.push(Finding {
                        file: file.rel.clone(),
                        line: tok.line,
                        col: tok.col,
                        rule: RuleId::T3,
                        message: format!(
                            "un-sharded lock acquisition `{recv}.{name}()` in a worker path"
                        ),
                        hint: "give each shard its own slot (`slots[shard_id].lock()`) and \
                               merge results on `(at, seq)` after join"
                            .into(),
                    });
                }
            }
        }
        // `Ordering::SeqCst` etc. — scheduling-dependent synchronization.
        if SYNC_ORDERINGS.contains(&name)
            && i >= 2
            && scan::is_punct(&tokens[i - 1], ':')
            && scan::is_punct(&tokens[i - 2], ':')
            && i >= 3
            && scan::is_ident(&tokens[i - 3], "Ordering")
        {
            findings.push(Finding {
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                rule: RuleId::T3,
                message: format!(
                    "synchronizing atomic ordering `Ordering::{name}` in a worker path"
                ),
                hint: "worker claims must be order-free: use `Ordering::Relaxed` counters and \
                       merge on `(at, seq)` instead of synchronizing on atomics"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> SourceFile {
        SourceFile::new("t.rs".to_string(), src.as_bytes())
    }

    #[test]
    fn panic_sites_find_unwrap_expect_and_macros() {
        let f = lex("fn f(x: Option<u8>) { x.unwrap(); x.expect(\"m\"); panic!(\"n\"); }");
        let sites = panic_sites(f.tokens(), false);
        let kinds: Vec<&str> = sites.iter().map(|(_, w)| w.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["`.unwrap()`", "`.expect()`", "panicking macro `panic!`"]
        );
    }

    #[test]
    fn unwrap_or_named_macros_and_asserts_do_not_match() {
        let f = lex(
            "fn f(x: Option<u8>) { x.unwrap_or(0); x.unwrap_or_default(); println!(\"k\"); \
             assert!(true); assert_eq!(1, 1); }",
        );
        assert!(panic_sites(f.tokens(), false).is_empty());
    }

    #[test]
    fn indexing_sites_are_gated() {
        let f = lex("fn f(v: &[u8], i: usize) -> u8 { v[i] }");
        assert!(panic_sites(f.tokens(), false).is_empty());
        assert_eq!(panic_sites(f.tokens(), true).len(), 1);
    }

    #[test]
    fn tracked_locks_see_through_wrappers_but_not_type_aliases() {
        let f = lex("type Slot = Mutex<u8>;\n\
             struct S { shared: Arc<Mutex<Vec<u8>>>, plain: RwLock<u8> }\n\
             fn f() { let local = Mutex::new(0u8); }");
        let tracked = tracked_locks(f.tokens());
        assert!(tracked.contains("shared"));
        assert!(tracked.contains("plain"));
        assert!(tracked.contains("local"));
        assert!(!tracked.contains("Slot"));
    }

    #[test]
    fn t3_passes_the_sanctioned_shard_idiom() {
        let f = lex("fn run() {\n\
             let slots: Vec<Mutex<Option<u8>>> = Vec::new();\n\
             let got = slots[3].lock();\n\
             let claimed = next.fetch_add(1, Ordering::Relaxed);\n\
             }");
        let mut findings = Vec::new();
        check_t3(&f, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn t3_flags_unsharded_locks_and_sync_orderings() {
        let f = lex("fn run() {\n\
             let shared: Mutex<Vec<u8>> = Mutex::new(Vec::new());\n\
             shared.lock().ok();\n\
             flag.store(true, Ordering::SeqCst);\n\
             }");
        let mut findings = Vec::new();
        check_t3(&f, &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("shared.lock()"));
        assert!(findings[1].message.contains("SeqCst"));
    }
}
