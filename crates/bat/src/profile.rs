//! Per-ISP server behaviour profiles.
//!
//! The knobs below are the *generative* side of the paper's Fig. 2
//! microbenchmarks. They are calibrated so that BQT's measured hit rate and
//! query-time distributions land in the reported bands — the measurements
//! themselves are produced by running the pipeline, not by these constants.
//!
//! Paper targets: hit rate above 80% for every ISP, best for Cox (96%),
//! worst for Spectrum (82%); median query time lowest for Frontier (27 s)
//! and highest for Spectrum (100 s).

use bbsim_isp::Isp;
use bbsim_net::{LatencyModel, SimDuration};

/// Behavioural profile of one ISP's BAT deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerProfile {
    /// Per-page-render latency (each workflow step pays one draw).
    pub step_latency: LatencyModel,
    /// One-way network latency between client and this BAT.
    pub network_latency: LatencyModel,
    /// Fraction of addresses this BAT permanently cannot process (broken
    /// back-end lookups, unparseable records). Keyed per address, so
    /// retries do not help — the dominant hit-rate loss.
    pub hard_failure_rate: f64,
    /// Per-request transient failure probability (HTTP 500); retries help.
    pub transient_failure_rate: f64,
    /// Fraction of addresses whose residents already subscribe, triggering
    /// the existing-customer interstitial.
    pub existing_customer_rate: f64,
    /// Fraction of addresses missing from the ISP's own address database
    /// (returns not-found with unhelpful suggestions).
    pub unknown_address_rate: f64,
    /// Requests allowed per session cookie before the BAT blocks it.
    pub cookie_budget: u32,
    /// Requests allowed per source IP within [`Self::rate_window`].
    pub rate_limit: u32,
    /// Sliding-window length for the per-IP rate limit.
    pub rate_window: SimDuration,
}

impl ServerProfile {
    /// The calibrated profile for `isp`.
    pub fn for_isp(isp: Isp) -> Self {
        // (median step seconds, sigma, hard failure, unknown rate)
        let (step_s, sigma, hard, unknown) = match isp {
            Isp::Att => (13.0, 0.35, 0.045, 0.015),
            Isp::Verizon => (15.0, 0.35, 0.065, 0.020),
            Isp::CenturyLink => (18.0, 0.40, 0.085, 0.020),
            Isp::Frontier => (11.0, 0.30, 0.115, 0.025),
            Isp::Spectrum => (43.0, 0.45, 0.145, 0.025),
            Isp::Cox => (12.0, 0.35, 0.015, 0.010),
            Isp::Xfinity => (14.0, 0.35, 0.075, 0.020),
        };
        ServerProfile {
            step_latency: LatencyModel::new(SimDuration::from_secs_f64(step_s), sigma),
            network_latency: LatencyModel::new(SimDuration::from_millis(80), 0.3),
            hard_failure_rate: hard,
            transient_failure_rate: 0.02,
            existing_customer_rate: 0.15,
            unknown_address_rate: unknown,
            cookie_budget: 8,
            rate_limit: 30,
            rate_window: SimDuration::from_secs(60),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_isp::ALL_ISPS;

    #[test]
    fn every_isp_has_a_profile() {
        for isp in ALL_ISPS {
            let p = ServerProfile::for_isp(isp);
            assert!(p.hard_failure_rate < 0.2);
            assert!(p.transient_failure_rate < 0.1);
            assert!(p.cookie_budget >= 4, "workflows need a few requests");
        }
    }

    #[test]
    fn cox_is_most_reliable_spectrum_least() {
        // Fig 2a ordering: Cox best (96%), Spectrum worst (82%).
        let loss = |i: Isp| {
            let p = ServerProfile::for_isp(i);
            p.hard_failure_rate + p.unknown_address_rate
        };
        for isp in ALL_ISPS {
            if isp != Isp::Cox {
                assert!(loss(Isp::Cox) < loss(isp), "{isp}");
            }
            if isp != Isp::Spectrum {
                assert!(loss(Isp::Spectrum) > loss(isp), "{isp}");
            }
        }
    }

    #[test]
    fn frontier_fastest_spectrum_slowest() {
        // Fig 2b ordering: Frontier median 27 s, Spectrum 100 s.
        let med = |i: Isp| ServerProfile::for_isp(i).step_latency.median().as_millis();
        for isp in ALL_ISPS {
            if isp != Isp::Frontier {
                assert!(med(Isp::Frontier) < med(isp), "{isp}");
            }
            if isp != Isp::Spectrum {
                assert!(med(Isp::Spectrum) > med(isp), "{isp}");
            }
        }
    }

    #[test]
    fn implied_hit_rates_are_above_80_percent() {
        // Hard failures + unknown addresses + a soft-loss allowance must
        // leave every ISP above the paper's 80% floor.
        for isp in ALL_ISPS {
            let p = ServerProfile::for_isp(isp);
            let implied = 1.0 - p.hard_failure_rate - p.unknown_address_rate - 0.02;
            assert!(implied > 0.80, "{isp}: implied hit rate {implied}");
        }
    }
}
