//! The BAT server state machine.
//!
//! One [`BatServer`] instance serves one (ISP, city) deployment over the
//! simulated transport. The workflow mirrors the paper's Fig. 1:
//!
//! ```text
//! POST /locate {address}            -> plans | not-found+suggestions | MDU
//!                                      | existing-customer | no-service
//!                                      | technical difficulty
//! POST /select {choice|action}      -> next step for the chosen address
//! ```
//!
//! Safeguards (§3.2): every `/locate` issues a fresh dynamic session cookie;
//! a cookie presented more than its budget is blocked with HTTP 403, and a
//! source IP exceeding the sliding-window rate limit receives HTTP 429.

use crate::drift::DriftSchedule;
use crate::index::AddressIndex;
use crate::profile::ServerProfile;
use crate::templates;
use crate::templates::TemplateVersion;
use bbsim_address::abbrev::normalize_line;
use bbsim_address::AddressId;
use bbsim_isp::{CityWorld, Isp};
use bbsim_net::{Exchange, Request, Response, Service, SimDuration, SimIp, SimTime, Status};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Per-session server-side state.
#[derive(Debug, Clone, Default)]
struct Session {
    /// Requests presented with this cookie so far.
    requests: u32,
    /// Address resolved in an earlier step (for `action=new-customer`).
    resolved: Option<AddressId>,
    /// The existing-customer interstitial was already acknowledged.
    interstitial_done: bool,
}

/// The simulated broadband-availability tool of one ISP in one city.
pub struct BatServer {
    isp: Isp,
    world: Arc<CityWorld>,
    profile: ServerProfile,
    index: AddressIndex,
    sessions: HashMap<String, Session>,
    ip_hits: HashMap<SimIp, VecDeque<SimTime>>,
    next_session: u64,
    /// Count of requests rejected by safeguards (for experiments).
    pub blocked_requests: u64,
    /// Front-end markup generation (a redesign breaks unprepared clients).
    template_version: TemplateVersion,
    /// When set, redesigns deploy themselves on the virtual clock.
    drift: Option<DriftSchedule>,
}

/// Stable salted hash for per-address behaviour draws.
fn addr_draw(isp: Isp, id: AddressId, salt: u64) -> f64 {
    let mut h: u64 = 0x51_7CC1_B727_220A ^ salt ^ ((isp.column() as u64) << 56);
    h ^= id as u64;
    h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h % 1_000_000) as f64 / 1_000_000.0
}

impl BatServer {
    /// Builds the BAT for `isp` over a shared city world.
    ///
    /// # Panics
    /// Panics if `isp` is not active in the city — a real ISP does not run
    /// an availability site for a city it never entered.
    pub fn new(isp: Isp, world: Arc<CityWorld>) -> Self {
        assert!(
            world.isps().contains(&isp),
            "{isp} is not active in {}",
            world.city().name
        );
        let index = AddressIndex::build(world.addresses());
        Self {
            isp,
            world,
            profile: ServerProfile::for_isp(isp),
            index,
            sessions: HashMap::new(),
            ip_hits: HashMap::new(),
            next_session: 0,
            blocked_requests: 0,
            template_version: TemplateVersion::V1,
            drift: None,
        }
    }

    /// Deploys a front-end redesign: all pages render in the new markup
    /// generation from now on (the §3-limitation scenario).
    pub fn set_template_version(&mut self, version: TemplateVersion) {
        self.template_version = version;
    }

    /// The currently deployed markup generation.
    pub fn template_version(&self) -> TemplateVersion {
        self.template_version
    }

    /// Attaches a drift schedule: each request re-resolves the deployed
    /// generation from the virtual clock, so redesigns land mid-campaign
    /// without anyone calling [`Self::set_template_version`].
    pub fn set_drift_schedule(&mut self, schedule: DriftSchedule) {
        self.drift = Some(schedule);
    }

    pub fn isp(&self) -> Isp {
        self.isp
    }

    pub fn profile(&self) -> &ServerProfile {
        &self.profile
    }

    /// Number of live sessions (for tests and capacity experiments).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    fn rate_limited(&mut self, peer: SimIp, now: SimTime) -> bool {
        let hits = self.ip_hits.entry(peer).or_default();
        let window_start = SimTime::from_millis(
            now.as_millis()
                .saturating_sub(self.profile.rate_window.as_millis()),
        );
        while hits.front().is_some_and(|&t| t < window_start) {
            hits.pop_front();
        }
        if hits.len() as u32 >= self.profile.rate_limit {
            return true;
        }
        hits.push_back(now);
        false
    }

    fn new_cookie(&mut self) -> String {
        self.next_session += 1;
        // Dynamic, unguessable-looking session id.
        let token = self
            .next_session
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17);
        format!("sid={token:016x}")
    }

    fn body_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
        body.lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")[..]))
    }

    /// Advances the workflow for a resolved address: interstitial, MDU, or
    /// the final plans / no-service page.
    fn page_for(&self, id: AddressId, input_line: &str, session: &mut Session) -> String {
        let record = self.world.addresses().record(id);

        // Existing-customer interstitial (once per session).
        let existing = addr_draw(self.isp, id, 0xE71) < self.profile.existing_customer_rate;
        if existing && !session.interstitial_done {
            session.resolved = Some(id);
            return templates::render_existing_customer_v(self.isp, self.template_version);
        }

        // Multi-dwelling unit: the building needs a unit choice when the
        // input did not carry one.
        let input_has_unit = normalize_line(input_line).contains(" apt ");
        if record.is_mdu && !input_has_unit {
            session.resolved = Some(id);
            let units: Vec<String> = record
                .units
                .iter()
                .map(|u| {
                    let mut a = record.canonical.clone();
                    a.unit = Some(u.clone());
                    a.canonical_line()
                })
                .collect();
            return templates::render_mdu_v(self.isp, &units, self.template_version);
        }

        session.resolved = Some(id);
        let offered = self.world.plans_at(self.isp, record);
        if offered.plans.is_empty() {
            templates::render_no_service_v(self.isp, self.template_version)
        } else {
            templates::render_plans_v(self.isp, &offered.plans, self.template_version)
        }
    }

    /// Resolves an input line to a page, covering the hard-failure, unknown
    /// address and not-found branches.
    fn resolve_line(&mut self, line: &str, session: &mut Session) -> String {
        match self.index.lookup_allowing_unit(line) {
            Some(id) => {
                if addr_draw(self.isp, id, 0xBAD) < self.profile.hard_failure_rate {
                    return templates::render_technical_difficulty_v(
                        self.isp,
                        self.template_version,
                    );
                }
                if addr_draw(self.isp, id, 0x0FF) < self.profile.unknown_address_rate {
                    // The ISP's own database is missing this address: show
                    // not-found with whatever neighbours it does know.
                    let suggestions = self.suggestions_for(line, Some(id));
                    return templates::render_not_found_v(
                        self.isp,
                        &suggestions,
                        self.template_version,
                    );
                }
                self.page_for(id, line, session)
            }
            None => {
                let suggestions = self.suggestions_for(line, None);
                templates::render_not_found_v(self.isp, &suggestions, self.template_version)
            }
        }
    }

    /// Builds the suggestion list for a failed lookup, excluding `omit`
    /// (the unknown-address case hides the true record).
    fn suggestions_for(&self, line: &str, omit: Option<AddressId>) -> Vec<String> {
        self.index
            .suggestion_candidates(line)
            .into_iter()
            .filter(|&id| Some(id) != omit)
            .take(5)
            .map(|id| self.world.addresses().record(id).canonical.canonical_line())
            .collect()
    }
}

impl Service for BatServer {
    fn handle(&mut self, peer: SimIp, req: &Request, now: SimTime, rng: &mut StdRng) -> Exchange {
        // A scheduled redesign deploys the instant the clock reaches it.
        if let Some(schedule) = &self.drift {
            self.template_version = schedule.version_at(now);
        }

        // Safeguard 1: per-IP rate limiting.
        if self.rate_limited(peer, now) {
            self.blocked_requests += 1;
            return Exchange {
                response: Response::new(Status::TooManyRequests),
                processing: SimDuration::from_millis(200),
            };
        }

        // Transient back-end failure.
        if rng.gen_bool(self.profile.transient_failure_rate) {
            return Exchange {
                response: Response::new(Status::ServerError),
                processing: self.profile.step_latency.sample(rng),
            };
        }

        let processing = self.profile.step_latency.sample(rng);

        match (req.method, req.path.as_str()) {
            (bbsim_net::Method::Post, "/locate") => {
                let Some(line) = Self::body_field(&req.body, "address") else {
                    return Exchange {
                        response: Response::new(Status::BadRequest),
                        processing: SimDuration::from_millis(200),
                    };
                };
                let cookie = self.new_cookie();
                let mut session = Session {
                    requests: 1,
                    ..Session::default()
                };
                let page = self.resolve_line(line, &mut session);
                self.sessions.insert(cookie.clone(), session);
                Exchange {
                    response: Response::ok(page).with_set_cookie(cookie),
                    processing,
                }
            }
            (bbsim_net::Method::Post, "/select") => {
                let Some(cookie) = req.cookie().map(str::to_string) else {
                    return Exchange {
                        response: Response::new(Status::Forbidden),
                        processing: SimDuration::from_millis(200),
                    };
                };
                let Some(mut session) = self.sessions.remove(&cookie) else {
                    self.blocked_requests += 1;
                    return Exchange {
                        response: Response::new(Status::Forbidden),
                        processing: SimDuration::from_millis(200),
                    };
                };
                session.requests += 1;
                // Safeguard 2: cookie reuse budget.
                if session.requests > self.profile.cookie_budget {
                    self.blocked_requests += 1;
                    return Exchange {
                        response: Response::new(Status::Forbidden),
                        processing: SimDuration::from_millis(200),
                    };
                }

                let page = if Self::body_field(&req.body, "action") == Some("new-customer") {
                    match session.resolved {
                        Some(id) => {
                            session.interstitial_done = true;
                            let line = self.world.addresses().record(id).canonical.canonical_line();
                            self.page_for(id, &line, &mut session)
                        }
                        None => {
                            return Exchange {
                                response: Response::new(Status::BadRequest),
                                processing: SimDuration::from_millis(200),
                            }
                        }
                    }
                } else if let Some(choice) = Self::body_field(&req.body, "choice") {
                    self.resolve_line(choice, &mut session)
                } else {
                    return Exchange {
                        response: Response::new(Status::BadRequest),
                        processing: SimDuration::from_millis(200),
                    };
                };
                self.sessions.insert(cookie, session);
                Exchange {
                    response: Response::ok(page),
                    processing,
                }
            }
            _ => Exchange {
                response: Response::new(Status::NotFound),
                processing: SimDuration::from_millis(200),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;
    use rand::SeedableRng;

    fn server() -> BatServer {
        let world = Arc::new(CityWorld::build(city_by_name("Billings").unwrap()));
        BatServer::new(Isp::CenturyLink, world)
    }

    fn ip(n: u32) -> SimIp {
        SimIp(u32::from_be_bytes([100, 64, 0, 0]) + n)
    }

    fn locate(server: &mut BatServer, line: &str, peer: SimIp, now_s: u64) -> Response {
        let req = Request::post("/locate", format!("address={line}"));
        let mut rng = StdRng::seed_from_u64(1);
        server
            .handle(peer, &req, SimTime::from_millis(now_s * 1000), &mut rng)
            .response
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn rejects_isp_not_in_city() {
        let world = Arc::new(CityWorld::build(city_by_name("Billings").unwrap()));
        BatServer::new(Isp::Cox, world);
    }

    #[test]
    fn canonical_address_reaches_a_terminal_or_interstitial_page() {
        let mut s = server();
        let world = s.world.clone();
        let mut terminal = 0;
        for (i, r) in world.addresses().records().iter().take(50).enumerate() {
            let resp = locate(
                &mut s,
                &r.canonical.canonical_line(),
                ip(i as u32),
                i as u64 * 120,
            );
            assert_eq!(resp.status, Status::Ok);
            assert!(resp.set_cookie().is_some(), "locate issues a cookie");
            let known_marker = [
                "availability-results",
                "class=\"offers\"",
                "class=\"packages\"",
                "mdu-prompt",
                "existing-customer",
                "no-service",
                "class=\"oops\"",
                "address-error",
            ]
            .iter()
            .any(|m| resp.body.contains(m));
            assert!(
                known_marker,
                "unrecognized page: {}",
                &resp.body[..200.min(resp.body.len())]
            );
            if resp.body.contains("offers") {
                terminal += 1;
            }
        }
        assert!(terminal > 0, "some addresses reach plans directly");
    }

    #[test]
    fn typoed_address_gets_suggestions_containing_truth() {
        let mut s = server();
        let world = s.world.clone();
        let r = world
            .addresses()
            .records()
            .iter()
            .find(|r| r.canonical.street_name.len() > 4)
            .unwrap();
        let line = r.canonical.canonical_line().replace(
            &r.canonical.street_name,
            &format!("{}x", &r.canonical.street_name[1..]),
        );
        let resp = locate(&mut s, &line, ip(0), 0);
        assert!(resp.body.contains("address-error"), "{}", &resp.body[..120]);
        assert!(
            resp.body.contains(&r.canonical.canonical_line()),
            "suggestions should contain the true address"
        );
    }

    #[test]
    fn select_with_suggestion_resolves() {
        let mut s = server();
        let world = s.world.clone();
        let r = world
            .addresses()
            .records()
            .iter()
            .find(|r| !r.is_mdu)
            .unwrap();
        // First a failed locate to get a cookie.
        let bogus = format!("9999 Zzyzx Way, Billings, MT {:05}", r.canonical.zip);
        let resp = locate(&mut s, &bogus, ip(0), 0);
        let cookie = resp.set_cookie().unwrap().to_string();
        // Now select the true canonical line.
        let req = Request::post(
            "/select",
            format!("choice={}", r.canonical.canonical_line()),
        )
        .with_cookie(cookie);
        let mut rng = StdRng::seed_from_u64(2);
        let out = s
            .handle(ip(0), &req, SimTime::from_millis(5000), &mut rng)
            .response;
        assert_eq!(out.status, Status::Ok);
        assert!(!out.body.contains("address-error"));
    }

    #[test]
    fn existing_customer_interstitial_yields_to_new_customer_action() {
        let mut s = server();
        let world = s.world.clone();
        // Find an address that triggers the interstitial.
        let target = world
            .addresses()
            .records()
            .iter()
            .find(|r| {
                addr_draw(Isp::CenturyLink, r.id, 0xE71) < s.profile.existing_customer_rate
                    && addr_draw(Isp::CenturyLink, r.id, 0xBAD) >= s.profile.hard_failure_rate
                    && addr_draw(Isp::CenturyLink, r.id, 0x0FF) >= s.profile.unknown_address_rate
            })
            .expect("some existing-customer address");
        let resp = locate(&mut s, &target.canonical.canonical_line(), ip(0), 0);
        assert!(
            resp.body.contains("existing-customer"),
            "{}",
            &resp.body[..120]
        );
        let cookie = resp.set_cookie().unwrap().to_string();
        let req = Request::post("/select", "action=new-customer").with_cookie(cookie);
        let mut rng = StdRng::seed_from_u64(3);
        let out = s
            .handle(ip(0), &req, SimTime::from_millis(9000), &mut rng)
            .response;
        assert!(
            !out.body.contains("existing-customer"),
            "interstitial must not repeat"
        );
    }

    #[test]
    fn mdu_flow_lists_units_then_resolves_choice() {
        let mut s = server();
        let world = s.world.clone();
        let mdu = world
            .addresses()
            .records()
            .iter()
            .find(|r| {
                r.is_mdu
                    && addr_draw(Isp::CenturyLink, r.id, 0xE71) >= s.profile.existing_customer_rate
                    && addr_draw(Isp::CenturyLink, r.id, 0xBAD) >= s.profile.hard_failure_rate
                    && addr_draw(Isp::CenturyLink, r.id, 0x0FF) >= s.profile.unknown_address_rate
            })
            .expect("some clean MDU");
        let resp = locate(&mut s, &mdu.canonical.canonical_line(), ip(0), 0);
        assert!(resp.body.contains("mdu-prompt"), "{}", &resp.body[..150]);
        assert!(resp.body.contains("Apt 1"));
        let cookie = resp.set_cookie().unwrap().to_string();
        let mut unit_line = mdu.canonical.clone();
        unit_line.unit = Some("1".to_string());
        let req = Request::post("/select", format!("choice={}", unit_line.canonical_line()))
            .with_cookie(cookie);
        let mut rng = StdRng::seed_from_u64(4);
        let out = s
            .handle(ip(0), &req, SimTime::from_millis(9000), &mut rng)
            .response;
        assert!(
            !out.body.contains("mdu-prompt"),
            "unit choice resolves the MDU"
        );
    }

    #[test]
    fn per_ip_rate_limit_triggers_429() {
        let mut s = server();
        let world = s.world.clone();
        let line = world.addresses().records()[0].canonical.canonical_line();
        let mut saw_429 = false;
        for i in 0..50 {
            let req = Request::post("/locate", format!("address={line}"));
            let mut rng = StdRng::seed_from_u64(i);
            // All requests from one IP within one window.
            let resp = s
                .handle(ip(0), &req, SimTime::from_millis(i * 100), &mut rng)
                .response;
            if resp.status == Status::TooManyRequests {
                saw_429 = true;
            }
        }
        assert!(saw_429);
        assert!(s.blocked_requests > 0);
    }

    #[test]
    fn rate_limit_window_slides() {
        let mut s = server();
        let world = s.world.clone();
        let line = world.addresses().records()[0].canonical.canonical_line();
        // Spread requests at 3s apart: 20 per minute < limit of 30.
        for i in 0..60u64 {
            let req = Request::post("/locate", format!("address={line}"));
            let mut rng = StdRng::seed_from_u64(i);
            let resp = s
                .handle(ip(0), &req, SimTime::from_millis(i * 3000), &mut rng)
                .response;
            assert_ne!(resp.status, Status::TooManyRequests, "request {i}");
        }
    }

    #[test]
    fn cookie_budget_blocks_reuse() {
        let mut s = server();
        let world = s.world.clone();
        let line = world.addresses().records()[0].canonical.canonical_line();
        let resp = locate(&mut s, &line, ip(1), 0);
        let cookie = resp.set_cookie().unwrap().to_string();
        let mut blocked = false;
        for i in 0..20u64 {
            let req =
                Request::post("/select", format!("choice={line}")).with_cookie(cookie.clone());
            let mut rng = StdRng::seed_from_u64(i + 10);
            let resp = s
                .handle(
                    ip(1),
                    &req,
                    SimTime::from_millis(120_000 + i * 5000),
                    &mut rng,
                )
                .response;
            if resp.status == Status::Forbidden {
                blocked = true;
                break;
            }
        }
        assert!(blocked, "cookie reuse past the budget must be blocked");
    }

    #[test]
    fn unknown_cookie_is_forbidden() {
        let mut s = server();
        let req = Request::post("/select", "choice=x").with_cookie("sid=forged");
        let mut rng = StdRng::seed_from_u64(0);
        let resp = s.handle(ip(2), &req, SimTime::ZERO, &mut rng).response;
        assert_eq!(resp.status, Status::Forbidden);
    }

    #[test]
    fn malformed_requests_get_400_or_404() {
        let mut s = server();
        // Routing is what's under test: disable transient 500s so the
        // outcome doesn't depend on the RNG stream for this seed.
        s.profile.transient_failure_rate = 0.0;
        let mut rng = StdRng::seed_from_u64(0);
        let r1 = s
            .handle(
                ip(3),
                &Request::post("/locate", "nonsense"),
                SimTime::ZERO,
                &mut rng,
            )
            .response;
        assert_eq!(r1.status, Status::BadRequest);
        let r2 = s
            .handle(ip(4), &Request::get("/whatever"), SimTime::ZERO, &mut rng)
            .response;
        assert_eq!(r2.status, Status::NotFound);
    }

    #[test]
    fn drift_schedule_redeploys_on_the_virtual_clock() {
        let mut s = server();
        s.profile.transient_failure_rate = 0.0;
        s.set_drift_schedule(DriftSchedule::flip_at(
            SimTime::from_millis(300_000),
            TemplateVersion::V2,
        ));
        let world = s.world.clone();
        let line = world.addresses().records()[0].canonical.canonical_line();
        let before = locate(&mut s, &line, ip(0), 0);
        assert_eq!(s.template_version(), TemplateVersion::V1);
        let after = locate(&mut s, &line, ip(1), 400);
        assert_eq!(s.template_version(), TemplateVersion::V2);
        assert_ne!(before.body, after.body, "redesign changes the markup");
    }

    #[test]
    fn hard_failed_addresses_always_fail() {
        let mut s = server();
        let world = s.world.clone();
        let victim = world
            .addresses()
            .records()
            .iter()
            .find(|r| addr_draw(Isp::CenturyLink, r.id, 0xBAD) < s.profile.hard_failure_rate)
            .expect("some hard-failing address");
        for attempt in 0..3 {
            let resp = locate(
                &mut s,
                &victim.canonical.canonical_line(),
                ip(10 + attempt),
                attempt as u64 * 100,
            );
            assert!(resp.body.contains("class=\"oops\""), "attempt {attempt}");
        }
    }
}
