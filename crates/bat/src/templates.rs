//! Page markup: what each ISP's BAT actually renders.
//!
//! Different ISPs present the same logical steps with different markup
//! ("different formats and interfaces", §3.1), which is why BQT needs
//! per-ISP templates. We model three markup dialects and assign each ISP
//! one, so a client that only understands one dialect fails on the others —
//! exactly the coupling the paper's manual bootstrapping step resolves.

use bbsim_isp::{Isp, Plan};

/// Front-end markup generation: ISPs periodically redesign their BATs
/// (the paper's §3 "Limitations": any interface change requires updating
/// BQT). `V1` is the bootstrapped generation; `V2` is a redesign with the
/// same workflow but renamed classes and attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TemplateVersion {
    #[default]
    V1,
    V2,
}

/// The logical page kinds of the BAT workflow (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Offered plans for the address.
    Plans,
    /// Address not recognized; suggestions offered.
    AddressNotFound,
    /// The address is a multi-dwelling unit; pick an apartment.
    MultiDwellingUnit,
    /// An active subscription exists here; choose how to proceed.
    ExistingCustomer,
    /// Served area but no broadband product at this address.
    NoService,
    /// Permanent per-address error page.
    TechnicalDifficulty,
}

/// Markup dialect an ISP's front-end uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// Plans as `<div class="plan" data-down=.. data-up=.. data-price=..>`.
    DataAttr,
    /// Plans as table rows with labelled cells.
    TableRow,
    /// Plans as list items with inline spans.
    ListItem,
}

/// Which dialect each ISP's front-end speaks.
pub fn dialect_of(isp: Isp) -> Dialect {
    match isp {
        Isp::Att | Isp::Verizon => Dialect::DataAttr,
        Isp::CenturyLink | Isp::Frontier | Isp::Xfinity => Dialect::TableRow,
        Isp::Spectrum | Isp::Cox => Dialect::ListItem,
    }
}

fn page_shell(isp: Isp, body: String) -> String {
    format!(
        "<html><head><title>{} Availability</title></head>\n<body>\n{}\n</body></html>",
        isp.name(),
        body
    )
}

/// Renders the plans page in the ISP's dialect (V1 markup).
pub fn render_plans(isp: Isp, plans: &[Plan]) -> String {
    render_plans_v(isp, plans, TemplateVersion::V1)
}

/// Renders the plans page in the ISP's dialect and template generation.
pub fn render_plans_v(isp: Isp, plans: &[Plan], version: TemplateVersion) -> String {
    let body = match (dialect_of(isp), version) {
        (Dialect::DataAttr, TemplateVersion::V1) => {
            let cards: String = plans
                .iter()
                .map(|p| {
                    format!(
                        "  <div class=\"plan\" data-down=\"{}\" data-up=\"{}\" data-price=\"{}\">Internet {}</div>\n",
                        p.download_mbps, p.upload_mbps, p.price_usd, p.download_mbps
                    )
                })
                .collect();
            format!("<section id=\"availability-results\">\n{cards}</section>")
        }
        (Dialect::DataAttr, TemplateVersion::V2) => {
            let cards: String = plans
                .iter()
                .map(|p| {
                    format!(
                        "  <article class=\"offer-card\" data-dl=\"{}\" data-ul=\"{}\" data-usd=\"{}\">Internet {}</article>\n",
                        p.download_mbps, p.upload_mbps, p.price_usd, p.download_mbps
                    )
                })
                .collect();
            format!("<section id=\"svc-results\">\n{cards}</section>")
        }
        (Dialect::TableRow, TemplateVersion::V1) => {
            let rows: String = plans
                .iter()
                .map(|p| {
                    format!(
                        "  <tr class=\"offer\"><td class=\"down\">{} Mbps</td><td class=\"up\">{} Mbps</td><td class=\"price\">${}/mo</td></tr>\n",
                        p.download_mbps, p.upload_mbps, p.price_usd
                    )
                })
                .collect();
            format!("<table class=\"offers\">\n{rows}</table>")
        }
        (Dialect::TableRow, TemplateVersion::V2) => {
            let rows: String = plans
                .iter()
                .map(|p| {
                    format!(
                        "  <tr class=\"tier\"><td class=\"dl\">{} Mbps</td><td class=\"ul\">{} Mbps</td><td class=\"cost\">${}/mo</td></tr>\n",
                        p.download_mbps, p.upload_mbps, p.price_usd
                    )
                })
                .collect();
            format!("<table class=\"tiers\">\n{rows}</table>")
        }
        (Dialect::ListItem, TemplateVersion::V1) => {
            let items: String = plans
                .iter()
                .map(|p| {
                    format!(
                        "  <li class=\"pkg\"><span class=\"mbps\">{}</span><span class=\"upload\">{}</span><span class=\"usd\">{}</span></li>\n",
                        p.download_mbps, p.upload_mbps, p.price_usd
                    )
                })
                .collect();
            format!("<ul class=\"packages\">\n{items}</ul>")
        }
        (Dialect::ListItem, TemplateVersion::V2) => {
            let items: String = plans
                .iter()
                .map(|p| {
                    format!(
                        "  <li class=\"bundle\"><span class=\"down\">{}</span><span class=\"up\">{}</span><span class=\"price\">{}</span></li>\n",
                        p.download_mbps, p.upload_mbps, p.price_usd
                    )
                })
                .collect();
            format!("<ul class=\"bundles\">\n{items}</ul>")
        }
    };
    page_shell(isp, body)
}

/// Renders the address-not-found page with a suggestion list (V1 markup).
pub fn render_not_found(isp: Isp, suggestions: &[String]) -> String {
    render_not_found_v(isp, suggestions, TemplateVersion::V1)
}

/// Version-aware address-not-found page.
pub fn render_not_found_v(isp: Isp, suggestions: &[String], version: TemplateVersion) -> String {
    let (marker, item) = match version {
        TemplateVersion::V1 => ("address-error", "suggestion"),
        TemplateVersion::V2 => ("addr-missing", "addr-option"),
    };
    let items: String = suggestions
        .iter()
        .map(|s| format!("  <li class=\"{item}\">{s}</li>\n"))
        .collect();
    let body = format!(
        "<div class=\"{marker}\">We could not verify that address.</div>\n<ul class=\"options\">\n{items}</ul>"
    );
    page_shell(isp, body)
}

/// Renders the multi-dwelling-unit page listing refined addresses (V1).
pub fn render_mdu(isp: Isp, units: &[String]) -> String {
    render_mdu_v(isp, units, TemplateVersion::V1)
}

/// Version-aware multi-dwelling-unit page.
pub fn render_mdu_v(isp: Isp, units: &[String], version: TemplateVersion) -> String {
    let (marker, item) = match version {
        TemplateVersion::V1 => ("mdu-prompt", "unit"),
        TemplateVersion::V2 => ("unit-prompt", "unit-option"),
    };
    let items: String = units
        .iter()
        .map(|u| format!("  <li class=\"{item}\">{u}</li>\n"))
        .collect();
    let body = format!(
        "<div class=\"{marker}\">This address has multiple units.</div>\n<ul class=\"units\">\n{items}</ul>"
    );
    page_shell(isp, body)
}

/// Renders the existing-customer interstitial with its three options (V1).
pub fn render_existing_customer(isp: Isp) -> String {
    render_existing_customer_v(isp, TemplateVersion::V1)
}

/// Version-aware existing-customer interstitial.
pub fn render_existing_customer_v(isp: Isp, version: TemplateVersion) -> String {
    let body = match version {
        TemplateVersion::V1 => {
            "<div class=\"existing-customer\">An active account exists at this address.</div>\n\
         <a id=\"change-plan\" href=\"/login\">Change my plan</a>\n\
         <a id=\"add-service\" href=\"/login\">Add a service</a>\n\
         <a id=\"new-customer\" href=\"/new\">I'm a new resident - view plans</a>"
        }
        TemplateVersion::V2 => {
            "<div class=\"current-customer\">An active account exists at this address.</div>\n\
         <a id=\"manage\" href=\"/login\">Manage my plan</a>\n\
         <a id=\"shop-new\" href=\"/new\">I'm a new resident - shop plans</a>"
        }
    }
    .to_string();
    page_shell(isp, body)
}

/// Renders the no-service page (V1).
pub fn render_no_service(isp: Isp) -> String {
    render_no_service_v(isp, TemplateVersion::V1)
}

/// Version-aware no-service page.
pub fn render_no_service_v(isp: Isp, version: TemplateVersion) -> String {
    let marker = match version {
        TemplateVersion::V1 => "no-service",
        TemplateVersion::V2 => "not-serviceable",
    };
    page_shell(
        isp,
        format!("<div class=\"{marker}\">We do not offer internet service at this address.</div>"),
    )
}

/// Renders the permanent technical-difficulty page (V1).
pub fn render_technical_difficulty(isp: Isp) -> String {
    render_technical_difficulty_v(isp, TemplateVersion::V1)
}

/// Version-aware technical-difficulty page.
pub fn render_technical_difficulty_v(isp: Isp, version: TemplateVersion) -> String {
    let marker = match version {
        TemplateVersion::V1 => "oops",
        TemplateVersion::V2 => "error-page",
    };
    page_shell(
        isp,
        format!("<div class=\"{marker}\">We are experiencing technical difficulties. Please call us.</div>"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_isp::{catalog, ALL_ISPS};

    #[test]
    fn each_dialect_is_used_by_some_isp() {
        let dialects: std::collections::HashSet<_> =
            ALL_ISPS.iter().map(|&i| dialect_of(i)).collect();
        assert_eq!(dialects.len(), 3);
    }

    #[test]
    fn plans_pages_embed_every_plan() {
        for isp in ALL_ISPS {
            let plans = catalog(isp);
            let page = render_plans(isp, plans);
            for p in plans {
                assert!(
                    page.contains(&p.download_mbps.to_string()),
                    "{isp}: missing download {}",
                    p.download_mbps
                );
                assert!(
                    page.contains(&p.price_usd.to_string()),
                    "{isp}: missing price {}",
                    p.price_usd
                );
            }
        }
    }

    #[test]
    fn dialect_markup_differs() {
        let p = catalog(Isp::Att);
        let att = render_plans(Isp::Att, p);
        let cl = render_plans(Isp::CenturyLink, p);
        let cox = render_plans(Isp::Cox, p);
        assert!(att.contains("data-down"));
        assert!(!cl.contains("data-down"));
        assert!(cl.contains("class=\"offer\""));
        assert!(cox.contains("class=\"pkg\""));
    }

    #[test]
    fn not_found_page_lists_suggestions_in_order() {
        let suggestions = vec!["1 Elm St".to_string(), "2 Elm St".to_string()];
        let page = render_not_found(Isp::Cox, &suggestions);
        assert!(page.contains("address-error"));
        let a = page.find("1 Elm St").unwrap();
        let b = page.find("2 Elm St").unwrap();
        assert!(a < b);
    }

    #[test]
    fn mdu_page_lists_units() {
        let page = render_mdu(Isp::Att, &["742 Evergreen Ter Apt 1".to_string()]);
        assert!(page.contains("class=\"unit\""));
        assert!(page.contains("Apt 1"));
    }

    #[test]
    fn existing_customer_page_offers_new_customer_path() {
        let page = render_existing_customer(Isp::Verizon);
        assert!(page.contains("id=\"new-customer\""));
        assert!(page.contains("id=\"change-plan\""));
    }

    #[test]
    fn distinct_page_kinds_have_distinct_markers() {
        // No marker of one page kind may appear in another, or template
        // detection becomes ambiguous.
        let plans = render_plans(Isp::Att, catalog(Isp::Att));
        let nf = render_not_found(Isp::Att, &["x".to_string()]);
        let mdu = render_mdu(Isp::Att, &["x".to_string()]);
        let ec = render_existing_customer(Isp::Att);
        let ns = render_no_service(Isp::Att);
        let td = render_technical_difficulty(Isp::Att);
        let markers = [
            ("availability-results", &plans),
            ("address-error", &nf),
            ("mdu-prompt", &mdu),
            ("existing-customer", &ec),
            ("no-service", &ns),
            ("class=\"oops\"", &td),
        ];
        for (m, page) in &markers {
            assert!(page.contains(m), "own marker {m}");
            for (other, other_page) in &markers {
                if m != other {
                    assert!(!other_page.contains(m), "{m} leaked into {other}");
                }
            }
        }
    }
}
