//! Deterministic template-drift schedules.
//!
//! The paper's §3 limitation — "any changes made to the interfaces of
//! these BATs by the ISPs ... will require updating BQT" — becomes a
//! scenario axis here: a [`DriftSchedule`] flips a BAT's rendered markup
//! generation at fixed points on the *virtual* clock, mid-campaign. The
//! schedule is a pure function of its construction arguments, so two runs
//! of the same campaign redesign their sites at exactly the same virtual
//! instants and the drift-recovery machinery in `bqt` can be tested
//! byte-identically across crash/resume and thread counts.

use crate::templates::TemplateVersion;
use bbsim_net::SimTime;

/// A piecewise-constant map from virtual time to markup generation.
///
/// Before the first flip the site renders [`TemplateVersion::V1`]; from
/// each flip instant (inclusive) onward it renders that flip's version.
/// Flips are kept sorted by time at construction, so `version_at` is a
/// deterministic lookup whatever order the caller supplied them in.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DriftSchedule {
    /// `(from, version)` pairs, sorted ascending by `from`.
    flips: Vec<(SimTime, TemplateVersion)>,
}

impl DriftSchedule {
    /// A schedule with no flips: the site stays on V1 forever.
    pub fn none() -> Self {
        Self::default()
    }

    /// The one-redesign schedule: V1 until `at`, `to` from then on.
    pub fn flip_at(at: SimTime, to: TemplateVersion) -> Self {
        Self::default().then(at, to)
    }

    /// Appends a flip; flips are re-sorted so call order never matters.
    /// Two flips at the same instant keep insertion order (the later call
    /// wins, as a real redeploy would).
    pub fn then(mut self, at: SimTime, to: TemplateVersion) -> Self {
        self.flips.push((at, to));
        self.flips.sort_by_key(|(from, _)| *from);
        self
    }

    /// The generation the site renders at virtual time `now`.
    pub fn version_at(&self, now: SimTime) -> TemplateVersion {
        self.flips
            .iter()
            .take_while(|(from, _)| *from <= now)
            .last()
            .map(|(_, v)| *v)
            .unwrap_or(TemplateVersion::V1)
    }

    /// Whether the schedule ever changes the markup.
    pub fn is_static(&self) -> bool {
        self.flips.is_empty()
    }

    /// The scheduled flips, ascending by time.
    pub fn flips(&self) -> &[(SimTime, TemplateVersion)] {
        &self.flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_schedule_stays_on_v1() {
        let s = DriftSchedule::none();
        assert!(s.is_static());
        assert_eq!(s.version_at(SimTime::ZERO), TemplateVersion::V1);
        assert_eq!(s.version_at(at(u64::MAX)), TemplateVersion::V1);
    }

    #[test]
    fn flip_is_inclusive_at_its_instant() {
        let s = DriftSchedule::flip_at(at(60_000), TemplateVersion::V2);
        assert_eq!(s.version_at(at(59_999)), TemplateVersion::V1);
        assert_eq!(s.version_at(at(60_000)), TemplateVersion::V2);
        assert_eq!(s.version_at(at(1_000_000)), TemplateVersion::V2);
    }

    #[test]
    fn flips_sort_regardless_of_insertion_order() {
        let s = DriftSchedule::none()
            .then(at(200), TemplateVersion::V1)
            .then(at(100), TemplateVersion::V2);
        assert_eq!(s.version_at(at(50)), TemplateVersion::V1);
        assert_eq!(s.version_at(at(150)), TemplateVersion::V2);
        assert_eq!(s.version_at(at(250)), TemplateVersion::V1, "rollback flip");
        assert_eq!(s.flips().len(), 2);
    }
}
