//! The BAT's internal address database and lookup index.
//!
//! The ISP side of the address-matching problem: a canonical address table
//! indexed by normalized text, with candidate generation for the suggestion
//! list shown on the "address not found" page. Lookup keys are normalized
//! the same way a serviceability back-end would (case, punctuation and
//! USPS abbreviation folding), so cosmetic listing noise resolves here and
//! only genuine typos fall through to the suggestion flow.

use bbsim_address::abbrev::{extract_zip, normalize_line};
use bbsim_address::{AddressDb, AddressId};
use std::collections::HashMap;

/// Normalized-lookup index over a city's canonical addresses.
#[derive(Debug)]
pub struct AddressIndex {
    /// normalized street line + zip -> address id.
    exact: HashMap<String, AddressId>,
    /// (zip, house number) -> candidate ids for suggestions.
    by_zip_number: HashMap<(u32, u32), Vec<AddressId>>,
}

impl AddressIndex {
    /// Builds the index from the canonical side of an address inventory.
    pub fn build(db: &AddressDb) -> Self {
        let mut exact = HashMap::with_capacity(db.len());
        let mut by_zip_number: HashMap<(u32, u32), Vec<AddressId>> = HashMap::new();
        for r in db.records() {
            exact.insert(Self::key_of(&r.canonical.canonical_line()), r.id);
            by_zip_number
                .entry((r.canonical.zip, r.canonical.number))
                .or_default()
                .push(r.id);
        }
        Self {
            exact,
            by_zip_number,
        }
    }

    fn key_of(line: &str) -> String {
        normalize_line(line)
    }

    /// Exact lookup after normalization.
    pub fn lookup(&self, line: &str) -> Option<AddressId> {
        self.exact.get(&Self::key_of(line)).copied()
    }

    /// Looks up a line that may carry a unit designator the canonical table
    /// does not store: tries the full line, then the line with the unit
    /// stripped.
    pub fn lookup_allowing_unit(&self, line: &str) -> Option<AddressId> {
        if let Some(id) = self.lookup(line) {
            return Some(id);
        }
        // Strip a trailing "apt <x>" from the normalized form.
        let norm = Self::key_of(line);
        if let Some(pos) = norm.find(" apt ") {
            let stripped = &norm[..pos];
            // Re-append the tail after the unit token (city/state/zip).
            let after_unit: Vec<&str> = norm[pos + 5..].splitn(2, ' ').collect();
            let rebuilt = if after_unit.len() == 2 {
                format!("{stripped} {}", after_unit[1])
            } else {
                stripped.to_string()
            };
            return self.exact.get(&rebuilt).copied();
        }
        None
    }

    /// Candidate ids for the suggestion list: same zip and house number.
    /// Falls back to the parsed zip/number of the input line.
    pub fn suggestion_candidates(&self, line: &str) -> Vec<AddressId> {
        let Some(zip) = extract_zip(line) else {
            return Vec::new();
        };
        let Some(number) = line
            .split_whitespace()
            .next()
            .and_then(|t| t.parse::<u32>().ok())
        else {
            return Vec::new();
        };
        self.by_zip_number
            .get(&(zip, number))
            .cloned()
            .unwrap_or_default()
    }

    pub fn len(&self) -> usize {
        self.exact.len()
    }

    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_address::NoiseProfile;
    use bbsim_census::city_by_name;

    fn db() -> AddressDb {
        let city = city_by_name("Billings").unwrap();
        AddressDb::generate(city, &city.grid(), &NoiseProfile::zillow_like())
    }

    #[test]
    fn exact_lookup_finds_every_canonical_address() {
        let d = db();
        let idx = AddressIndex::build(&d);
        for r in d.records().iter().take(500) {
            assert_eq!(idx.lookup(&r.canonical.canonical_line()), Some(r.id));
        }
    }

    #[test]
    fn lookup_survives_cosmetic_noise() {
        // Most listing lines differ only in case/abbreviation and must
        // resolve without the suggestion flow.
        let d = db();
        let idx = AddressIndex::build(&d);
        let resolved = d
            .records()
            .iter()
            .take(1000)
            .filter(|r| idx.lookup(&r.listing_line) == Some(r.id))
            .count();
        assert!(resolved > 900, "only {resolved}/1000 listings resolved");
    }

    #[test]
    fn lookup_with_spurious_unit_falls_back_to_building() {
        let d = db();
        let idx = AddressIndex::build(&d);
        let r = &d.records()[0];
        let mut with_unit = r.canonical.clone();
        with_unit.unit = Some("3".to_string());
        assert_eq!(
            idx.lookup_allowing_unit(&with_unit.canonical_line()),
            Some(r.id)
        );
    }

    #[test]
    fn suggestion_candidates_share_zip_and_number() {
        let d = db();
        let idx = AddressIndex::build(&d);
        // Typo the street name; zip and number survive.
        let r = &d.records()[42];
        let mut line = r.canonical.canonical_line();
        line = line.replace(&r.canonical.street_name, "Zzyzx");
        let candidates = idx.suggestion_candidates(&line);
        assert!(
            candidates.contains(&r.id),
            "true address must be a candidate"
        );
        for id in candidates {
            let c = &d.record(id).canonical;
            assert_eq!(c.zip, r.canonical.zip);
            assert_eq!(c.number, r.canonical.number);
        }
    }

    #[test]
    fn unparseable_input_yields_no_candidates() {
        let d = db();
        let idx = AddressIndex::build(&d);
        assert!(idx
            .suggestion_candidates("not an address at all")
            .is_empty());
        assert!(idx.suggestion_candidates("").is_empty());
    }

    #[test]
    fn index_size_matches_db() {
        let d = db();
        let idx = AddressIndex::build(&d);
        // A few canonical collisions are tolerable (identical re-generated
        // street+number), but the index must hold nearly all records.
        assert!(idx.len() as f64 > d.len() as f64 * 0.95);
    }
}
