//! Simulated ISP broadband-availability-tool (BAT) web servers.
//!
//! Each major ISP runs a BAT: a consumer web flow that takes a street
//! address and eventually shows the broadband plans available there. The
//! paper's Fig. 1 identifies the page templates a querying tool must
//! survive: *address not found* (with suggestions), *multi-dwelling unit*
//! (pick an apartment), *existing customer* (pick "view plans as a new
//! customer"), and finally the *plans* page.
//!
//! This crate serves that flow over `bbsim-net` against the hidden
//! [`bbsim_isp::CityWorld`] ground truth, with the defensive behaviours the
//! paper reports real ISPs deploying (§3.2):
//!
//! * dynamic per-session cookies; a cookie reused past its budget is
//!   blocked ([`server`]);
//! * per-IP rate limiting with HTTP 429 ([`server`]);
//! * per-ISP page markup dialects, so a client needs per-ISP templates
//!   ([`templates`]);
//! * per-ISP latency and failure profiles calibrated to reproduce the
//!   paper's hit rates and query-time distributions (Fig. 2)
//!   ([`profile`]).

pub mod drift;
pub mod index;
pub mod profile;
pub mod server;
pub mod templates;

pub use drift::DriftSchedule;
pub use index::AddressIndex;
pub use profile::ServerProfile;
pub use server::BatServer;
pub use templates::{Dialect, PageKind, TemplateVersion};
