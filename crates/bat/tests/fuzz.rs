//! Robustness fuzzing: the BAT server must never panic, whatever a client
//! throws at it — arbitrary paths, bodies, cookies and request orderings.

use bbsim_bat::BatServer;
use bbsim_census::city_by_name;
use bbsim_isp::{CityWorld, Isp};
use bbsim_net::{Method, Request, Service, SimIp, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::sync::OnceLock;

fn world() -> Arc<CityWorld> {
    static WORLD: OnceLock<Arc<CityWorld>> = OnceLock::new();
    WORLD
        .get_or_init(|| Arc::new(CityWorld::build(city_by_name("Fargo").expect("study city"))))
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random single requests never panic and always produce a response.
    #[test]
    fn arbitrary_requests_never_panic(
        post in any::<bool>(),
        path in "[ -~]{0,40}",
        body in "[ -~\\n]{0,200}",
        cookie in proptest::option::of("[ -~]{0,40}"),
        now_ms in 0u64..10_000_000,
        seed in any::<u64>(),
    ) {
        let mut server = BatServer::new(Isp::CenturyLink, world());
        let mut req = if post {
            Request::post(path, body)
        } else {
            Request::new(Method::Get, path)
        };
        if let Some(c) = cookie {
            req = req.with_cookie(c);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let exchange = server.handle(
            SimIp(0x6440_0001),
            &req,
            SimTime::from_millis(now_ms),
            &mut rng,
        );
        // Whatever happened, the reply is a well-formed wire message.
        let wire = exchange.response.to_wire();
        prop_assert!(bbsim_net::Response::from_wire(&wire).is_ok());
    }

    /// Random request *sequences* against one server instance keep its
    /// internal state consistent (sessions never corrupt, counters only
    /// grow).
    #[test]
    fn arbitrary_sequences_keep_state_consistent(
        steps in proptest::collection::vec(
            ("[ -~]{0,60}", any::<bool>(), 0u64..4),
            1..25
        ),
        seed in any::<u64>(),
    ) {
        let mut server = BatServer::new(Isp::CenturyLink, world());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = SimTime::ZERO;
        let mut last_cookie: Option<String> = None;
        let mut prev_blocked = 0;
        for (text, use_select, ip_off) in steps {
            let req = if use_select {
                let r = Request::post("/select", format!("choice={text}"));
                match &last_cookie {
                    Some(c) => r.with_cookie(c.clone()),
                    None => r,
                }
            } else {
                Request::post("/locate", format!("address={text}"))
            };
            let out = server.handle(
                SimIp(0x6440_0000 + ip_off as u32),
                &req,
                now,
                &mut rng,
            );
            if let Some(c) = out.response.set_cookie() {
                last_cookie = Some(c.to_string());
            }
            now += bbsim_net::SimDuration::from_secs(7);
            prop_assert!(server.blocked_requests >= prev_blocked);
            prev_blocked = server.blocked_requests;
        }
    }
}
