//! Noise injection: renders canonical addresses the way crowdsourced
//! listing data actually spells them.
//!
//! The paper (§3.1) attributes most BAT query friction to "incomplete,
//! incorrect, or ambiguous" address data. We reproduce four noise channels:
//!
//! 1. **spelling variation** — suffix/directional rendered as a random
//!    accepted variant with random casing;
//! 2. **typos** — a dropped, doubled or swapped letter in the street name;
//! 3. **missing units** — MDU listings that omit the apartment number;
//! 4. **format drift** — unit marker spelled `Unit`/`#` instead of `Apt`.

use crate::abbrev::{directional_variants, suffix_variants};
use crate::model::StreetAddress;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probabilities for each noise channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseProfile {
    /// Chance the suffix is spelled as a non-canonical variant.
    pub p_suffix_variant: f64,
    /// Chance a token is upper/lower-cased oddly.
    pub p_case_mangle: f64,
    /// Chance of a single-character typo in the street name.
    pub p_typo: f64,
    /// Chance an MDU listing omits its unit.
    pub p_drop_unit: f64,
    /// Chance the unit marker is non-standard ("Unit", "#").
    pub p_alt_unit_marker: f64,
}

impl NoiseProfile {
    /// Calibrated so BQT's end-to-end hit rates land in the paper's
    /// 82–96% band (Fig. 2a): most listings are clean, a substantial
    /// minority differ cosmetically, a few percent are genuinely mangled.
    pub fn zillow_like() -> Self {
        Self {
            p_suffix_variant: 0.35,
            p_case_mangle: 0.20,
            p_typo: 0.04,
            p_drop_unit: 0.50,
            p_alt_unit_marker: 0.30,
        }
    }

    /// No noise at all — renders the canonical line.
    pub fn clean() -> Self {
        Self {
            p_suffix_variant: 0.0,
            p_case_mangle: 0.0,
            p_typo: 0.0,
            p_drop_unit: 0.0,
            p_alt_unit_marker: 0.0,
        }
    }
}

fn mangle_case(rng: &mut StdRng, token: &str) -> String {
    match rng.gen_range(0..3u8) {
        0 => token.to_ascii_uppercase(),
        1 => token.to_ascii_lowercase(),
        _ => token.to_string(),
    }
}

fn inject_typo(rng: &mut StdRng, word: &str) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return word.to_string();
    }
    let i = rng.gen_range(1..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => {
            out.remove(i); // drop
        }
        1 => {
            out.insert(i, chars[i]); // double
        }
        _ => {
            out.swap(i, i - 1); // transpose
        }
    }
    out.into_iter().collect()
}

/// Renders `addr` as noisy listing text, deterministic in `seed`.
///
/// Returns the rendered line. The city/state/zip tail is kept intact —
/// listing services validate those — so noise concentrates in the street
/// part, as the paper observed.
pub fn render_noisy(addr: &StreetAddress, profile: &NoiseProfile, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0153);

    let mut street_name = addr.street_name.clone();
    if rng.gen_bool(profile.p_typo) {
        street_name = inject_typo(&mut rng, &street_name);
    }
    if rng.gen_bool(profile.p_case_mangle) {
        street_name = mangle_case(&mut rng, &street_name);
    }

    let suffix_text = if rng.gen_bool(profile.p_suffix_variant) {
        let variants = suffix_variants(addr.suffix);
        let v = variants[rng.gen_range(0..variants.len())];
        // Title-case the chosen variant for plausibility.
        let mut c = v.chars();
        match c.next() {
            Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
            None => String::new(),
        }
    } else {
        addr.suffix.abbrev().to_string()
    };
    let suffix_text = if rng.gen_bool(profile.p_case_mangle) {
        mangle_case(&mut rng, &suffix_text)
    } else {
        suffix_text
    };

    let dir_text = addr.directional.map(|d| {
        if rng.gen_bool(profile.p_suffix_variant) {
            let variants = directional_variants(d);
            variants[rng.gen_range(0..variants.len())].to_ascii_uppercase()
        } else {
            d.abbrev().to_string()
        }
    });

    let unit_text = match &addr.unit {
        Some(u) if !rng.gen_bool(profile.p_drop_unit) => {
            let marker = if rng.gen_bool(profile.p_alt_unit_marker) {
                ["Unit", "#"][rng.gen_range(0..2)]
            } else {
                "Apt"
            };
            Some(format!("{marker} {u}"))
        }
        _ => None,
    };

    let mut line = format!("{} ", addr.number);
    if let Some(d) = dir_text {
        line.push_str(&d);
        line.push(' ');
    }
    line.push_str(&street_name);
    line.push(' ');
    line.push_str(&suffix_text);
    if let Some(u) = unit_text {
        line.push(' ');
        line.push_str(&u);
    }
    line.push_str(&format!(", {}, {} {:05}", addr.city, addr.state, addr.zip));
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abbrev::normalize_line;
    use crate::model::{Directional, Suffix};

    fn sample(unit: Option<&str>) -> StreetAddress {
        StreetAddress {
            number: 742,
            directional: Some(Directional::N),
            street_name: "Evergreen".to_string(),
            suffix: Suffix::Terrace,
            unit: unit.map(str::to_string),
            city: "New Orleans".to_string(),
            state: "LA".to_string(),
            zip: 70118,
        }
    }

    #[test]
    fn clean_profile_renders_canonical_line() {
        let a = sample(Some("2B"));
        assert_eq!(
            render_noisy(&a, &NoiseProfile::clean(), 1),
            a.canonical_line()
        );
    }

    #[test]
    fn rendering_is_deterministic_in_seed() {
        let a = sample(Some("2B"));
        let p = NoiseProfile::zillow_like();
        assert_eq!(render_noisy(&a, &p, 9), render_noisy(&a, &p, 9));
    }

    #[test]
    fn noise_preserves_zip_tail() {
        let a = sample(None);
        let p = NoiseProfile::zillow_like();
        for seed in 0..50 {
            let line = render_noisy(&a, &p, seed);
            assert!(line.ends_with("LA 70118"), "{line}");
        }
    }

    #[test]
    fn most_noisy_renderings_normalize_back_to_canonical() {
        // Spelling variation and case mangle must be invisible after
        // normalization; only genuine typos (4%) should survive it.
        let a = sample(None);
        let p = NoiseProfile::zillow_like();
        let canon = normalize_line(&a.canonical_line());
        let matching = (0..500)
            .filter(|&seed| normalize_line(&render_noisy(&a, &p, seed)) == canon)
            .count();
        assert!(matching > 450, "only {matching}/500 normalize back");
        assert!(matching < 500, "typos should make some differ");
    }

    #[test]
    fn unit_is_sometimes_dropped() {
        let a = sample(Some("2B"));
        let p = NoiseProfile::zillow_like();
        let with_unit = (0..200)
            .filter(|&seed| render_noisy(&a, &p, seed).contains("2B"))
            .count();
        assert!(with_unit > 50 && with_unit < 150, "with_unit = {with_unit}");
    }

    #[test]
    fn typos_keep_word_length_close() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let out = inject_typo(&mut rng, "Evergreen");
            let diff = (out.len() as i64 - 9).abs();
            assert!(diff <= 1, "{out}");
        }
    }

    #[test]
    fn short_words_are_typo_immune() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(inject_typo(&mut rng, "st"), "st");
        assert_eq!(inject_typo(&mut rng, "a"), "a");
        assert_eq!(inject_typo(&mut rng, ""), "");
    }
}
