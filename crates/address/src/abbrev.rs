//! USPS-style abbreviation tables and address-text normalization.
//!
//! The paper's §3.3: "for the same street address, some databases might use
//! 'Ave' instead of Avenue and 'CT' or 'Ct' instead of Court". BQT copes by
//! normalizing both sides to a canonical token stream before comparing.

use crate::model::{Directional, Suffix};

/// All accepted spellings of each suffix, lowercase (canonical first).
pub fn suffix_variants(s: Suffix) -> &'static [&'static str] {
    match s {
        Suffix::Street => &["st", "street", "str"],
        Suffix::Avenue => &["ave", "avenue", "av", "aven"],
        Suffix::Boulevard => &["blvd", "boulevard", "boul", "blv"],
        Suffix::Court => &["ct", "court", "crt"],
        Suffix::Drive => &["dr", "drive", "drv"],
        Suffix::Lane => &["ln", "lane"],
        Suffix::Road => &["rd", "road"],
        Suffix::Way => &["way", "wy"],
        Suffix::Terrace => &["ter", "terrace", "terr"],
        Suffix::Place => &["pl", "place"],
        Suffix::Circle => &["cir", "circle", "circ"],
        Suffix::Parkway => &["pkwy", "parkway", "pky", "pkway"],
    }
}

/// All accepted spellings of each directional, lowercase (canonical first).
pub fn directional_variants(d: Directional) -> &'static [&'static str] {
    match d {
        Directional::N => &["n", "north", "no"],
        Directional::S => &["s", "south", "so"],
        Directional::E => &["e", "east"],
        Directional::W => &["w", "west"],
        Directional::NE => &["ne", "northeast"],
        Directional::NW => &["nw", "northwest"],
        Directional::SE => &["se", "southeast"],
        Directional::SW => &["sw", "southwest"],
    }
}

/// Unit designator spellings that all mean "apartment/unit".
pub const UNIT_MARKERS: &[&str] = &["apt", "apartment", "unit", "ste", "suite", "#"];

fn lookup_suffix(token: &str) -> Option<Suffix> {
    Suffix::ALL
        .into_iter()
        .find(|&s| suffix_variants(s).contains(&token))
}

fn lookup_directional(token: &str) -> Option<Directional> {
    Directional::ALL
        .into_iter()
        .find(|&d| directional_variants(d).contains(&token))
}

/// Normalizes free-form address text into canonical lowercase tokens:
/// punctuation stripped, suffixes and directionals folded to their USPS
/// abbreviation, unit markers folded to `apt`.
///
/// `"742 NORTH Evergreen Terrace, Unit 2B"` →
/// `["742", "n", "evergreen", "ter", "apt", "2b"]`.
pub fn normalize_tokens(text: &str) -> Vec<String> {
    text.split(|c: char| c.is_whitespace() || c == ',' || c == '.')
        .filter(|t| !t.is_empty())
        .map(|raw| {
            // A leading '#' is a unit marker ("#3"); any other '#' is noise.
            let marker = raw.starts_with('#');
            let token: String = raw
                .chars()
                .filter(char::is_ascii_alphanumeric)
                .collect::<String>()
                .to_ascii_lowercase();
            (marker, token)
        })
        .filter(|(marker, t)| *marker || !t.is_empty())
        .flat_map(|(marker, token)| {
            // Fold a single token to its canonical form (idempotent).
            fn fold(token: String) -> String {
                if let Some(s) = lookup_suffix(&token) {
                    suffix_variants(s)[0].to_string()
                } else if let Some(d) = lookup_directional(&token) {
                    directional_variants(d)[0].to_string()
                } else if UNIT_MARKERS.contains(&token.as_str()) {
                    "apt".to_string()
                } else {
                    token
                }
            }
            if marker {
                // "#3" -> ["apt", "3"]; a bare "#" -> ["apt"]. The unit text
                // folds through the same rules so normalization stays
                // idempotent ("#av" -> ["apt", "ave"] on every pass).
                let mut out = vec!["apt".to_string()];
                if !token.is_empty() {
                    out.push(fold(token));
                }
                out
            } else {
                vec![fold(token)]
            }
        })
        .collect()
}

/// Normalized single-string form (tokens joined by single spaces).
pub fn normalize_line(text: &str) -> String {
    normalize_tokens(text).join(" ")
}

/// Extracts the 5-digit zip code from an address line, if present (the last
/// standalone 5-digit token).
pub fn extract_zip(text: &str) -> Option<u32> {
    text.split(|c: char| c.is_whitespace() || c == ',')
        .rfind(|t| t.len() == 5 && t.bytes().all(|b| b.is_ascii_digit()))
        .and_then(|t| t.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_spellings_all_normalize_to_canonical() {
        for s in Suffix::ALL {
            let canon = suffix_variants(s)[0];
            for v in suffix_variants(s) {
                assert_eq!(normalize_tokens(v), vec![canon.to_string()], "variant {v}");
                assert_eq!(
                    normalize_tokens(&v.to_ascii_uppercase()),
                    vec![canon.to_string()],
                    "uppercase variant {v}"
                );
            }
        }
    }

    #[test]
    fn directional_spellings_normalize() {
        assert_eq!(normalize_line("NORTH Rampart"), "n rampart");
        assert_eq!(normalize_line("sw Loop"), "sw loop");
    }

    #[test]
    fn the_papers_example_ave_vs_avenue() {
        assert_eq!(
            normalize_line("123 Washington Avenue"),
            normalize_line("123 Washington Ave")
        );
        assert_eq!(normalize_line("9 Oak CT"), normalize_line("9 Oak Court"));
        assert_eq!(normalize_line("9 Oak Ct"), normalize_line("9 Oak CT"));
    }

    #[test]
    fn unit_markers_fold_to_apt() {
        for text in [
            "5 Elm St Apt 3",
            "5 Elm St Unit 3",
            "5 Elm St # 3",
            "5 Elm St Suite 3",
        ] {
            assert_eq!(normalize_line(text), "5 elm st apt 3", "{text}");
        }
    }

    #[test]
    fn punctuation_and_case_are_stripped() {
        assert_eq!(
            normalize_line("742 Evergreen Ter., New Orleans, LA 70118"),
            "742 evergreen ter new orleans la 70118"
        );
    }

    #[test]
    fn hash_prefixed_unit_is_detected() {
        // "#3" splits into the unit marker plus the unit number, so both
        // spellings normalize identically.
        assert_eq!(normalize_line("5 Elm St #3"), "5 elm st apt 3");
        assert_eq!(normalize_line("5 Elm St # 3"), "5 elm st apt 3");
        assert_eq!(normalize_line("5 Elm St Apt 3"), "5 elm st apt 3");
    }

    #[test]
    fn extract_zip_finds_last_five_digit_token() {
        assert_eq!(
            extract_zip("742 Evergreen Ter, New Orleans, LA 70118"),
            Some(70118)
        );
        assert_eq!(
            extract_zip("12345 Main St, Springfield, IL 62704"),
            Some(62704)
        );
        assert_eq!(extract_zip("742 Evergreen Ter"), None);
    }

    #[test]
    fn street_named_after_suffix_word_still_normalizes() {
        // "Park Place" has suffix Place; "Place" as a *name* token would also
        // fold, which is acceptable: both sides of a comparison fold the
        // same way.
        assert_eq!(normalize_line("1 Park Place"), normalize_line("1 Park Pl"));
    }

    #[test]
    fn no_variant_is_ambiguous_across_tables() {
        // A spelling must never map to two different canonical tokens.
        let mut seen = std::collections::HashMap::new();
        for s in Suffix::ALL {
            for v in suffix_variants(s) {
                assert!(
                    seen.insert(v.to_string(), suffix_variants(s)[0]).is_none(),
                    "dup {v}"
                );
            }
        }
        for d in Directional::ALL {
            for v in directional_variants(d) {
                assert!(
                    seen.insert(v.to_string(), directional_variants(d)[0])
                        .is_none(),
                    "dup {v}"
                );
            }
        }
    }
}
