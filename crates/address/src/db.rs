//! The per-city address inventory: the synthetic stand-in for Zillow ZTRAX.
//!
//! For each block group the database holds a set of residential addresses on
//! a handful of streets, each with a canonical form (what the ISP's own
//! database knows) and a noisy listing line (what the crowdsourced dataset
//! shows). Roughly 10% of records are multi-dwelling units whose listing
//! usually omits the unit number.
//!
//! Sampling implements the paper's strategy (§4.1): uniformly sample 10% of
//! each block group's addresses, with a floor of thirty samples (capped by
//! the group's size) so block-group medians are statistically meaningful.

use crate::model::StreetAddress;
use crate::noise::{render_noisy, NoiseProfile};
use crate::street::StreetNamer;
use bbsim_census::{city_seed, CityProfile};
use bbsim_geo::{BlockGroupId, CityGrid};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Identifier of an address within its city's database.
pub type AddressId = u32;

/// One residential address record.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressRecord {
    pub id: AddressId,
    /// Canonical form — what the ISP's own address database contains.
    pub canonical: StreetAddress,
    /// Cell index of the containing block group in the city grid.
    pub bg_index: usize,
    pub block_group: BlockGroupId,
    /// Multi-dwelling unit: the canonical form has no unit, but the
    /// building has `units`.
    pub is_mdu: bool,
    /// Unit designators for MDUs (empty otherwise).
    pub units: Vec<String>,
    /// The noisy "Zillow" listing line BQT receives as input.
    pub listing_line: String,
}

/// The address inventory for one city.
#[derive(Debug, Clone)]
pub struct AddressDb {
    city_name: String,
    records: Vec<AddressRecord>,
    by_bg: Vec<Vec<usize>>,
}

/// Fraction of records that are multi-dwelling units.
const MDU_RATE: f64 = 0.10;

impl AddressDb {
    /// Generates the inventory for `city` over `grid`, deterministic in the
    /// city's seed.
    ///
    /// The city's Table-2 address total is distributed over block groups
    /// with mild size variation (0.5x–1.5x the mean), mirroring Zillow's
    /// uneven coverage.
    pub fn generate(city: &CityProfile, grid: &CityGrid, noise: &NoiseProfile) -> Self {
        let seed = city_seed(city.name);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xADD3);
        let mut namer = StreetNamer::new(seed);

        let n_bg = grid.len();
        let mean_per_bg = (city.street_addresses() as f64 / n_bg as f64).max(4.0);

        let mut records: Vec<AddressRecord> = Vec::with_capacity(city.street_addresses());
        let mut by_bg: Vec<Vec<usize>> = vec![Vec::new(); n_bg];
        // Canonical lines must be city-unique (normalized): an ISP's address
        // database has one row per deliverable address.
        let mut seen = std::collections::HashSet::with_capacity(city.street_addresses());

        for (bg, bg_slots) in by_bg.iter_mut().enumerate() {
            let count = (mean_per_bg * rng.gen_range(0.5..1.5)).round().max(2.0) as usize;
            // Zip zone: contiguous runs of block groups share a zip code.
            let zip = city.zip_prefix as u32 * 100 + (bg as u32 / 12) % 100;

            // A block group spans a few streets.
            let n_streets = rng.gen_range(3..=7).min(count.max(1));
            let streets: Vec<_> = (0..n_streets).map(|_| namer.next_street()).collect();

            for k in 0..count {
                let (directional, name, suffix) = streets[k % n_streets].clone();
                // House numbers ascend along each street; bump until the
                // canonical line is city-unique (streets recur across
                // block groups sharing a zip).
                let mut number =
                    100 + (k / n_streets) as u32 * rng.gen_range(2..8) + rng.gen_range(0..2) as u32;
                let key_of = |number: u32| {
                    use crate::abbrev::normalize_line;
                    let dir = directional
                        .map(|d| format!("{} ", d.abbrev()))
                        .unwrap_or_default();
                    normalize_line(&format!(
                        "{number} {dir}{name} {} , {} , {} {zip:05}",
                        suffix.abbrev(),
                        city.name,
                        city.state
                    ))
                };
                while !seen.insert(key_of(number)) {
                    number += rng.gen_range(1..5);
                }
                let is_mdu = rng.gen_bool(MDU_RATE);
                let units: Vec<String> = if is_mdu {
                    let n_units = rng.gen_range(2..=12);
                    (1..=n_units).map(|u| u.to_string()).collect()
                } else {
                    Vec::new()
                };
                let canonical = StreetAddress {
                    number,
                    directional,
                    street_name: name,
                    suffix,
                    unit: None,
                    city: city.name.to_string(),
                    state: city.state.to_string(),
                    zip,
                };
                let id = records.len() as AddressId;
                let listing_line = render_noisy(&canonical, noise, seed ^ (id as u64) << 8);
                bg_slots.push(records.len());
                records.push(AddressRecord {
                    id,
                    canonical,
                    bg_index: bg,
                    block_group: grid.id(bg),
                    is_mdu,
                    units,
                    listing_line,
                });
            }
        }

        Self {
            city_name: city.name.to_string(),
            records,
            by_bg,
        }
    }

    pub fn city_name(&self) -> &str {
        &self.city_name
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn record(&self, id: AddressId) -> &AddressRecord {
        &self.records[id as usize]
    }

    pub fn records(&self) -> &[AddressRecord] {
        &self.records
    }

    /// Number of block groups with at least one address.
    pub fn covered_block_groups(&self) -> usize {
        self.by_bg.iter().filter(|v| !v.is_empty()).count()
    }

    /// Record indices for block group cell `bg`.
    pub fn in_block_group(&self, bg: usize) -> &[usize] {
        &self.by_bg[bg]
    }

    /// The paper's sampling strategy: uniformly sample `rate` of a block
    /// group's addresses with a floor of `min_samples`, capped at the
    /// group's size. Deterministic in `seed`.
    pub fn sample_block_group(
        &self,
        bg: usize,
        rate: f64,
        min_samples: usize,
        seed: u64,
    ) -> Vec<&AddressRecord> {
        let pool = &self.by_bg[bg];
        if pool.is_empty() {
            return Vec::new();
        }
        let want = ((pool.len() as f64 * rate).ceil() as usize)
            .max(min_samples)
            .min(pool.len());
        let mut rng = StdRng::seed_from_u64(seed ^ (bg as u64) << 20);
        let mut idx: Vec<usize> = pool.clone();
        idx.shuffle(&mut rng);
        idx.truncate(want);
        idx.into_iter().map(|i| &self.records[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;

    fn db() -> AddressDb {
        let city = city_by_name("Billings").unwrap();
        let grid = city.grid();
        AddressDb::generate(city, &grid, &NoiseProfile::zillow_like())
    }

    #[test]
    fn total_addresses_near_table_2_volume() {
        let d = db();
        let expect = 3000.0;
        let got = d.len() as f64;
        assert!(
            (got - expect).abs() / expect < 0.2,
            "expected ~{expect}, got {got}"
        );
    }

    #[test]
    fn every_block_group_is_covered() {
        let d = db();
        assert_eq!(d.covered_block_groups(), 98);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = db();
        let b = db();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.record(0), b.record(0));
        assert_eq!(
            a.record((a.len() - 1) as AddressId),
            b.record((b.len() - 1) as AddressId)
        );
    }

    #[test]
    fn mdu_rate_is_about_ten_percent() {
        let d = db();
        let mdus = d.records().iter().filter(|r| r.is_mdu).count();
        let rate = mdus as f64 / d.len() as f64;
        assert!((0.06..=0.15).contains(&rate), "MDU rate {rate}");
    }

    #[test]
    fn mdus_have_units_and_others_do_not() {
        let d = db();
        for r in d.records() {
            if r.is_mdu {
                assert!(r.units.len() >= 2);
                assert!(r.canonical.unit.is_none(), "canonical form is the building");
            } else {
                assert!(r.units.is_empty());
            }
        }
    }

    #[test]
    fn zips_carry_the_city_prefix() {
        let d = db();
        for r in d.records().iter().take(100) {
            assert_eq!(r.canonical.zip / 100, 591, "{}", r.canonical.zip);
        }
    }

    #[test]
    fn sampling_respects_rate_floor_and_cap() {
        let d = db();
        for bg in 0..5 {
            let pool = d.in_block_group(bg).len();
            let sample = d.sample_block_group(bg, 0.10, 30, 42);
            let want = ((pool as f64 * 0.10).ceil() as usize).max(30).min(pool);
            assert_eq!(sample.len(), want, "bg {bg}: pool {pool}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_without_replacement() {
        let d = db();
        let a = d.sample_block_group(0, 0.5, 1, 7);
        let b = d.sample_block_group(0, 0.5, 1, 7);
        assert_eq!(
            a.iter().map(|r| r.id).collect::<Vec<_>>(),
            b.iter().map(|r| r.id).collect::<Vec<_>>()
        );
        let mut ids: Vec<_> = a.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len(), "no duplicates");
    }

    #[test]
    fn samples_come_from_the_requested_block_group() {
        let d = db();
        for r in d.sample_block_group(3, 0.10, 30, 1) {
            assert_eq!(r.bg_index, 3);
        }
    }

    #[test]
    fn listing_lines_mostly_differ_from_canonical_but_share_zip() {
        let d = db();
        let mut differing = 0;
        for r in d.records().iter().take(500) {
            if r.listing_line != r.canonical.canonical_line() {
                differing += 1;
            }
            assert!(r.listing_line.ends_with(&format!("{:05}", r.canonical.zip)));
        }
        assert!(
            differing > 100,
            "noise should alter many listings: {differing}"
        );
    }
}
