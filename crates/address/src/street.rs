//! Street-name generation.
//!
//! Each block group draws a handful of streets from a pool of realistic US
//! street names: trees, presidents, ordinals, and regional flavour words.
//! Generation is deterministic per seed.

use crate::model::{Directional, Suffix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base name pools. These mirror the most common US street-name families.
const TREES: &[&str] = &[
    "Oak", "Maple", "Pine", "Cedar", "Elm", "Walnut", "Magnolia", "Willow", "Cypress", "Birch",
    "Sycamore", "Chestnut", "Juniper", "Laurel", "Poplar", "Dogwood",
];
const PRESIDENTS: &[&str] = &[
    "Washington",
    "Jefferson",
    "Lincoln",
    "Madison",
    "Monroe",
    "Jackson",
    "Adams",
    "Harrison",
    "Tyler",
    "Polk",
    "Taylor",
    "Grant",
    "Hayes",
    "Garfield",
    "Cleveland",
    "Roosevelt",
];
const FLAVOR: &[&str] = &[
    "Main",
    "Park",
    "Lake",
    "Hill",
    "River",
    "Spring",
    "Highland",
    "Meadow",
    "Sunset",
    "Canal",
    "Market",
    "Church",
    "Mill",
    "Prairie",
    "Bayou",
    "Harbor",
    "Union",
    "Liberty",
    "Franklin",
    "Rampart",
    "Esplanade",
    "Carrollton",
    "Magazine",
    "Chartres",
    "Grand",
    "Vista",
    "Crescent",
];

/// Deterministic street-name generator for one city.
#[derive(Debug, Clone)]
pub struct StreetNamer {
    rng: StdRng,
}

impl StreetNamer {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x57E337),
        }
    }

    /// Draws a street: `(directional?, name, suffix)`.
    ///
    /// ~25% ordinal streets ("42nd"), the rest split across the name pools;
    /// ~20% carry a directional prefix.
    pub fn next_street(&mut self) -> (Option<Directional>, String, Suffix) {
        let name = match self.rng.gen_range(0..4u8) {
            0 => ordinal(self.rng.gen_range(1..100)),
            1 => TREES[self.rng.gen_range(0..TREES.len())].to_string(),
            2 => PRESIDENTS[self.rng.gen_range(0..PRESIDENTS.len())].to_string(),
            _ => FLAVOR[self.rng.gen_range(0..FLAVOR.len())].to_string(),
        };
        let directional = if self.rng.gen_bool(0.2) {
            Some(Directional::ALL[self.rng.gen_range(0..Directional::ALL.len())])
        } else {
            None
        };
        let suffix = Suffix::ALL[self.rng.gen_range(0..Suffix::ALL.len())];
        (directional, name, suffix)
    }
}

/// English ordinal for a small number: 1 → "1st", 42 → "42nd", 13 → "13th".
pub fn ordinal(n: u32) -> String {
    let suffix = match (n % 10, n % 100) {
        (_, 11..=13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    };
    format!("{n}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_are_grammatical() {
        assert_eq!(ordinal(1), "1st");
        assert_eq!(ordinal(2), "2nd");
        assert_eq!(ordinal(3), "3rd");
        assert_eq!(ordinal(4), "4th");
        assert_eq!(ordinal(11), "11th");
        assert_eq!(ordinal(12), "12th");
        assert_eq!(ordinal(13), "13th");
        assert_eq!(ordinal(21), "21st");
        assert_eq!(ordinal(42), "42nd");
        assert_eq!(ordinal(93), "93rd");
        assert_eq!(ordinal(100), "100th");
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = StreetNamer::new(5);
        let mut b = StreetNamer::new(5);
        for _ in 0..50 {
            assert_eq!(a.next_street(), b.next_street());
        }
    }

    #[test]
    fn generator_produces_varied_streets() {
        let mut namer = StreetNamer::new(1);
        let streets: std::collections::HashSet<String> = (0..200)
            .map(|_| {
                let (d, n, s) = namer.next_street();
                format!("{:?} {} {:?}", d, n, s)
            })
            .collect();
        assert!(
            streets.len() > 100,
            "only {} distinct streets",
            streets.len()
        );
    }

    #[test]
    fn names_are_nonempty_words() {
        let mut namer = StreetNamer::new(2);
        for _ in 0..100 {
            let (_, name, _) = namer.next_street();
            assert!(!name.is_empty());
            assert!(name.chars().next().unwrap().is_ascii_alphanumeric());
        }
    }
}
