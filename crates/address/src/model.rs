//! Structured street addresses and their canonical text form.

use std::fmt;

/// Compass directional prefix (e.g. the "N" in "N Rampart St").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Directional {
    N,
    S,
    E,
    W,
    NE,
    NW,
    SE,
    SW,
}

impl Directional {
    pub const ALL: [Directional; 8] = [
        Directional::N,
        Directional::S,
        Directional::E,
        Directional::W,
        Directional::NE,
        Directional::NW,
        Directional::SE,
        Directional::SW,
    ];

    /// Canonical USPS abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Directional::N => "N",
            Directional::S => "S",
            Directional::E => "E",
            Directional::W => "W",
            Directional::NE => "NE",
            Directional::NW => "NW",
            Directional::SE => "SE",
            Directional::SW => "SW",
        }
    }

    /// Spelled-out form ("North", ...).
    pub fn full(self) -> &'static str {
        match self {
            Directional::N => "North",
            Directional::S => "South",
            Directional::E => "East",
            Directional::W => "West",
            Directional::NE => "Northeast",
            Directional::NW => "Northwest",
            Directional::SE => "Southeast",
            Directional::SW => "Southwest",
        }
    }
}

/// Street suffix (thoroughfare type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suffix {
    Street,
    Avenue,
    Boulevard,
    Court,
    Drive,
    Lane,
    Road,
    Way,
    Terrace,
    Place,
    Circle,
    Parkway,
}

impl Suffix {
    pub const ALL: [Suffix; 12] = [
        Suffix::Street,
        Suffix::Avenue,
        Suffix::Boulevard,
        Suffix::Court,
        Suffix::Drive,
        Suffix::Lane,
        Suffix::Road,
        Suffix::Way,
        Suffix::Terrace,
        Suffix::Place,
        Suffix::Circle,
        Suffix::Parkway,
    ];

    /// Canonical USPS abbreviation ("St", "Ave", ...).
    pub fn abbrev(self) -> &'static str {
        match self {
            Suffix::Street => "St",
            Suffix::Avenue => "Ave",
            Suffix::Boulevard => "Blvd",
            Suffix::Court => "Ct",
            Suffix::Drive => "Dr",
            Suffix::Lane => "Ln",
            Suffix::Road => "Rd",
            Suffix::Way => "Way",
            Suffix::Terrace => "Ter",
            Suffix::Place => "Pl",
            Suffix::Circle => "Cir",
            Suffix::Parkway => "Pkwy",
        }
    }

    /// Spelled-out form ("Street", "Avenue", ...).
    pub fn full(self) -> &'static str {
        match self {
            Suffix::Street => "Street",
            Suffix::Avenue => "Avenue",
            Suffix::Boulevard => "Boulevard",
            Suffix::Court => "Court",
            Suffix::Drive => "Drive",
            Suffix::Lane => "Lane",
            Suffix::Road => "Road",
            Suffix::Way => "Way",
            Suffix::Terrace => "Terrace",
            Suffix::Place => "Place",
            Suffix::Circle => "Circle",
            Suffix::Parkway => "Parkway",
        }
    }
}

/// A structured residential street address.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreetAddress {
    pub number: u32,
    pub directional: Option<Directional>,
    pub street_name: String,
    pub suffix: Suffix,
    /// Unit/apartment designator for multi-dwelling units.
    pub unit: Option<String>,
    pub city: String,
    pub state: String,
    pub zip: u32,
}

impl StreetAddress {
    /// The canonical single-line rendering:
    /// `"742 N Evergreen Ter Apt 2, New Orleans, LA 70118"`.
    pub fn canonical_line(&self) -> String {
        let mut s = format!("{} ", self.number);
        if let Some(d) = self.directional {
            s.push_str(d.abbrev());
            s.push(' ');
        }
        s.push_str(&self.street_name);
        s.push(' ');
        s.push_str(self.suffix.abbrev());
        if let Some(u) = &self.unit {
            s.push_str(" Apt ");
            s.push_str(u);
        }
        s.push_str(&format!(", {}, {} {:05}", self.city, self.state, self.zip));
        s
    }

    /// The street part only (no city/state/zip), canonical form.
    pub fn canonical_street_line(&self) -> String {
        let mut s = format!("{} ", self.number);
        if let Some(d) = self.directional {
            s.push_str(d.abbrev());
            s.push(' ');
        }
        s.push_str(&self.street_name);
        s.push(' ');
        s.push_str(self.suffix.abbrev());
        if let Some(u) = &self.unit {
            s.push_str(" Apt ");
            s.push_str(u);
        }
        s
    }

    /// This address without its unit designator (how an MDU often appears in
    /// listing data).
    pub fn without_unit(&self) -> StreetAddress {
        StreetAddress {
            unit: None,
            ..self.clone()
        }
    }
}

impl fmt::Display for StreetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreetAddress {
        StreetAddress {
            number: 742,
            directional: Some(Directional::N),
            street_name: "Evergreen".to_string(),
            suffix: Suffix::Terrace,
            unit: Some("2B".to_string()),
            city: "New Orleans".to_string(),
            state: "LA".to_string(),
            zip: 70118,
        }
    }

    #[test]
    fn canonical_line_format() {
        assert_eq!(
            sample().canonical_line(),
            "742 N Evergreen Ter Apt 2B, New Orleans, LA 70118"
        );
    }

    #[test]
    fn canonical_line_without_directional_or_unit() {
        let mut a = sample();
        a.directional = None;
        a.unit = None;
        assert_eq!(
            a.canonical_line(),
            "742 Evergreen Ter, New Orleans, LA 70118"
        );
    }

    #[test]
    fn zip_is_zero_padded() {
        let mut a = sample();
        a.zip = 2134; // Boston-style leading zero
        assert!(
            a.canonical_line().ends_with("MA 02134") || a.canonical_line().ends_with("LA 02134")
        );
    }

    #[test]
    fn without_unit_strips_only_unit() {
        let a = sample();
        let b = a.without_unit();
        assert_eq!(b.unit, None);
        assert_eq!(b.number, a.number);
        assert_eq!(b.street_name, a.street_name);
    }

    #[test]
    fn suffix_tables_are_complete_and_distinct() {
        let mut abbrevs: Vec<&str> = Suffix::ALL.iter().map(|s| s.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), Suffix::ALL.len());
        for s in Suffix::ALL {
            assert!(!s.full().is_empty());
        }
    }

    #[test]
    fn directional_tables_are_complete_and_distinct() {
        let mut abbrevs: Vec<&str> = Directional::ALL.iter().map(|d| d.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 8);
    }

    #[test]
    fn display_matches_canonical_line() {
        let a = sample();
        assert_eq!(a.to_string(), a.canonical_line());
    }
}
