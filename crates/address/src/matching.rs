//! Fuzzy string matching for suggestion-list resolution.
//!
//! When an ISP's BAT rejects an input address it offers a list of candidate
//! addresses; BQT picks the best match offline (§3.3). We provide the three
//! standard similarity measures and a combined matcher that normalizes both
//! sides first. The bench crate ablates the three measures against each
//! other.

use crate::abbrev::normalize_line;

/// Levenshtein edit distance (insertions, deletions, substitutions).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row dynamic program.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// Levenshtein similarity in `[0, 1]`: `1 - distance / max_len`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push(ca);
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let b_matched: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|&(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(b_matched.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by common-prefix length (up to 4
/// chars, standard scaling 0.1).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Token-sort similarity: normalizes, sorts tokens, then applies
/// Levenshtein similarity — immune to token reordering like
/// `"Ter Evergreen 742"` vs `"742 Evergreen Ter"`.
pub fn token_sort_similarity(a: &str, b: &str) -> f64 {
    let mut ta: Vec<String> = normalize_line(a).split(' ').map(str::to_string).collect();
    let mut tb: Vec<String> = normalize_line(b).split(' ').map(str::to_string).collect();
    ta.sort();
    tb.sort();
    levenshtein_similarity(&ta.join(" "), &tb.join(" "))
}

/// Which similarity measure a matcher uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    Levenshtein,
    JaroWinkler,
    TokenSort,
}

/// Scores `input` against `candidate` with `measure`, after normalizing
/// both sides.
pub fn similarity(measure: Measure, input: &str, candidate: &str) -> f64 {
    let a = normalize_line(input);
    let b = normalize_line(candidate);
    match measure {
        Measure::Levenshtein => levenshtein_similarity(&a, &b),
        Measure::JaroWinkler => jaro_winkler(&a, &b),
        Measure::TokenSort => token_sort_similarity(&a, &b),
    }
}

/// Picks the best-scoring candidate at or above `threshold`.
///
/// Returns `(index, score)` of the winner, or `None` if nothing clears the
/// threshold. Ties break toward the earliest candidate, which matches how a
/// human would take the first plausible suggestion.
pub fn best_match(
    measure: Measure,
    input: &str,
    candidates: &[String],
    threshold: f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.iter().enumerate() {
        let s = similarity(measure, input, c);
        if s >= threshold && best.is_none_or(|(_, bs)| s > bs) {
            best = Some((i, s));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        for (a, b) in [
            ("evergreen", "evergren"),
            ("main st", "maine st"),
            ("a", "xyz"),
        ] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.9444).abs() < 1e-3);
        assert!((jaro("DIXON", "DICKSONX") - 0.7667).abs() < 1e-3);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_common_prefix() {
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!((jw - 0.9611).abs() < 1e-3);
        assert!(jw > jaro("MARTHA", "MARHTA"));
    }

    #[test]
    fn jaro_winkler_identical_is_one() {
        assert_eq!(jaro_winkler("742 evergreen ter", "742 evergreen ter"), 1.0);
    }

    #[test]
    fn token_sort_ignores_word_order() {
        let s = token_sort_similarity("742 Evergreen Ter", "Ter Evergreen 742");
        assert_eq!(s, 1.0);
    }

    #[test]
    fn token_sort_unifies_abbreviations() {
        let s = token_sort_similarity("742 Evergreen Terrace", "742 Evergreen Ter");
        assert_eq!(s, 1.0);
    }

    #[test]
    fn best_match_finds_abbreviation_variant() {
        let candidates = vec![
            "740 Evergreen Ter, New Orleans, LA 70118".to_string(),
            "742 Evergreen Ter, New Orleans, LA 70118".to_string(),
            "742 Everett St, New Orleans, LA 70118".to_string(),
        ];
        let (idx, score) = best_match(
            Measure::TokenSort,
            "742 Evergreen Terrace, New Orleans, LA 70118",
            &candidates,
            0.8,
        )
        .unwrap();
        assert_eq!(idx, 1);
        assert!(score > 0.95);
    }

    #[test]
    fn best_match_respects_threshold() {
        let candidates = vec!["totally different place".to_string()];
        assert_eq!(
            best_match(Measure::Levenshtein, "742 Evergreen Ter", &candidates, 0.8),
            None
        );
    }

    #[test]
    fn best_match_survives_typos() {
        let candidates = vec![
            "1200 Canal St, New Orleans, LA 70112".to_string(),
            "1200 Carrollton Ave, New Orleans, LA 70118".to_string(),
        ];
        // "Cnal" typo: dropped letter.
        let (idx, _) = best_match(
            Measure::JaroWinkler,
            "1200 Cnal St, New Orleans, LA 70112",
            &candidates,
            0.8,
        )
        .unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn empty_candidate_list_matches_nothing() {
        assert_eq!(best_match(Measure::TokenSort, "x", &[], 0.0), None);
    }

    #[test]
    fn all_measures_are_bounded() {
        for (a, b) in [
            ("abc", "abd"),
            ("", "x"),
            ("1 Main St", "999 Elm Ave Apt 4"),
        ] {
            for m in [
                Measure::Levenshtein,
                Measure::JaroWinkler,
                Measure::TokenSort,
            ] {
                let s = similarity(m, a, b);
                assert!((0.0..=1.0).contains(&s), "{m:?} {a:?} {b:?} -> {s}");
            }
        }
    }
}
