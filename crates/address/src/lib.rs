//! Street-address substrate: the synthetic Zillow-like database.
//!
//! The paper queries 837 k street addresses sourced from Zillow's ZTRAX
//! dataset. That data is proprietary, so this crate generates a synthetic
//! inventory with the *failure modes* the paper's tool had to handle (§3.1):
//!
//! * crowdsourced-style noise — suffix abbreviation variants ("Ave" vs
//!   "Avenue"), inconsistent case, typos, missing unit numbers ([`noise`]);
//! * multi-dwelling units whose unit number is absent from the listing;
//! * per-block-group address inventories with realistic street structure
//!   ([`db`]).
//!
//! It also provides what BQT needs to *recover* from that noise:
//! normalization against USPS-style abbreviation tables ([`abbrev`]) and
//! fuzzy string matching (Levenshtein, Jaro–Winkler, token-sort) for picking
//! the right entry from an ISP's suggestion list ([`matching`]).

pub mod abbrev;
pub mod db;
pub mod matching;
pub mod model;
pub mod noise;
pub mod street;

pub use db::{AddressDb, AddressId, AddressRecord};
pub use matching::{best_match, jaro_winkler, levenshtein, token_sort_similarity};
pub use model::{Directional, StreetAddress, Suffix};
pub use noise::{render_noisy, NoiseProfile};
pub use street::StreetNamer;
