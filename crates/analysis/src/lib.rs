//! Section-5 analyses: everything the paper concludes, recomputed from the
//! scraped dataset.
//!
//! Inputs are the measurement-side types only — per-address
//! [`bbsim_dataset::PlanRecord`]s, their block-group aggregates, and
//! *public* context (census geometry and ACS incomes, rebuilt from the
//! census crate). The hidden world model is never consulted: each finding
//! here is recovered from what BQT scraped, exactly like the paper's
//! analysis recovered them from the live web.
//!
//! * [`intercity`] — §5.2: carriage-value distributions per city and the
//!   plans-vector L1 comparison across city pairs (Figs. 5, 6);
//! * [`intracity`] — §5.3: spatial clustering via Moran's I, individual and
//!   composite ISP-pair maps (Fig. 7, Table 3);
//! * [`competition`] — §5.4: competition-mode classification and the
//!   one-tailed KS tests on cable carriage values (Fig. 8);
//! * [`income`] — §5.5: fiber deployment split by block-group income
//!   (Figs. 9a, 9b);
//! * [`report`] — plain-text table rendering for the repro harness.

pub mod audit;
pub mod baseline;
pub mod competition;
pub mod flattening;
pub mod income;
pub mod intercity;
pub mod intracity;
pub mod policy;
pub mod report;

pub use audit::{audit_form477, AuditSummary};
pub use baseline::{markup_view, upload_consistency, MarkupComparison};
pub use competition::{classify_modes, test_competition, CompetitionMode, CompetitionReport};
pub use flattening::{tier_flattening, worst_flattening, PricePointSpread};
pub use income::{fiber_by_income, fiber_income_gap, FiberIncomeBreakdown};
pub use intercity::{cv_histogram, l1_pairs, plan_vector_for};
pub use intracity::{
    ascii_map, composite_best_cv, lisa_field, lisa_map, morans_i_for_isp, morans_i_for_pair,
};
pub use policy::{evaluate_intervention, EquityOutcome, Intervention};
pub use report::Table;
