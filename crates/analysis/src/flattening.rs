//! Tier flattening (§2): same price, wildly different speeds.
//!
//! The Markup's study found AT&T charging $55/month for anything from
//! sub-Mbps DSL to fiber — a 1000x speed spread at one price point
//! ("tier flattening"). This module measures the same quantity on the
//! scraped dataset: for each (ISP, price point), the ratio between the
//! fastest and slowest download speeds sold at that price anywhere in the
//! dataset.

use bbsim_dataset::PlanRecord;
use bbsim_isp::Isp;
use std::collections::HashMap;

/// The speed spread at one price point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePointSpread {
    /// Monthly price (rounded to the dollar).
    pub price_usd: u32,
    pub min_download_mbps: f64,
    pub max_download_mbps: f64,
    /// Addresses observed paying this price.
    pub n_observations: usize,
}

impl PricePointSpread {
    /// max/min download ratio — the "tier flattening" factor.
    pub fn flattening_factor(&self) -> f64 {
        self.max_download_mbps / self.min_download_mbps.max(1e-9)
    }
}

/// Computes every price point's speed spread for one ISP.
///
/// Returns spreads sorted by flattening factor, largest first; price points
/// seen fewer than `min_observations` times are dropped as noise.
pub fn tier_flattening(
    records: &[PlanRecord],
    isp: Isp,
    min_observations: usize,
) -> Vec<PricePointSpread> {
    let mut by_price: HashMap<u32, (f64, f64, usize)> = HashMap::new();
    for r in records.iter().filter(|r| r.isp == isp) {
        for p in &r.plans {
            let price = p.price_usd.round() as u32;
            let e = by_price.entry(price).or_insert((f64::MAX, f64::MIN, 0));
            e.0 = e.0.min(p.download_mbps);
            e.1 = e.1.max(p.download_mbps);
            e.2 += 1;
        }
    }
    let mut out: Vec<PricePointSpread> = by_price
        .into_iter()
        .filter(|&(_, (_, _, n))| n >= min_observations)
        .map(|(price, (min, max, n))| PricePointSpread {
            price_usd: price,
            min_download_mbps: min,
            max_download_mbps: max,
            n_observations: n,
        })
        .collect();
    out.sort_by(|a, b| {
        b.flattening_factor()
            .partial_cmp(&a.flattening_factor())
            .expect("finite factors")
    });
    out
}

/// The worst flattening factor across all of an ISP's price points.
pub fn worst_flattening(records: &[PlanRecord], isp: Isp) -> Option<PricePointSpread> {
    tier_flattening(records, isp, 10).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_geo::BlockGroupId;
    use bqt::ScrapedPlan;

    fn rec(isp: Isp, down: f64, price: f64) -> PlanRecord {
        PlanRecord {
            city: "X".to_string(),
            isp,
            address_tag: 0,
            block_group: BlockGroupId::new(22, 71, 1, 1),
            bg_index: 0,
            plans: vec![ScrapedPlan {
                download_mbps: down,
                upload_mbps: 1.0,
                price_usd: price,
            }],
        }
    }

    #[test]
    fn detects_the_att_55_dollar_flattening() {
        // The AT&T pattern: $55 buys 0.768 Mbps DSL or 300 Mbps fiber.
        let mut records = Vec::new();
        for _ in 0..20 {
            records.push(rec(Isp::Att, 0.768, 55.0));
            records.push(rec(Isp::Att, 300.0, 55.0));
        }
        let worst = worst_flattening(&records, Isp::Att).unwrap();
        assert_eq!(worst.price_usd, 55);
        assert!((worst.flattening_factor() - 390.6).abs() < 1.0);
    }

    #[test]
    fn uniform_pricing_has_factor_one() {
        let records: Vec<PlanRecord> = (0..20).map(|_| rec(Isp::Cox, 200.0, 20.0)).collect();
        let worst = worst_flattening(&records, Isp::Cox).unwrap();
        assert_eq!(worst.flattening_factor(), 1.0);
    }

    #[test]
    fn rare_price_points_are_dropped() {
        let mut records: Vec<PlanRecord> = (0..20).map(|_| rec(Isp::Cox, 200.0, 20.0)).collect();
        records.push(rec(Isp::Cox, 1.0, 99.0)); // single odd observation
        let spreads = tier_flattening(&records, Isp::Cox, 10);
        assert!(spreads.iter().all(|s| s.price_usd != 99));
    }

    #[test]
    fn results_are_sorted_by_factor() {
        let mut records = Vec::new();
        for _ in 0..15 {
            records.push(rec(Isp::Att, 1.0, 55.0));
            records.push(rec(Isp::Att, 100.0, 55.0));
            records.push(rec(Isp::Att, 500.0, 65.0));
            records.push(rec(Isp::Att, 600.0, 65.0));
        }
        let spreads = tier_flattening(&records, Isp::Att, 10);
        assert_eq!(spreads.len(), 2);
        assert!(spreads[0].flattening_factor() >= spreads[1].flattening_factor());
        assert_eq!(spreads[0].price_usd, 55);
    }

    #[test]
    fn other_isps_records_are_ignored() {
        let records = vec![rec(Isp::Cox, 1000.0, 35.0)];
        assert!(tier_flattening(&records, Isp::Att, 1).is_empty());
    }
}
