//! §5.5 — who gets fiber: deployment split by block-group income.
//!
//! Block groups are classified fiber/DSL from the scraped plans' shape
//! (fiber-grade uploads), then joined against the public ACS income table
//! and split at the city's median income, exactly like the paper's
//! methodology ("low" below the city median, "high" at or above it).

use bbsim_census::{city_seed, AcsDataset, CityProfile, IncomeBand, IncomeField};
use bbsim_dataset::BlockGroupRow;
use bbsim_isp::Isp;

/// Fig. 9a's quantities for one (city, DSL/fiber ISP).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiberIncomeBreakdown {
    /// Served low-income block groups.
    pub n_low: usize,
    /// Served high-income block groups.
    pub n_high: usize,
    /// Percent of low-income served groups with fiber available.
    pub low_fiber_pct: f64,
    /// Percent of high-income served groups with fiber available.
    pub high_fiber_pct: f64,
}

impl FiberIncomeBreakdown {
    /// Fig. 9b's metric: percentage-point difference, high minus low.
    pub fn gap_points(&self) -> f64 {
        self.high_fiber_pct - self.low_fiber_pct
    }
}

/// Rebuilds the public ACS table for a city (geometry + income are public
/// context, not hidden world state).
pub fn public_acs(city: &CityProfile) -> AcsDataset {
    let grid = city.grid();
    let income = IncomeField::generate(&grid, city.median_income_k, city_seed(city.name));
    AcsDataset::build(city, &grid, &income, city_seed(city.name))
}

/// Computes the fiber-by-income breakdown for one DSL/fiber ISP in a city.
///
/// A block group counts as fiber-served when at least half its scraped
/// addresses' best plans look fiber-fed. Returns `None` when the ISP has
/// fewer than 10 served groups in either band.
pub fn fiber_by_income(
    city: &CityProfile,
    rows: &[BlockGroupRow],
    isp: Isp,
) -> Option<FiberIncomeBreakdown> {
    assert!(!isp.is_cable(), "income split applies to DSL/fiber ISPs");
    let acs = public_acs(city);
    let mut low = (0usize, 0usize); // (fiber, total)
    let mut high = (0usize, 0usize);
    for r in rows.iter().filter(|r| r.isp == isp) {
        let demo = acs.get(r.block_group)?;
        let has_fiber = r.fiber_share >= 0.5;
        let slot = match demo.income_band {
            IncomeBand::Low => &mut low,
            IncomeBand::High => &mut high,
        };
        slot.1 += 1;
        if has_fiber {
            slot.0 += 1;
        }
    }
    if low.1 < 10 || high.1 < 10 {
        return None;
    }
    Some(FiberIncomeBreakdown {
        n_low: low.1,
        n_high: high.1,
        low_fiber_pct: 100.0 * low.0 as f64 / low.1 as f64,
        high_fiber_pct: 100.0 * high.0 as f64 / high.1 as f64,
    })
}

/// Convenience: the Fig. 9b gap for one (city, ISP), if computable.
pub fn fiber_income_gap(city: &CityProfile, rows: &[BlockGroupRow], isp: Isp) -> Option<f64> {
    fiber_by_income(city, rows, isp).map(|b| b.gap_points())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;

    /// Builds synthetic rows where fiber presence follows the *public*
    /// income field exactly (perfectly income-biased deployment).
    fn income_following_rows(city: &CityProfile, isp: Isp) -> Vec<BlockGroupRow> {
        let acs = public_acs(city);
        let grid = city.grid();
        (0..grid.len())
            .map(|bg| {
                let high = acs.rows()[bg].income_band == IncomeBand::High;
                BlockGroupRow {
                    city: city.name.to_string(),
                    isp,
                    block_group: grid.id(bg),
                    bg_index: bg,
                    median_cv: if high { 12.5 } else { 0.5 },
                    cov: Some(0.0),
                    n_addresses: 30,
                    fiber_share: if high { 0.9 } else { 0.0 },
                }
            })
            .collect()
    }

    #[test]
    fn perfectly_biased_deployment_yields_maximal_gap() {
        let city = city_by_name("New Orleans").unwrap();
        let rows = income_following_rows(city, Isp::Att);
        let b = fiber_by_income(city, &rows, Isp::Att).unwrap();
        assert!(b.high_fiber_pct > 99.0);
        assert!(b.low_fiber_pct < 1.0);
        assert!(b.gap_points() > 99.0);
    }

    #[test]
    fn unbiased_deployment_yields_near_zero_gap() {
        let city = city_by_name("New Orleans").unwrap();
        let mut rows = income_following_rows(city, Isp::Att);
        // Fiber everywhere: no income gradient.
        for r in &mut rows {
            r.fiber_share = 1.0;
        }
        let b = fiber_by_income(city, &rows, Isp::Att).unwrap();
        assert_eq!(b.gap_points(), 0.0);
    }

    #[test]
    fn insufficient_coverage_returns_none() {
        let city = city_by_name("New Orleans").unwrap();
        let mut rows = income_following_rows(city, Isp::Att);
        rows.truncate(5);
        assert!(fiber_by_income(city, &rows, Isp::Att).is_none());
    }

    #[test]
    fn totals_cover_all_served_groups() {
        let city = city_by_name("New Orleans").unwrap();
        let rows = income_following_rows(city, Isp::Att);
        let b = fiber_by_income(city, &rows, Isp::Att).unwrap();
        assert_eq!(b.n_low + b.n_high, city.block_groups);
    }

    #[test]
    #[should_panic(expected = "DSL/fiber")]
    fn cable_isp_is_rejected() {
        let city = city_by_name("New Orleans").unwrap();
        fiber_by_income(city, &[], Isp::Cox);
    }
}
