//! §5.2 — inter-city broadband plans.
//!
//! An ISP's offerings in a city are summarized as the distribution of
//! block-group carriage values. Cities are compared by the L1 norm between
//! their 30-dimensional plan vectors (Fig. 6); individual city
//! distributions are Fig. 5's series.

use bbsim_dataset::BlockGroupRow;
use bbsim_isp::Isp;
use bbsim_stats::{l1_distance, Histogram, PlanVector};

/// Block-group median carriage values of one ISP in one city's rows.
pub fn carriage_values(rows: &[BlockGroupRow], isp: Isp) -> Vec<f64> {
    rows.iter()
        .filter(|r| r.isp == isp)
        .map(|r| r.median_cv)
        .collect()
}

/// The paper's plans vector for one (ISP, city): block-group-weighted,
/// ceil-discretized carriage values. `None` when the ISP has no rows here.
pub fn plan_vector_for(rows: &[BlockGroupRow], isp: Isp) -> Option<PlanVector> {
    PlanVector::from_carriage_values(&carriage_values(rows, isp))
}

/// Normalized histogram of block-group carriage values (a Fig. 5 series).
pub fn cv_histogram(rows: &[BlockGroupRow], isp: Isp, bins: usize) -> Option<Histogram> {
    let cvs = carriage_values(rows, isp);
    if cvs.is_empty() {
        return None;
    }
    let mut h = Histogram::new(0.0, 30.0, bins);
    h.extend(&cvs);
    Some(h)
}

/// All pairwise L1 distances between cities' plan vectors for one ISP
/// (the per-ISP series of Fig. 6). Input: `(city name, vector)` per city.
pub fn l1_pairs(per_city: &[(String, PlanVector)]) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for i in 0..per_city.len() {
        for j in (i + 1)..per_city.len() {
            out.push((
                per_city[i].0.clone(),
                per_city[j].0.clone(),
                l1_distance(&per_city[i].1, &per_city[j].1),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_geo::BlockGroupId;

    fn row(isp: Isp, bg: usize, cv: f64) -> BlockGroupRow {
        BlockGroupRow {
            city: "X".to_string(),
            isp,
            block_group: BlockGroupId::new(22, 71, (bg / 4 + 1) as u32, (bg % 4 + 1) as u8),
            bg_index: bg,
            median_cv: cv,
            cov: Some(0.0),
            n_addresses: 30,
            fiber_share: 0.0,
        }
    }

    #[test]
    fn carriage_values_filter_by_isp() {
        let rows = vec![
            row(Isp::Cox, 0, 11.0),
            row(Isp::Att, 1, 5.0),
            row(Isp::Cox, 2, 14.0),
        ];
        assert_eq!(carriage_values(&rows, Isp::Cox), vec![11.0, 14.0]);
        assert_eq!(carriage_values(&rows, Isp::Verizon), Vec::<f64>::new());
    }

    #[test]
    fn plan_vector_none_for_absent_isp() {
        let rows = vec![row(Isp::Cox, 0, 11.0)];
        assert!(plan_vector_for(&rows, Isp::Att).is_none());
        assert!(plan_vector_for(&rows, Isp::Cox).is_some());
    }

    #[test]
    fn l1_pairs_count_is_n_choose_2() {
        let mk = |cvs: &[f64]| PlanVector::from_carriage_values(cvs).unwrap();
        let per_city = vec![
            ("A".to_string(), mk(&[10.0, 11.0])),
            ("B".to_string(), mk(&[10.0, 11.0])),
            ("C".to_string(), mk(&[28.0])),
        ];
        let pairs = l1_pairs(&per_city);
        assert_eq!(pairs.len(), 3);
        let ab = pairs.iter().find(|(a, b, _)| a == "A" && b == "B").unwrap();
        assert_eq!(ab.2, 0.0);
        let ac = pairs.iter().find(|(a, b, _)| a == "A" && b == "C").unwrap();
        assert_eq!(ac.2, 2.0);
    }

    #[test]
    fn histogram_mass_equals_row_count() {
        let rows: Vec<BlockGroupRow> = (0..50)
            .map(|i| row(Isp::Cox, i, 10.0 + (i % 5) as f64))
            .collect();
        let h = cv_histogram(&rows, Isp::Cox, 30).unwrap();
        assert_eq!(h.total(), 50);
    }
}
