//! Plain-text table rendering for the repro harness.

/// A simple aligned-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Renders with column alignment and a separator under the headers.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(cell);
                if i + 1 < ncols {
                    out.push_str(&" ".repeat(widths[i] - cell.len() + 2));
                }
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Formats an optional float with fixed decimals, `-` when absent.
pub fn opt_f64(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => format!("{x:.decimals$}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["ISP", "hit rate"]);
        t.row(vec!["Cox", "0.96"]);
        t.row(vec!["CenturyLink", "0.88"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset on every line.
        let off = lines[0].find("hit rate").unwrap();
        assert_eq!(lines[2].find("0.96").unwrap(), off);
        assert_eq!(lines[3].find("0.88").unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn opt_f64_formats_and_dashes() {
        assert_eq!(opt_f64(Some(1.23456), 2), "1.23");
        assert_eq!(opt_f64(None, 2), "-");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
