//! Prior-methodology baselines and robustness checks.
//!
//! Two comparisons the paper makes against earlier work, plus the
//! statistical robustness checks that back its conclusions:
//!
//! * **The Markup's blind spot** (§2, §5.3): the prior large-scale study
//!   covered only DSL/fiber ISPs. Viewed through that lens, a city like New
//!   Orleans looks dire — most block groups get low carriage values — but
//!   adding the cable incumbent flips the picture. [`markup_view`]
//!   quantifies both views on the same scraped data.
//! * **Upload-based carriage value** (§5.1): the paper verified its results
//!   hold when cv is computed from upload instead of download speeds.
//!   [`upload_consistency`] measures the block-group-level rank agreement.

use bbsim_dataset::{BlockGroupRow, PlanRecord};
use bbsim_isp::Isp;
use bbsim_stats::spearman;
use std::collections::HashMap;

/// The same city through two methodological lenses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkupComparison {
    /// Block groups visible to a DSL/fiber-only study.
    pub dslf_groups: usize,
    /// ... of which get a "bad deal" (best cv below the threshold).
    pub dslf_bad_frac: f64,
    /// Block groups visible when cable is included.
    pub composite_groups: usize,
    /// ... of which still get a bad deal.
    pub composite_bad_frac: f64,
    pub bad_deal_threshold_cv: f64,
}

/// Replicates the DSL/fiber-only methodology against the full composite
/// view on one city's rows. `dslf` is the city's DSL/fiber ISP.
pub fn markup_view(rows: &[BlockGroupRow], dslf: Isp, threshold_cv: f64) -> MarkupComparison {
    assert!(!dslf.is_cable(), "the Markup lens covers DSL/fiber ISPs");
    let dslf_cvs: Vec<f64> = rows
        .iter()
        .filter(|r| r.isp == dslf)
        .map(|r| r.median_cv)
        .collect();
    // Composite: best cv from any ISP per block group.
    let mut best: HashMap<usize, f64> = HashMap::new();
    for r in rows {
        let e = best.entry(r.bg_index).or_insert(f64::MIN);
        *e = e.max(r.median_cv);
    }
    let bad = |cvs: &[f64]| {
        if cvs.is_empty() {
            0.0
        } else {
            cvs.iter().filter(|&&cv| cv < threshold_cv).count() as f64 / cvs.len() as f64
        }
    };
    let composite: Vec<f64> = best.values().copied().collect();
    MarkupComparison {
        dslf_groups: dslf_cvs.len(),
        dslf_bad_frac: bad(&dslf_cvs),
        composite_groups: composite.len(),
        composite_bad_frac: bad(&composite),
        bad_deal_threshold_cv: threshold_cv,
    }
}

/// Block-group-level agreement between download-based and upload-based
/// carriage values for one ISP: Spearman rank correlation over groups.
///
/// Returns `None` with fewer than 10 comparable groups or a constant
/// margin.
pub fn upload_consistency(records: &[PlanRecord], isp: Isp) -> Option<f64> {
    // Per block group: median best download-cv and median best upload-cv.
    let mut down: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut up: HashMap<usize, Vec<f64>> = HashMap::new();
    for r in records.iter().filter(|r| r.isp == isp) {
        if r.plans.is_empty() {
            continue;
        }
        let best_down = r
            .plans
            .iter()
            .map(|p| p.download_mbps / p.price_usd)
            .fold(f64::MIN, f64::max);
        let best_up = r
            .plans
            .iter()
            .map(|p| p.upload_mbps / p.price_usd)
            .fold(f64::MIN, f64::max);
        down.entry(r.bg_index).or_default().push(best_down);
        up.entry(r.bg_index).or_default().push(best_up);
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (bg, d) in &down {
        let u = &up[bg];
        xs.push(bbsim_stats::median(d).expect("non-empty"));
        ys.push(bbsim_stats::median(u).expect("non-empty"));
    }
    if xs.len() < 10 {
        return None;
    }
    spearman(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_geo::BlockGroupId;
    use bqt::ScrapedPlan;

    fn row(isp: Isp, bg: usize, cv: f64) -> BlockGroupRow {
        BlockGroupRow {
            city: "X".to_string(),
            isp,
            block_group: BlockGroupId::new(22, 71, 1, 1),
            bg_index: bg,
            median_cv: cv,
            cov: Some(0.0),
            n_addresses: 30,
            fiber_share: 0.0,
        }
    }

    #[test]
    fn markup_lens_overstates_bad_deals() {
        // The §5.3 New Orleans structure: AT&T mostly low cv, Cox high cv
        // almost everywhere.
        let mut rows = Vec::new();
        for bg in 0..100 {
            if bg < 70 {
                rows.push(row(Isp::Att, bg, 0.5)); // DSL: bad deal
            } else {
                rows.push(row(Isp::Att, bg, 12.5)); // fiber
            }
            rows.push(row(Isp::Cox, bg, 11.4));
        }
        let cmp = markup_view(&rows, Isp::Att, 5.0);
        assert!(cmp.dslf_bad_frac > 0.6, "{cmp:?}");
        assert!(cmp.composite_bad_frac < 0.05, "{cmp:?}");
        assert_eq!(cmp.composite_groups, 100);
    }

    #[test]
    fn composite_covers_groups_the_dslf_isp_misses() {
        let rows = vec![
            row(Isp::Cox, 0, 11.0),
            row(Isp::Cox, 1, 11.0),
            row(Isp::Att, 0, 0.5),
        ];
        let cmp = markup_view(&rows, Isp::Att, 5.0);
        assert_eq!(cmp.dslf_groups, 1);
        assert_eq!(cmp.composite_groups, 2);
    }

    #[test]
    #[should_panic(expected = "DSL/fiber")]
    fn cable_lens_is_rejected() {
        markup_view(&[], Isp::Cox, 5.0);
    }

    fn plan_rec(isp: Isp, bg: usize, down: f64, up: f64, price: f64) -> PlanRecord {
        PlanRecord {
            city: "X".to_string(),
            isp,
            address_tag: bg as u64,
            block_group: BlockGroupId::new(22, 71, 1, 1),
            bg_index: bg,
            plans: vec![ScrapedPlan {
                download_mbps: down,
                upload_mbps: up,
                price_usd: price,
            }],
        }
    }

    #[test]
    fn symmetric_plans_give_perfect_upload_agreement() {
        // Fiber-style symmetric plans: download rank = upload rank.
        let records: Vec<PlanRecord> = (0..30)
            .map(|bg| {
                plan_rec(
                    Isp::Att,
                    bg,
                    100.0 + bg as f64 * 10.0,
                    100.0 + bg as f64 * 10.0,
                    55.0,
                )
            })
            .collect();
        let rho = upload_consistency(&records, Isp::Att).unwrap();
        assert!((rho - 1.0).abs() < 1e-9, "rho = {rho}");
    }

    #[test]
    fn anti_correlated_uploads_are_detected() {
        let records: Vec<PlanRecord> = (0..30)
            .map(|bg| {
                plan_rec(
                    Isp::Att,
                    bg,
                    100.0 + bg as f64 * 10.0,
                    400.0 - bg as f64 * 10.0,
                    55.0,
                )
            })
            .collect();
        let rho = upload_consistency(&records, Isp::Att).unwrap();
        assert!(rho < -0.9, "rho = {rho}");
    }

    #[test]
    fn too_few_groups_is_none() {
        let records = vec![plan_rec(Isp::Att, 0, 100.0, 100.0, 55.0)];
        assert!(upload_consistency(&records, Isp::Att).is_none());
    }
}
