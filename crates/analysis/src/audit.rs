//! Third-party audit of ISP self-reported availability (recommendation 2).
//!
//! Joins an ISP's Form-477-style filing against what BQT actually measured
//! at sampled addresses and quantifies two overstatement channels:
//!
//! * **speed inflation** — claimed maximum download vs the median best
//!   download actually offered to the block group's addresses;
//! * **technology generalization** — block groups claimed as fiber where
//!   the *typical* address only qualifies for DSL.
//!
//! This is the auditing workflow the paper says regulators need and that
//! its dataset enables.

use bbsim_dataset::PlanRecord;
use bbsim_isp::form477::Form477Report;
use bbsim_isp::{Isp, Tech};
use bbsim_stats::median;
use std::collections::HashMap;

/// Audit result for one block group.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRow {
    pub bg_index: usize,
    /// Technology the filing claims for this group.
    pub claimed_tech: Tech,
    /// Self-reported maximum download.
    pub claimed_mbps: f64,
    /// Median best download BQT measured across sampled addresses.
    pub measured_mbps: f64,
    /// claimed / measured.
    pub inflation: f64,
    /// Filed as fiber but the typical sampled address is not fiber-fed.
    pub tech_overstated: bool,
}

/// City-level audit summary for one ISP.
#[derive(Debug, Clone)]
pub struct AuditSummary {
    pub isp: Isp,
    pub audited_groups: usize,
    /// Median of claimed/measured download ratios over all audited groups.
    pub median_inflation: f64,
    /// Median inflation among DSL-technology filings — where the top-tier
    /// reporting rule bites hardest.
    pub dsl_median_inflation: Option<f64>,
    /// Fraction of audited groups where claimed > 2x measured.
    pub overstated_2x: f64,
    /// Fraction of fiber-filed groups whose typical address is not fiber.
    pub tech_overstatement: f64,
    pub rows: Vec<AuditRow>,
}

/// Audits a filing against scraped per-address records (same city).
///
/// Only block groups present in both sources are audited. Returns `None`
/// when fewer than 5 groups overlap.
pub fn audit_form477(report: &Form477Report, records: &[PlanRecord]) -> Option<AuditSummary> {
    // Measured per-bg: median best download + fiber share, from records.
    let mut best_downs: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut fiber_counts: HashMap<usize, (usize, usize)> = HashMap::new();
    for r in records.iter().filter(|r| r.isp == report.isp) {
        let Some(best) = r
            .plans
            .iter()
            .map(|p| p.download_mbps)
            .fold(None, |acc: Option<f64>, d| {
                Some(acc.map_or(d, |a| a.max(d)))
            })
        else {
            continue;
        };
        best_downs.entry(r.bg_index).or_default().push(best);
        let e = fiber_counts.entry(r.bg_index).or_default();
        e.1 += 1;
        if r.best_plan_is_fiber() == Some(true) {
            e.0 += 1;
        }
    }

    let mut rows = Vec::new();
    for claim in &report.rows {
        let Some(downs) = best_downs.get(&claim.bg_index) else {
            continue;
        };
        let measured = median(downs).expect("non-empty");
        let inflation = claim.max_download_mbps / measured.max(1e-9);
        let fiber_typical = fiber_counts
            .get(&claim.bg_index)
            .map(|&(f, n)| f * 2 >= n)
            .unwrap_or(false);
        rows.push(AuditRow {
            bg_index: claim.bg_index,
            claimed_tech: claim.technology,
            claimed_mbps: claim.max_download_mbps,
            measured_mbps: measured,
            inflation,
            tech_overstated: claim.technology == Tech::Fiber && !fiber_typical,
        });
    }
    if rows.len() < 5 {
        return None;
    }

    let inflations: Vec<f64> = rows.iter().map(|r| r.inflation).collect();
    let dsl_inflations: Vec<f64> = rows
        .iter()
        .filter(|r| r.claimed_tech == Tech::Dsl)
        .map(|r| r.inflation)
        .collect();
    let overstated_2x =
        rows.iter().filter(|r| r.inflation > 2.0).count() as f64 / rows.len() as f64;
    let fiber_filed = report
        .rows
        .iter()
        .filter(|r| r.technology == Tech::Fiber)
        .count();
    let tech_overstatement = if fiber_filed == 0 {
        0.0
    } else {
        rows.iter().filter(|r| r.tech_overstated).count() as f64 / fiber_filed as f64
    };
    Some(AuditSummary {
        isp: report.isp,
        audited_groups: rows.len(),
        median_inflation: median(&inflations).expect("non-empty"),
        dsl_median_inflation: median(&dsl_inflations),
        overstated_2x,
        tech_overstatement,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;
    use bbsim_dataset::{curate_city, CurationOptions};
    use bbsim_isp::CityWorld;

    fn setup() -> (Form477Report, Vec<PlanRecord>) {
        let city = city_by_name("Billings").expect("study city");
        let world = CityWorld::build(city);
        let report = Form477Report::file(&world, Isp::CenturyLink);
        let ds = curate_city(city, &CurationOptions::quick(31));
        (report, ds.records)
    }

    #[test]
    fn dsl_fiber_filings_inflate_speed_substantially() {
        let (report, records) = setup();
        let audit = audit_form477(&report, &records).expect("auditable");
        // Fiber filings are honest (the typical address really gets the top
        // tier); the top-tier rule bites on the DSL side.
        let dsl = audit.dsl_median_inflation.expect("DSL groups audited");
        assert!(dsl > 2.0, "DSL median inflation {dsl}");
        assert!(
            audit.overstated_2x > 0.2,
            "2x-overstatement {}",
            audit.overstated_2x
        );
        assert!(audit.audited_groups > 40);
    }

    #[test]
    fn inflation_is_never_below_one() {
        // The filing is a maximum over the same plan universe BQT sees, so
        // it can understate nothing.
        let (report, records) = setup();
        let audit = audit_form477(&report, &records).expect("auditable");
        for row in &audit.rows {
            assert!(
                row.inflation >= 0.99,
                "bg {}: {}",
                row.bg_index,
                row.inflation
            );
        }
    }

    #[test]
    fn cable_filings_inflate_less_than_dsl_fiber() {
        let city = city_by_name("Billings").expect("study city");
        let world = CityWorld::build(city);
        let ds = curate_city(city, &CurationOptions::quick(31));
        let dsl = audit_form477(&Form477Report::file(&world, Isp::CenturyLink), &ds.records)
            .expect("auditable");
        let cable = audit_form477(&Form477Report::file(&world, Isp::Spectrum), &ds.records)
            .expect("auditable");
        // Cable offers are uniform within a block group; DSL ladders are not.
        let dsl_inflation = dsl.dsl_median_inflation.expect("DSL groups audited");
        assert!(
            cable.median_inflation < dsl_inflation,
            "cable {} vs dsl {}",
            cable.median_inflation,
            dsl_inflation
        );
    }

    #[test]
    fn too_little_overlap_is_none() {
        let (report, records) = setup();
        let few: Vec<PlanRecord> = records.into_iter().take(2).collect();
        assert!(audit_form477(&report, &few).is_none());
    }
}
