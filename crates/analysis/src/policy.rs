//! Policy counterfactuals: the paper's §7 recommendations, simulated.
//!
//! The paper closes by recommending rate regulation and subsidized fiber
//! deployment for low-income block groups. These are *counterfactual
//! transforms of the scraped dataset* — no hidden world access — that
//! re-ask the §5.5 equity question after each intervention:
//!
//! * **rate cap** — no plan may cost more than `$cap`; carriage values are
//!   recomputed with capped prices (New York's A6259A-style regulation);
//! * **low-income subsidy** — an ACP-style `$s`/month discount applied to
//!   plans in low-income block groups;
//! * **fiber buildout** — low-income block groups without a fiber-grade
//!   deal are granted the city's observed fiber offer set (CA SB-156-style
//!   subsidized deployment).
//!
//! The output metric is premium-deal availability: the fraction of block
//! groups in each income band whose best available offer reaches a premium
//! carriage value (>= 14 Mbps/$ — the competitive-tier level that §5.4
//! shows fiber competition unlocks). The ACP long tail is pruned at the
//! baseline the way Fig. 8 prunes it.

use crate::income::public_acs;
use bbsim_census::{CityProfile, IncomeBand};
use bbsim_dataset::PlanRecord;
use std::collections::HashMap;

/// An intervention applied to the scraped plan data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intervention {
    /// No change (the observed baseline).
    None,
    /// Cap all monthly prices at this value.
    RateCap { max_price_usd: f64 },
    /// Subsidize plans in low-income block groups by this much per month
    /// (price floor $5).
    LowIncomeSubsidy { discount_usd: f64 },
    /// Give low-income block groups the deal profile of a fiber-served
    /// block group (deployment plus the cable competition it provokes).
    FiberBuildout,
}

/// Best carriage value that counts as a premium deal (the §5.4
/// competitive-tier level).
pub const PREMIUM_CV: f64 = 14.0;

/// The equity picture after an intervention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquityOutcome {
    pub intervention_label: &'static str,
    /// Fraction of low-income block groups with a premium deal available.
    pub low_income_premium_frac: f64,
    /// Fraction of high-income block groups with a premium deal available.
    pub high_income_premium_frac: f64,
    pub low_groups: usize,
    pub high_groups: usize,
}

impl EquityOutcome {
    /// Equity gap in percentage points: high minus low premium access.
    pub fn gap_points(&self) -> f64 {
        100.0 * (self.high_income_premium_frac - self.low_income_premium_frac)
    }
}

fn label(i: Intervention) -> &'static str {
    match i {
        Intervention::None => "observed baseline",
        Intervention::RateCap { .. } => "rate cap",
        Intervention::LowIncomeSubsidy { .. } => "low-income subsidy",
        Intervention::FiberBuildout => "fiber buildout",
    }
}

/// Applies `intervention` to one city's scraped records and reports the
/// income-split equity outcome. Returns `None` when either band has fewer
/// than 10 block groups with data.
pub fn evaluate_intervention(
    city: &CityProfile,
    records: &[PlanRecord],
    intervention: Intervention,
) -> Option<EquityOutcome> {
    let acs = public_acs(city);

    // Per block group: best cv after the intervention, plus whether the
    // group is observed fiber-served (drives the buildout counterfactual).
    let mut best: HashMap<usize, f64> = HashMap::new();
    let mut band: HashMap<usize, IncomeBand> = HashMap::new();
    let mut has_fiber: HashMap<usize, bool> = HashMap::new();
    for r in records {
        let Some(demo) = acs.get(r.block_group) else {
            continue;
        };
        band.insert(r.bg_index, demo.income_band);
        let low = demo.income_band == IncomeBand::Low;
        if r.best_plan_is_fiber() == Some(true) {
            has_fiber.insert(r.bg_index, true);
        }
        for p in &r.plans {
            // Prune the observed ACP tail so subsidized outliers do not
            // mask the structural gap (same rule as Fig. 8).
            if p.carriage_value() > 29.0 {
                continue;
            }
            let price = match intervention {
                Intervention::RateCap { max_price_usd } => p.price_usd.min(max_price_usd),
                Intervention::LowIncomeSubsidy { discount_usd } if low => {
                    (p.price_usd - discount_usd).max(5.0)
                }
                _ => p.price_usd,
            };
            let cv = p.download_mbps / price;
            let e = best.entry(r.bg_index).or_insert(f64::MIN);
            *e = e.max(cv);
        }
    }

    if intervention == Intervention::FiberBuildout {
        // A built-out block group inherits the typical deal of the city's
        // fiber-served groups: the deployment AND the competitive response
        // it provokes from cable.
        let fiber_best: Vec<f64> = best
            .iter()
            .filter(|(bg, _)| has_fiber.get(bg) == Some(&true))
            .map(|(_, &cv)| cv)
            .collect();
        if let Some(typical) = bbsim_stats::median(&fiber_best) {
            for (&bg, cv) in best.iter_mut() {
                if band.get(&bg) == Some(&IncomeBand::Low) {
                    *cv = cv.max(typical);
                }
            }
        }
    }

    let premium = |cvs: &[f64]| {
        cvs.iter().filter(|&&cv| cv >= PREMIUM_CV).count() as f64 / cvs.len().max(1) as f64
    };
    let mut low_cvs = Vec::new();
    let mut high_cvs = Vec::new();
    for (bg, cv) in &best {
        match band.get(bg) {
            Some(IncomeBand::Low) => low_cvs.push(*cv),
            Some(IncomeBand::High) => high_cvs.push(*cv),
            None => {}
        }
    }
    if low_cvs.len() < 10 || high_cvs.len() < 10 {
        return None;
    }
    Some(EquityOutcome {
        intervention_label: label(intervention),
        low_income_premium_frac: premium(&low_cvs),
        high_income_premium_frac: premium(&high_cvs),
        low_groups: low_cvs.len(),
        high_groups: high_cvs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;
    use bbsim_dataset::{curate_city, CurationOptions};

    fn setup() -> (&'static CityProfile, Vec<PlanRecord>) {
        let city = city_by_name("New Orleans").expect("study city");
        let ds = curate_city(city, &CurationOptions::quick(41));
        (city, ds.records)
    }

    #[test]
    fn baseline_shows_an_equity_gap() {
        let (city, records) = setup();
        let base = evaluate_intervention(city, &records, Intervention::None).unwrap();
        assert!(
            base.gap_points() > 3.0,
            "baseline gap {} points",
            base.gap_points()
        );
        assert!(base.low_groups > 100 && base.high_groups > 100);
    }

    #[test]
    fn subsidy_shrinks_the_gap() {
        let (city, records) = setup();
        let base = evaluate_intervention(city, &records, Intervention::None).unwrap();
        let sub = evaluate_intervention(
            city,
            &records,
            Intervention::LowIncomeSubsidy { discount_usd: 30.0 },
        )
        .unwrap();
        assert!(
            sub.gap_points() < base.gap_points(),
            "subsidy gap {} vs baseline {}",
            sub.gap_points(),
            base.gap_points()
        );
        assert!(sub.low_income_premium_frac > base.low_income_premium_frac);
    }

    #[test]
    fn fiber_buildout_closes_the_gap_entirely() {
        let (city, records) = setup();
        let base = evaluate_intervention(city, &records, Intervention::None).unwrap();
        let built = evaluate_intervention(city, &records, Intervention::FiberBuildout).unwrap();
        assert!(
            built.gap_points() <= 1.0,
            "buildout gap {} points",
            built.gap_points()
        );
        assert!(built.low_income_premium_frac >= base.low_income_premium_frac);
    }

    #[test]
    fn rate_cap_helps_everyone_without_reversing_the_gap_sign() {
        let (city, records) = setup();
        let base = evaluate_intervention(city, &records, Intervention::None).unwrap();
        let capped = evaluate_intervention(
            city,
            &records,
            Intervention::RateCap {
                max_price_usd: 30.0,
            },
        )
        .unwrap();
        assert!(capped.low_income_premium_frac >= base.low_income_premium_frac);
        assert!(capped.high_income_premium_frac >= base.high_income_premium_frac);
    }

    #[test]
    fn sparse_data_is_none() {
        let (city, records) = setup();
        let few: Vec<PlanRecord> = records.into_iter().take(5).collect();
        assert!(evaluate_intervention(city, &few, Intervention::None).is_none());
    }
}
