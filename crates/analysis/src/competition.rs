//! §5.4 — the impact of competition on cable carriage values.
//!
//! Every block group a cable ISP serves is classified, from scraped data
//! alone, as a cable monopoly, cable–DSL duopoly or cable–fiber duopoly:
//! the rival is the city's DSL/fiber ISP, its presence is "it returned
//! plans in this block group", and its technology is read off the plans'
//! shape (fiber-grade upload speeds). The paper's two one-tailed
//! Kolmogorov–Smirnov tests then ask whether the cable ISP's carriage
//! values differ between modes.

use bbsim_dataset::BlockGroupRow;
use bbsim_isp::Isp;
use bbsim_stats::{ks_one_tailed, median, KsOutcome, Tail};
use std::collections::HashMap;

/// Operational mode of a cable ISP in one block group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompetitionMode {
    CableMonopoly,
    CableDslDuopoly,
    CableFiberDuopoly,
}

/// Carriage values above this are ACP-subsidized artifacts; the paper
/// prunes this long tail in Fig. 8 before testing.
pub const ACP_PRUNE_CV: f64 = 29.0;

/// Classifies each of the cable ISP's block groups by competition mode.
///
/// Returns `(bg_index, mode, cable median cv)` per served block group.
pub fn classify_modes(
    rows: &[BlockGroupRow],
    cable: Isp,
    rival: Option<Isp>,
) -> Vec<(usize, CompetitionMode, f64)> {
    assert!(cable.is_cable(), "classification is for cable ISPs");
    // Rival technology per block group, from observable plan shape.
    let mut rival_fiber: HashMap<usize, bool> = HashMap::new();
    if let Some(rv) = rival {
        for r in rows.iter().filter(|r| r.isp == rv) {
            rival_fiber.insert(r.bg_index, r.fiber_share >= 0.5);
        }
    }
    rows.iter()
        .filter(|r| r.isp == cable)
        .map(|r| {
            let mode = match rival_fiber.get(&r.bg_index) {
                None => CompetitionMode::CableMonopoly,
                Some(false) => CompetitionMode::CableDslDuopoly,
                Some(true) => CompetitionMode::CableFiberDuopoly,
            };
            (r.bg_index, mode, r.median_cv)
        })
        .collect()
}

/// One mode's sample and the two one-tailed KS tests against the monopoly
/// baseline.
#[derive(Debug, Clone)]
pub struct ModeComparison {
    pub mode: CompetitionMode,
    pub n: usize,
    pub median_cv: f64,
    /// H1: duopoly cv stochastically greater than monopoly cv.
    pub h1_duopoly_greater: KsOutcome,
    /// H2: monopoly cv stochastically greater than duopoly cv.
    pub h2_monopoly_greater: KsOutcome,
}

/// The §5.4 analysis result for one (city, cable ISP).
#[derive(Debug, Clone)]
pub struct CompetitionReport {
    pub cable: Isp,
    pub n_monopoly: usize,
    pub monopoly_median_cv: f64,
    /// Comparisons for the duopoly modes present in the city.
    pub comparisons: Vec<ModeComparison>,
}

/// Runs the paper's §5.4 hypothesis tests for one city's cable ISP.
///
/// ACP-tail carriage values are pruned (the paper does the same for
/// Fig. 8). Returns `None` when there is no monopoly baseline or no
/// duopoly sample to compare.
pub fn test_competition(
    rows: &[BlockGroupRow],
    cable: Isp,
    rival: Option<Isp>,
) -> Option<CompetitionReport> {
    let classified = classify_modes(rows, cable, rival);
    let sample = |mode: CompetitionMode| -> Vec<f64> {
        classified
            .iter()
            .filter(|&&(_, m, cv)| m == mode && cv <= ACP_PRUNE_CV)
            .map(|&(_, _, cv)| cv)
            .collect()
    };

    let monopoly = sample(CompetitionMode::CableMonopoly);
    if monopoly.len() < 5 {
        return None;
    }

    let mut comparisons = Vec::new();
    for mode in [
        CompetitionMode::CableDslDuopoly,
        CompetitionMode::CableFiberDuopoly,
    ] {
        let duopoly = sample(mode);
        if duopoly.len() < 5 {
            continue;
        }
        comparisons.push(ModeComparison {
            mode,
            n: duopoly.len(),
            median_cv: median(&duopoly).expect("non-empty"),
            h1_duopoly_greater: ks_one_tailed(&monopoly, &duopoly, Tail::Greater),
            h2_monopoly_greater: ks_one_tailed(&monopoly, &duopoly, Tail::Less),
        });
    }
    if comparisons.is_empty() {
        return None;
    }
    Some(CompetitionReport {
        cable,
        n_monopoly: monopoly.len(),
        monopoly_median_cv: median(&monopoly).expect("non-empty"),
        comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_geo::BlockGroupId;

    fn row(isp: Isp, bg: usize, cv: f64, fiber_share: f64) -> BlockGroupRow {
        BlockGroupRow {
            city: "X".to_string(),
            isp,
            block_group: BlockGroupId::new(22, 71, 1, 1),
            bg_index: bg,
            median_cv: cv,
            cov: Some(0.0),
            n_addresses: 30,
            fiber_share,
        }
    }

    /// A synthetic city reproducing the paper's structure: monopoly and
    /// DSL-duopoly groups at cv ~11.4, fiber-duopoly groups at ~14.6.
    fn synthetic_rows() -> Vec<BlockGroupRow> {
        let mut rows = Vec::new();
        for bg in 0..40 {
            rows.push(row(Isp::Cox, bg, 11.3 + (bg % 5) as f64 * 0.05, 0.0));
        }
        for bg in 40..80 {
            rows.push(row(Isp::Cox, bg, 11.3 + (bg % 5) as f64 * 0.05, 0.0));
            rows.push(row(Isp::Att, bg, 0.4, 0.0)); // DSL rival
        }
        for bg in 80..120 {
            rows.push(row(Isp::Cox, bg, 14.5 + (bg % 5) as f64 * 0.05, 0.0));
            rows.push(row(Isp::Att, bg, 12.5, 0.9)); // fiber rival
        }
        rows
    }

    #[test]
    fn modes_are_classified_from_rival_presence_and_tech() {
        let rows = synthetic_rows();
        let modes = classify_modes(&rows, Isp::Cox, Some(Isp::Att));
        assert_eq!(modes.len(), 120);
        let count = |m: CompetitionMode| modes.iter().filter(|&&(_, x, _)| x == m).count();
        assert_eq!(count(CompetitionMode::CableMonopoly), 40);
        assert_eq!(count(CompetitionMode::CableDslDuopoly), 40);
        assert_eq!(count(CompetitionMode::CableFiberDuopoly), 40);
    }

    #[test]
    fn fiber_duopoly_rejects_h0_in_favor_of_h1() {
        let rows = synthetic_rows();
        let report = test_competition(&rows, Isp::Cox, Some(Isp::Att)).unwrap();
        let fiber = report
            .comparisons
            .iter()
            .find(|c| c.mode == CompetitionMode::CableFiberDuopoly)
            .unwrap();
        assert!(
            fiber.h1_duopoly_greater.rejects_at(0.05),
            "H1 p = {}",
            fiber.h1_duopoly_greater.p_value
        );
        assert!(!fiber.h2_monopoly_greater.rejects_at(0.05));
        assert!(
            fiber.h1_duopoly_greater.statistic > 0.5,
            "D = {}",
            fiber.h1_duopoly_greater.statistic
        );
        // ~30% median improvement.
        let boost = fiber.median_cv / report.monopoly_median_cv;
        assert!((1.2..1.4).contains(&boost), "boost {boost}");
    }

    #[test]
    fn dsl_duopoly_fails_to_reject_h0() {
        let rows = synthetic_rows();
        let report = test_competition(&rows, Isp::Cox, Some(Isp::Att)).unwrap();
        let dsl = report
            .comparisons
            .iter()
            .find(|c| c.mode == CompetitionMode::CableDslDuopoly)
            .unwrap();
        assert!(
            !dsl.h1_duopoly_greater.rejects_at(0.05),
            "p = {}",
            dsl.h1_duopoly_greater.p_value
        );
        assert!(!dsl.h2_monopoly_greater.rejects_at(0.05));
    }

    #[test]
    fn acp_tail_is_pruned() {
        let mut rows = synthetic_rows();
        // Add a few subsidized outliers to the monopoly set.
        for bg in 200..205 {
            rows.push(row(Isp::Cox, bg, 50.0, 0.0));
        }
        let report = test_competition(&rows, Isp::Cox, Some(Isp::Att)).unwrap();
        assert_eq!(
            report.n_monopoly, 40,
            "outliers above {ACP_PRUNE_CV} excluded"
        );
    }

    #[test]
    fn no_rival_means_all_monopoly_and_no_report() {
        let rows: Vec<BlockGroupRow> = (0..30).map(|bg| row(Isp::Cox, bg, 11.0, 0.0)).collect();
        let modes = classify_modes(&rows, Isp::Cox, None);
        assert!(modes
            .iter()
            .all(|&(_, m, _)| m == CompetitionMode::CableMonopoly));
        assert!(test_competition(&rows, Isp::Cox, None).is_none());
    }

    #[test]
    #[should_panic(expected = "cable")]
    fn classifying_a_dsl_isp_panics() {
        classify_modes(&[], Isp::Att, None);
    }
}
