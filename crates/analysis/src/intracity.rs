//! §5.3 — intra-city spatial structure.
//!
//! Moran's I over block-group carriage values quantifies the clustering the
//! maps show (Table 3); the composite ISP-pair view (best carriage value
//! from either provider per block group) reproduces Fig. 7c's observation
//! that the dominant cable ISP sets the effective best deal almost
//! everywhere.
//!
//! Geometry is public: the city grid is rebuilt from the census registry,
//! and weights cover only the block groups with scraped data (ISP coverage
//! is partial), restricted to the subgraph they induce.

use bbsim_census::CityProfile;
use bbsim_dataset::BlockGroupRow;
use bbsim_geo::CityGrid;
use bbsim_isp::Isp;
use bbsim_stats::{morans_i, MoranResult};

/// Aligns one ISP's block-group medians onto grid cells.
/// Returns a cell-indexed vector with `None` where the ISP has no data.
pub fn cell_aligned_cvs(grid: &CityGrid, rows: &[BlockGroupRow], isp: Isp) -> Vec<Option<f64>> {
    let mut out = vec![None; grid.len()];
    for r in rows.iter().filter(|r| r.isp == isp) {
        if r.bg_index < out.len() {
            out[r.bg_index] = Some(r.median_cv);
        }
    }
    out
}

/// The composite (ISP-pair) field: the best carriage value offered by any
/// of `isps` per block group (Fig. 7c).
pub fn composite_best_cv(
    grid: &CityGrid,
    rows: &[BlockGroupRow],
    isps: &[Isp],
) -> Vec<Option<f64>> {
    let mut out = vec![None; grid.len()];
    for r in rows.iter().filter(|r| isps.contains(&r.isp)) {
        if r.bg_index < out.len() {
            let cell = &mut out[r.bg_index];
            *cell = Some(cell.map_or(r.median_cv, |c: f64| c.max(r.median_cv)));
        }
    }
    out
}

/// Moran's I over the covered subgraph of a partially observed field.
///
/// Builds rook weights among only the cells with values, row-standardizes
/// them, and runs the statistic. `None` when fewer than 10 covered cells or
/// the field is constant (e.g. Xfinity: identical plans everywhere — the
/// paper reports its Moran's I as 0).
pub fn morans_i_partial(grid: &CityGrid, field: &[Option<f64>]) -> Option<MoranResult> {
    assert_eq!(grid.len(), field.len());
    let covered: Vec<usize> = (0..grid.len()).filter(|&i| field[i].is_some()).collect();
    if covered.len() < 10 {
        return None;
    }
    let mut dense_index = vec![usize::MAX; grid.len()];
    for (k, &i) in covered.iter().enumerate() {
        dense_index[i] = k;
    }
    let values: Vec<f64> = covered
        .iter()
        .map(|&i| field[i].expect("covered"))
        .collect();
    let weights: Vec<Vec<(usize, f64)>> = covered
        .iter()
        .map(|&i| {
            let ns: Vec<usize> = grid
                .rook_neighbors(i)
                .into_iter()
                .filter(|&j| dense_index[j] != usize::MAX)
                .map(|j| dense_index[j])
                .collect();
            if ns.is_empty() {
                Vec::new()
            } else {
                let w = 1.0 / ns.len() as f64;
                ns.into_iter().map(|j| (j, w)).collect()
            }
        })
        .collect();
    morans_i(&values, &weights)
}

/// Moran's I of one ISP's carriage values in a city (a Table-3 cell).
pub fn morans_i_for_isp(
    city: &CityProfile,
    rows: &[BlockGroupRow],
    isp: Isp,
) -> Option<MoranResult> {
    let grid = city.grid();
    let field = cell_aligned_cvs(&grid, rows, isp);
    morans_i_partial(&grid, &field)
}

/// Moran's I of the composite best-cv field of an ISP pair (Table 3's
/// "ISP pairs" block).
pub fn morans_i_for_pair(
    city: &CityProfile,
    rows: &[BlockGroupRow],
    pair: (Isp, Isp),
) -> Option<MoranResult> {
    let grid = city.grid();
    let field = composite_best_cv(&grid, rows, &[pair.0, pair.1]);
    morans_i_partial(&grid, &field)
}

/// Renders a partially observed field as an ASCII map (the text stand-in
/// for Fig. 7): cells are bucketed into five equal-width value bands
/// `1`–`5`, `.` = no data, space = outside the city footprint.
pub fn ascii_map(grid: &CityGrid, field: &[Option<f64>]) -> String {
    assert_eq!(grid.len(), field.len());
    let coords: Vec<(i32, i32)> = (0..grid.len()).map(|i| grid.coord(i)).collect();
    let min_x = coords.iter().map(|c| c.0).min().expect("non-empty grid");
    let max_x = coords.iter().map(|c| c.0).max().expect("non-empty grid");
    let min_y = coords.iter().map(|c| c.1).min().expect("non-empty grid");
    let max_y = coords.iter().map(|c| c.1).max().expect("non-empty grid");

    // Five equal-width value bands between the observed min and max.
    let observed: Vec<f64> = field.iter().flatten().copied().collect();
    let lo = observed.iter().cloned().fold(f64::MAX, f64::min);
    let hi = observed.iter().cloned().fold(f64::MIN, f64::max);
    let bucket = |v: f64| -> char {
        if observed.is_empty() || hi <= lo {
            return '3'; // constant field: middle band
        }
        let q = (((v - lo) / (hi - lo)) * 5.0).floor().clamp(0.0, 4.0) as u8;
        (b'1' + q) as char
    };

    let mut cell_at = std::collections::HashMap::new();
    for (i, &(x, y)) in coords.iter().enumerate() {
        cell_at.insert((x, y), i);
    }

    let mut out = String::new();
    for y in (min_y..=max_y).rev() {
        for x in min_x..=max_x {
            let ch = match cell_at.get(&(x, y)) {
                Some(&i) => match field[i] {
                    Some(v) => bucket(v),
                    None => '.',
                },
                None => ' ',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;
    use bbsim_geo::BlockGroupId;

    fn rows_clustered(city: &CityProfile, isp: Isp) -> Vec<BlockGroupRow> {
        // Left half of the grid low cv, right half high: strong clustering.
        let grid = city.grid();
        (0..grid.len())
            .map(|bg| {
                let (x, _) = grid.coord(bg);
                BlockGroupRow {
                    city: city.name.to_string(),
                    isp,
                    block_group: grid.id(bg),
                    bg_index: bg,
                    median_cv: if x < 0 { 2.0 } else { 12.0 },
                    cov: Some(0.0),
                    n_addresses: 30,
                    fiber_share: 0.0,
                }
            })
            .collect()
    }

    #[test]
    fn clustered_field_yields_high_morans_i() {
        let city = city_by_name("Billings").unwrap();
        let rows = rows_clustered(city, Isp::Spectrum);
        let r = morans_i_for_isp(city, &rows, Isp::Spectrum).unwrap();
        assert!(r.i > 0.6, "I = {}", r.i);
    }

    #[test]
    fn constant_field_is_undefined_like_xfinity() {
        let city = city_by_name("Billings").unwrap();
        let mut rows = rows_clustered(city, Isp::Spectrum);
        for r in &mut rows {
            r.median_cv = 15.0;
        }
        assert!(morans_i_for_isp(city, &rows, Isp::Spectrum).is_none());
    }

    #[test]
    fn partial_coverage_is_supported() {
        let city = city_by_name("Billings").unwrap();
        let mut rows = rows_clustered(city, Isp::Spectrum);
        rows.truncate(rows.len() / 2);
        let r = morans_i_for_isp(city, &rows, Isp::Spectrum);
        assert!(r.is_some());
    }

    #[test]
    fn too_few_cells_is_none() {
        let city = city_by_name("Billings").unwrap();
        let mut rows = rows_clustered(city, Isp::Spectrum);
        rows.truncate(5);
        assert!(morans_i_for_isp(city, &rows, Isp::Spectrum).is_none());
    }

    #[test]
    fn composite_takes_the_best_of_either_isp() {
        let grid = city_by_name("Billings").unwrap().grid();
        let mk = |isp: Isp, bg: usize, cv: f64| BlockGroupRow {
            city: "Billings".to_string(),
            isp,
            block_group: BlockGroupId::new(30, 111, 1, 1),
            bg_index: bg,
            median_cv: cv,
            cov: None,
            n_addresses: 1,
            fiber_share: 0.0,
        };
        let rows = vec![
            mk(Isp::CenturyLink, 0, 3.0),
            mk(Isp::Spectrum, 0, 12.0),
            mk(Isp::CenturyLink, 1, 14.5),
            mk(Isp::Spectrum, 1, 12.0),
            mk(Isp::Spectrum, 2, 12.0),
        ];
        let composite = composite_best_cv(&grid, &rows, &[Isp::CenturyLink, Isp::Spectrum]);
        assert_eq!(composite[0], Some(12.0));
        assert_eq!(composite[1], Some(14.5));
        assert_eq!(composite[2], Some(12.0));
        assert_eq!(composite[3], None);
    }

    #[test]
    fn ascii_map_has_one_row_per_lattice_row_and_quintile_chars() {
        let city = city_by_name("Billings").unwrap();
        let grid = city.grid();
        let rows = rows_clustered(city, Isp::Spectrum);
        let field = cell_aligned_cvs(&grid, &rows, Isp::Spectrum);
        let map = ascii_map(&grid, &field);
        assert!(map.lines().count() > 3);
        assert!(map.contains('1'));
        assert!(map.contains('5'));
        for ch in map.chars() {
            assert!(matches!(ch, '1'..='5' | '.' | ' ' | '\n'), "{ch:?}");
        }
    }

    #[test]
    fn cell_alignment_places_rows_at_their_bg_index() {
        let city = city_by_name("Billings").unwrap();
        let grid = city.grid();
        let rows = rows_clustered(city, Isp::Spectrum);
        let field = cell_aligned_cvs(&grid, &rows, Isp::Spectrum);
        assert_eq!(field[7], Some(rows[7].median_cv));
        // Absent ISP yields an empty field.
        let empty = cell_aligned_cvs(&grid, &rows, Isp::Cox);
        assert!(empty.iter().all(Option::is_none));
    }
}

/// Local Moran's I (LISA) over the covered subgraph of a partially observed
/// field: positive where a block group sits inside a patch of similar
/// carriage values, negative where it is a spatial outlier. Returns a
/// cell-aligned field (None where no data), for hotspot rendering next to
/// the Fig.-7 maps.
pub fn lisa_field(grid: &CityGrid, field: &[Option<f64>]) -> Option<Vec<Option<f64>>> {
    assert_eq!(grid.len(), field.len());
    let covered: Vec<usize> = (0..grid.len()).filter(|&i| field[i].is_some()).collect();
    if covered.len() < 10 {
        return None;
    }
    let mut dense_index = vec![usize::MAX; grid.len()];
    for (k, &i) in covered.iter().enumerate() {
        dense_index[i] = k;
    }
    let values: Vec<f64> = covered
        .iter()
        .map(|&i| field[i].expect("covered"))
        .collect();
    let weights: Vec<Vec<(usize, f64)>> = covered
        .iter()
        .map(|&i| {
            let ns: Vec<usize> = grid
                .rook_neighbors(i)
                .into_iter()
                .filter(|&j| dense_index[j] != usize::MAX)
                .map(|j| dense_index[j])
                .collect();
            if ns.is_empty() {
                Vec::new()
            } else {
                let w = 1.0 / ns.len() as f64;
                ns.into_iter().map(|j| (j, w)).collect()
            }
        })
        .collect();
    let local = bbsim_stats::local_morans_i(&values, &weights)?;
    let mut out = vec![None; grid.len()];
    for (k, &i) in covered.iter().enumerate() {
        out[i] = Some(local[k]);
    }
    Some(out)
}

/// Renders a LISA field as a hotspot map: `+` = significant positive local
/// association (inside a cluster), `-` = negative (spatial outlier),
/// `.` = weak/no association or no data, space = outside the footprint.
pub fn lisa_map(grid: &CityGrid, lisa: &[Option<f64>]) -> String {
    assert_eq!(grid.len(), lisa.len());
    let coords: Vec<(i32, i32)> = (0..grid.len()).map(|i| grid.coord(i)).collect();
    let min_x = coords.iter().map(|c| c.0).min().expect("non-empty grid");
    let max_x = coords.iter().map(|c| c.0).max().expect("non-empty grid");
    let min_y = coords.iter().map(|c| c.1).min().expect("non-empty grid");
    let max_y = coords.iter().map(|c| c.1).max().expect("non-empty grid");
    let mut cell_at = std::collections::HashMap::new();
    for (i, &(x, y)) in coords.iter().enumerate() {
        cell_at.insert((x, y), i);
    }
    let mut out = String::new();
    for y in (min_y..=max_y).rev() {
        for x in min_x..=max_x {
            let ch = match cell_at.get(&(x, y)) {
                Some(&i) => match lisa[i] {
                    Some(v) if v > 0.5 => '+',
                    Some(v) if v < -0.5 => '-',
                    Some(_) => '.',
                    None => '.',
                },
                None => ' ',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod lisa_tests {
    use super::*;
    use bbsim_census::city_by_name;

    #[test]
    fn clustered_field_yields_positive_interior_lisa() {
        let city = city_by_name("Billings").expect("study city");
        let grid = city.grid();
        // Left half low, right half high.
        let field: Vec<Option<f64>> = (0..grid.len())
            .map(|i| Some(if grid.coord(i).0 < 0 { 1.0 } else { 9.0 }))
            .collect();
        let lisa = lisa_field(&grid, &field).expect("defined");
        // Most cells sit inside one of the two patches: positive LISA.
        let positive = lisa.iter().flatten().filter(|&&v| v > 0.0).count();
        let total = lisa.iter().flatten().count();
        assert!(positive * 10 > total * 7, "{positive}/{total} positive");
        let map = lisa_map(&grid, &lisa);
        assert!(map.contains('+'));
    }

    #[test]
    fn constant_field_has_no_lisa() {
        let city = city_by_name("Billings").expect("study city");
        let grid = city.grid();
        let field: Vec<Option<f64>> = vec![Some(5.0); grid.len()];
        assert!(lisa_field(&grid, &field).is_none());
    }

    #[test]
    fn sparse_field_is_none_and_partial_is_aligned() {
        let city = city_by_name("Billings").expect("study city");
        let grid = city.grid();
        let mut field: Vec<Option<f64>> = vec![None; grid.len()];
        for (i, f) in field.iter_mut().enumerate().take(5) {
            *f = Some(i as f64);
        }
        assert!(lisa_field(&grid, &field).is_none());
        // Half-covered field: LISA defined exactly where data is.
        for (i, f) in field.iter_mut().enumerate().take(grid.len() / 2) {
            *f = Some((i % 7) as f64);
        }
        let lisa = lisa_field(&grid, &field).expect("defined");
        for i in 0..grid.len() {
            assert_eq!(lisa[i].is_some(), field[i].is_some(), "cell {i}");
        }
    }
}
