//! Parser robustness: CSV ingestion must reject malformed input with typed
//! errors, never panic, and always round-trip what it accepts.

use bbsim_dataset::csvio::{records_from_csv, records_to_csv, RECORDS_HEADER};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary text never panics the CSV parser.
    #[test]
    fn arbitrary_text_never_panics(text in "[ -~\\n,]{0,500}") {
        let _ = records_from_csv(&text);
    }

    /// Arbitrary *rows* under a valid header never panic, and accepted rows
    /// re-serialize to something the parser accepts again (idempotent
    /// ingestion).
    #[test]
    fn accepted_rows_roundtrip(rows in proptest::collection::vec("[ -~]{0,80}", 0..20)) {
        let mut csv = String::from(RECORDS_HEADER);
        csv.push('\n');
        for r in &rows {
            csv.push_str(r);
            csv.push('\n');
        }
        if let Ok(records) = records_from_csv(&csv) {
            let out = records_to_csv(&records, None);
            let reparsed = records_from_csv(&out).expect("own output must parse");
            prop_assert_eq!(reparsed, records);
        }
    }

    /// Well-formed generated rows always parse back exactly.
    #[test]
    fn generated_rows_always_parse(
        entries in proptest::collection::vec(
            (
                1u8..=99, 1u16..=999, 0u32..=999_999, 0u8..=9,  // geoid
                0usize..2000,                                     // bg index
                proptest::collection::vec((1.0f64..2000.0, 1.0f64..2000.0, 5.0f64..150.0), 0..5),
            ),
            0..30
        )
    ) {
        use bbsim_dataset::PlanRecord;
        use bbsim_geo::BlockGroupId;
        use bqt::ScrapedPlan;
        let records: Vec<PlanRecord> = entries
            .iter()
            .enumerate()
            .map(|(i, (st, co, tr, bg, idx, plans))| PlanRecord {
                city: "Fuzzville".to_string(),
                isp: bbsim_isp::ALL_ISPS[i % 7],
                address_tag: i as u64,
                block_group: BlockGroupId::new(*st, *co, *tr, *bg),
                bg_index: *idx,
                plans: plans
                    .iter()
                    .map(|&(d, u, p)| ScrapedPlan {
                        // Round to keep float text round-trips exact.
                        download_mbps: (d * 100.0).round() / 100.0,
                        upload_mbps: (u * 100.0).round() / 100.0,
                        price_usd: (p * 100.0).round() / 100.0,
                    })
                    .collect(),
            })
            .collect();
        let csv = records_to_csv(&records, None);
        let parsed = records_from_csv(&csv).expect("generated rows are valid");
        prop_assert_eq!(parsed, records);
    }
}
