//! Block-group aggregation (§5.1).
//!
//! The paper reports plans at block-group granularity: the group's carriage
//! value is the *median* of the best per-address carriage values, justified
//! by the low within-group coefficient of variation (Fig. 4). This module
//! computes both, plus the observable fiber share used by the income
//! analysis.

use crate::record::PlanRecord;
use bbsim_geo::BlockGroupId;
use bbsim_isp::Isp;
use bbsim_stats::{coefficient_of_variation, median};
use std::collections::BTreeMap;

/// Aggregated per-(ISP, block group) row.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockGroupRow {
    pub city: String,
    pub isp: Isp,
    pub block_group: BlockGroupId,
    pub bg_index: usize,
    /// Median of the best per-address carriage values.
    pub median_cv: f64,
    /// Coefficient of variation of best cv within the group (Fig. 4).
    pub cov: Option<f64>,
    /// Addresses with plans scraped in this group.
    pub n_addresses: usize,
    /// Fraction of addresses whose best plan looks fiber-fed.
    pub fiber_share: f64,
}

/// Aggregates per-address records into block-group rows.
///
/// Addresses with no plans (no-service) are excluded from carriage-value
/// statistics, matching the paper's treatment; groups with no served
/// addresses produce no row.
pub fn aggregate_block_groups(records: &[PlanRecord]) -> Vec<BlockGroupRow> {
    // Group by (isp, bg).
    let mut groups: BTreeMap<(Isp, u64), Vec<&PlanRecord>> = BTreeMap::new();
    for r in records {
        groups
            .entry((r.isp, r.block_group.as_u64()))
            .or_default()
            .push(r);
    }

    let mut rows = Vec::with_capacity(groups.len());
    for ((isp, _), recs) in groups {
        let cvs: Vec<f64> = recs.iter().filter_map(|r| r.best_cv()).collect();
        if cvs.is_empty() {
            continue;
        }
        let fiber = recs
            .iter()
            .filter(|r| r.best_plan_is_fiber() == Some(true))
            .count();
        let first = recs[0];
        rows.push(BlockGroupRow {
            city: first.city.clone(),
            isp,
            block_group: first.block_group,
            bg_index: first.bg_index,
            median_cv: median(&cvs).expect("cvs non-empty"),
            cov: coefficient_of_variation(&cvs),
            n_addresses: cvs.len(),
            fiber_share: fiber as f64 / cvs.len() as f64,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqt::ScrapedPlan;

    fn rec(isp: Isp, bg: u8, cv_price: f64, fiber: bool) -> PlanRecord {
        // One plan with download = cv_price * price so best_cv = cv_price.
        let price = 50.0;
        PlanRecord {
            city: "Testville".to_string(),
            isp,
            address_tag: 0,
            block_group: BlockGroupId::new(22, 71, 1, bg),
            bg_index: bg as usize,
            plans: vec![ScrapedPlan {
                download_mbps: cv_price * price,
                upload_mbps: if fiber { cv_price * price } else { 5.0 },
                price_usd: price,
            }],
        }
    }

    #[test]
    fn median_cv_per_group() {
        let records = vec![
            rec(Isp::Cox, 1, 10.0, false),
            rec(Isp::Cox, 1, 12.0, false),
            rec(Isp::Cox, 1, 14.0, false),
            rec(Isp::Cox, 2, 20.0, false),
        ];
        let rows = aggregate_block_groups(&records);
        assert_eq!(rows.len(), 2);
        let bg1 = rows.iter().find(|r| r.bg_index == 1).unwrap();
        assert_eq!(bg1.median_cv, 12.0);
        assert_eq!(bg1.n_addresses, 3);
        let bg2 = rows.iter().find(|r| r.bg_index == 2).unwrap();
        assert_eq!(bg2.median_cv, 20.0);
    }

    #[test]
    fn isps_aggregate_separately() {
        let records = vec![rec(Isp::Cox, 1, 10.0, false), rec(Isp::Att, 1, 5.0, true)];
        let rows = aggregate_block_groups(&records);
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|r| r.isp == Isp::Cox && r.median_cv == 10.0));
        assert!(rows.iter().any(|r| r.isp == Isp::Att && r.median_cv == 5.0));
    }

    #[test]
    fn no_service_addresses_are_excluded() {
        let mut empty = rec(Isp::Cox, 3, 10.0, false);
        empty.plans.clear();
        let records = vec![empty, rec(Isp::Cox, 3, 12.0, false)];
        let rows = aggregate_block_groups(&records);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].n_addresses, 1);
        assert_eq!(rows[0].median_cv, 12.0);
    }

    #[test]
    fn group_with_only_no_service_produces_no_row() {
        let mut empty = rec(Isp::Cox, 4, 10.0, false);
        empty.plans.clear();
        assert!(aggregate_block_groups(&[empty]).is_empty());
    }

    #[test]
    fn uniform_group_has_zero_cov() {
        let records = vec![rec(Isp::Cox, 1, 10.0, false), rec(Isp::Cox, 1, 10.0, false)];
        let rows = aggregate_block_groups(&records);
        assert_eq!(rows[0].cov, Some(0.0));
    }

    #[test]
    fn mixed_dsl_fiber_group_has_high_cov_and_partial_fiber_share() {
        // The AT&T Fig-4 long-tail case: DSL (cv 0.1) and fiber (cv 12.5)
        // in one group.
        let records = vec![
            rec(Isp::Att, 1, 0.1, false),
            rec(Isp::Att, 1, 12.5, true),
            rec(Isp::Att, 1, 12.5, true),
        ];
        let rows = aggregate_block_groups(&records);
        assert!(rows[0].cov.unwrap() > 0.5, "cov {:?}", rows[0].cov);
        assert!((rows[0].fiber_share - 2.0 / 3.0).abs() < 1e-12);
    }
}
