//! Public-release anonymization (§4.1).
//!
//! The paper's dataset ships with street addresses replaced by opaque
//! per-block-group identifiers, protecting the proprietary Zillow data. We
//! hash each address tag with a salt; the mapping is one-way but stable, so
//! rows for the same address correlate across ISPs without revealing the
//! address.

/// Salted 64-bit one-way hash of an address tag (splitmix-style finalizer).
pub fn anonymize_tag(tag: u64, salt: u64) -> u64 {
    let mut z = tag.wrapping_add(salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Formats an anonymized tag the way the public CSV does.
pub fn anonymize_token(tag: u64, salt: u64) -> String {
    format!("addr-{:016x}", anonymize_tag(tag, salt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_for_same_input() {
        assert_eq!(anonymize_tag(42, 7), anonymize_tag(42, 7));
        assert_eq!(anonymize_token(42, 7), anonymize_token(42, 7));
    }

    #[test]
    fn salt_changes_output() {
        assert_ne!(anonymize_tag(42, 7), anonymize_tag(42, 8));
    }

    #[test]
    fn no_collisions_over_a_large_tag_range() {
        let mut seen = std::collections::HashSet::new();
        for tag in 0..200_000u64 {
            assert!(seen.insert(anonymize_tag(tag, 1)), "collision at {tag}");
        }
    }

    #[test]
    fn output_does_not_leak_input_ordering() {
        // Consecutive tags must not hash to consecutive values.
        let a = anonymize_tag(1000, 3);
        let b = anonymize_tag(1001, 3);
        assert!(a.abs_diff(b) > 1_000_000);
    }

    #[test]
    fn token_format_is_fixed_width() {
        let t = anonymize_token(5, 9);
        assert!(t.starts_with("addr-"));
        assert_eq!(t.len(), 5 + 16);
    }
}
