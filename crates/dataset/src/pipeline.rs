//! End-to-end curation: world up, servers on, BQT through, records out.

use crate::record::PlanRecord;
use bbsim_address::matching::Measure;
use bbsim_bat::{templates, BatServer};
use bbsim_census::{city_seed, CityProfile};
use bbsim_isp::{CityWorld, Isp};
use bbsim_net::{Endpoint, FaultPlan, IpPool, RotationPolicy, SimDuration, Transport};
use bqt::{
    render_folded, render_prometheus, render_trace_json, BqtConfig, Campaign, Journal,
    JournalError, JsonlRecorder, Metrics, MonitorPolicy, Orchestrator, QueryJob, QueryOutcome,
    ResumeStats, RetryPolicy, ShardEnv, ShardPlan, ShardSpec, ShedPolicy,
};
use std::collections::HashMap;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use std::sync::Arc;

/// Knobs for a curation run.
///
/// Constructed via [`CurationOptions::paper_default`] /
/// [`CurationOptions::quick`] plus the consuming setters (mirroring the
/// `Campaign` builder style): fields stay readable everywhere, but
/// `#[non_exhaustive]` reserves the right to grow knobs without
/// breaking downstream literals.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurationOptions {
    /// Fraction of each block group's addresses to sample (paper: 0.10).
    pub sample_rate: f64,
    /// Floor of samples per block group (paper: 30).
    pub min_samples: usize,
    /// Optional cap per block group, for reduced-scale runs.
    pub max_samples_per_bg: Option<usize>,
    /// Concurrent worker containers (paper: 50–100).
    pub workers: usize,
    /// Addresses used to calibrate each ISP's settle pause.
    pub calibration_samples: usize,
    /// Run seed (composes with the city seed).
    pub seed: u64,
    /// Suggestion-matching measure (the matcher ablation's knob).
    pub measure: Measure,
    /// World epoch in months (0 = the study's first snapshot); drives the
    /// §4.3 staleness experiment.
    pub epoch: u32,
    /// Job-level retry policy handed to the orchestrator. `None` keeps the
    /// paper's one-shot semantics; chaos runs set it to recover hit rate
    /// under injected faults.
    pub retry: Option<RetryPolicy>,
    /// Watchdog deadline for hung sessions (see [`Orchestrator::watchdog`]).
    pub watchdog: SimDuration,
    /// Adaptive load shedding for the worker pool; `None` keeps it fixed.
    pub shed: Option<ShedPolicy>,
    /// Template-drift watch as `(window, threshold)` per the arguments of
    /// [`bqt::DriftMonitor::new`]; `None` trusts the bootstrapped
    /// templates for the whole run. Armed runs quarantine and re-bootstrap
    /// endpoints whose markup drifts (see [`bqt::drift`]).
    pub drift: Option<(usize, f64)>,
    /// OS threads for journaled (sharded) curation. Purely a scheduling
    /// knob: every artifact is byte-identical for every value (see
    /// [`bqt::shard`]). Ignored by journal-less curation, which stays on
    /// one thread over a single shared transport.
    pub threads: usize,
}

impl CurationOptions {
    /// The paper's full methodology.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            sample_rate: 0.10,
            min_samples: 30,
            max_samples_per_bg: None,
            workers: 64,
            calibration_samples: 20,
            seed,
            measure: Measure::TokenSort,
            epoch: 0,
            retry: None,
            watchdog: SimDuration::from_secs(300),
            shed: None,
            drift: None,
            threads: 1,
        }
    }

    /// A reduced-scale configuration for tests and quick demos: the same
    /// pipeline with fewer samples per block group.
    pub fn quick(seed: u64) -> Self {
        Self {
            sample_rate: 0.10,
            min_samples: 6,
            max_samples_per_bg: Some(6),
            workers: 32,
            calibration_samples: 10,
            seed,
            measure: Measure::TokenSort,
            epoch: 0,
            retry: None,
            watchdog: SimDuration::from_secs(300),
            shed: None,
            drift: None,
            threads: 1,
        }
    }

    /// The same options with a retry policy attached.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Overrides the per-block-group sampling fraction.
    pub fn sample_rate(mut self, rate: f64) -> Self {
        self.sample_rate = rate;
        self
    }

    /// Overrides the per-block-group sample floor.
    pub fn min_samples(mut self, n: usize) -> Self {
        self.min_samples = n;
        self
    }

    /// Overrides the per-block-group sample cap.
    pub fn max_samples_per_bg(mut self, cap: Option<usize>) -> Self {
        self.max_samples_per_bg = cap;
        self
    }

    /// Overrides the worker-container count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Overrides the settle-pause calibration sample count.
    pub fn calibration_samples(mut self, n: usize) -> Self {
        self.calibration_samples = n;
        self
    }

    /// Overrides the suggestion-matching measure.
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }

    /// Overrides the world epoch (months since the first snapshot).
    pub fn epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// Overrides the hung-session watchdog deadline.
    pub fn watchdog(mut self, deadline: SimDuration) -> Self {
        self.watchdog = deadline;
        self
    }

    /// Attaches an adaptive load-shedding policy.
    pub fn shed(mut self, policy: ShedPolicy) -> Self {
        self.shed = Some(policy);
        self
    }

    /// Arms the template-drift watch as `(window, threshold)`.
    pub fn drift(mut self, window: usize, threshold: f64) -> Self {
        self.drift = Some((window, threshold));
        self
    }

    /// Overrides the OS-thread count for journaled (sharded) curation.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// The curated dataset for one city.
pub struct CityDataset {
    pub city: &'static CityProfile,
    /// Per-address scraped rows (hits only; misses appear in metrics).
    pub records: Vec<PlanRecord>,
    /// Per-ISP outcome counters (Fig. 2 inputs).
    pub per_isp_metrics: Vec<(Isp, Metrics)>,
    /// Per-ISP calibrated settle pauses.
    pub per_isp_pause: Vec<(Isp, SimDuration)>,
}

impl CityDataset {
    /// Records for one ISP.
    pub fn records_for(&self, isp: Isp) -> impl Iterator<Item = &PlanRecord> {
        self.records.iter().filter(move |r| r.isp == isp)
    }

    /// Metrics for one ISP, if it was curated here.
    pub fn metrics_for(&self, isp: Isp) -> Option<&Metrics> {
        self.per_isp_metrics
            .iter()
            .find(|(i, _)| *i == isp)
            .map(|(_, m)| m)
    }
}

/// Curates one city: the paper's §4.1 methodology over the simulated web.
pub fn curate_city(city: &'static CityProfile, opts: &CurationOptions) -> CityDataset {
    curate_city_with_faults(city, opts, None)
}

/// [`curate_city`] over a degraded network: the fault `plan`, if any, is
/// attached to the transport before the BAT fleet comes up, so every
/// scheduled timeout, reset, storm or brownout hits the run's virtual
/// timeline. Used by the chaos tests and the `repro chaos` experiment.
pub fn curate_city_with_faults(
    city: &'static CityProfile,
    opts: &CurationOptions,
    plan: Option<FaultPlan>,
) -> CityDataset {
    let Ok((dataset, _)) = curate_city_inner(city, opts, plan, None) else {
        // lint:allow(T2): no journal is configured, so journal errors are unconstructible
        unreachable!("journal-less curation cannot hit journal errors")
    };
    dataset
}

/// Crash-recoverable curation: like [`curate_city_with_faults`], but the
/// transport is hermetic and every ISP's campaign is journaled to
/// `<journal_dir>/<isp-slug>.journal`. Re-running after a crash replays
/// the journaled attempts and scrapes only the remainder; the returned
/// [`ResumeStats`] (summed over ISPs) say how much the journals saved.
///
/// The campaign directory also gets one `events.jsonl` telemetry log
/// covering every ISP's campaign in order, restricted to replay-stable
/// events so a resumed run rewrites the identical log.
///
/// The fault `plan`, if any, should itself be hermetic
/// ([`FaultPlan::hermetic`]) or resumed runs will see different faults
/// than the original.
pub fn curate_city_journaled(
    city: &'static CityProfile,
    opts: &CurationOptions,
    plan: Option<FaultPlan>,
    journal_dir: &Path,
) -> Result<(CityDataset, ResumeStats), JournalError> {
    std::fs::create_dir_all(journal_dir).map_err(|e| JournalError::Io(e.to_string()))?;
    curate_city_inner(city, opts, plan, Some(journal_dir))
}

fn curate_city_inner(
    city: &'static CityProfile,
    opts: &CurationOptions,
    plan: Option<FaultPlan>,
    journal_dir: Option<&Path>,
) -> Result<(CityDataset, ResumeStats), JournalError> {
    assert!(opts.sample_rate > 0.0 && opts.sample_rate <= 1.0);
    assert!(opts.workers >= 1);

    let world = Arc::new(CityWorld::build_at(city, opts.epoch));
    let run_seed = city_seed(city.name) ^ opts.seed.rotate_left(16) ^ ((opts.epoch as u64) << 1);
    let sample_seed = sample_seed(city, opts);

    if let Some(dir) = journal_dir {
        return curate_city_sharded(city, opts, plan, dir, &world, run_seed);
    }

    let mut transport = Transport::new(run_seed);
    if let Some(plan) = plan {
        transport.set_fault_plan(plan);
    }

    // Stand the BAT fleet up.
    for isp in world.isps() {
        let server = BatServer::new(isp, world.clone());
        let net = server.profile().network_latency;
        transport.register(isp.slug(), Endpoint::new(Box::new(server), net));
    }

    let mut pool = IpPool::residential(256, RotationPolicy::RoundRobin, run_seed);
    let mut records = Vec::new();
    let mut per_isp_metrics = Vec::new();
    let mut per_isp_pause = Vec::new();

    for isp in world.isps() {
        let src = pool.next();
        let (pause, config) = calibrate_isp(&world, opts, &mut transport, isp, src, run_seed);
        per_isp_pause.push((isp, pause));
        let (jobs, tag_to_addr) = sample_jobs(&world, opts, isp, sample_seed);

        // Scrape.
        let Ok(outcome) = Campaign::from_orchestrator(isp_orchestrator(opts, isp, run_seed))
            .config(config)
            .run(&mut transport, &jobs, &mut pool)
        else {
            // lint:allow(T2): no journal is configured, so journal errors are unconstructible
            unreachable!("journal-less runs cannot hit journal errors")
        };
        let report = outcome.report();

        land_records(
            &mut records,
            city,
            &world,
            isp,
            &report.records,
            &tag_to_addr,
        );
        per_isp_metrics.push((isp, report.metrics));
    }

    Ok((
        CityDataset {
            city,
            records,
            per_isp_metrics,
            per_isp_pause,
        },
        ResumeStats::default(),
    ))
}

/// Journaled curation, sharded per ISP: calibration runs serially upfront
/// (it consumes the shared pool's cursor), then every ISP's campaign
/// becomes one shard with its own hermetic environment, executed on up to
/// `opts.threads` OS threads and merged back into `(at, seq)` order. The
/// merged stream feeds one `events.jsonl`; `health.prom` and
/// `profile.folded` render the shard health sections in ISP order — all
/// three byte-identical for every thread count, and across crash+resume.
fn curate_city_sharded(
    city: &'static CityProfile,
    opts: &CurationOptions,
    plan: Option<FaultPlan>,
    dir: &Path,
    world: &Arc<CityWorld>,
    run_seed: u64,
) -> Result<(CityDataset, ResumeStats), JournalError> {
    // The calibration transport mirrors what each shard will rebuild: the
    // hermetic transport's draws are keyed by (seed, endpoint, ip, time),
    // so per-shard copies answer exactly like this shared one.
    let mut transport = Transport::hermetic(run_seed);
    if let Some(plan) = plan.clone() {
        transport.set_fault_plan(plan);
    }
    for isp in world.isps() {
        let server = BatServer::new(isp, world.clone());
        let net = server.profile().network_latency;
        transport.register(isp.slug(), Endpoint::new(Box::new(server), net));
    }
    let mut pool = IpPool::residential(256, RotationPolicy::RoundRobin, run_seed);

    let mut per_isp_pause = Vec::new();
    let mut specs = Vec::new();
    let mut tag_maps: Vec<HashMap<u64, u32>> = Vec::new();
    let isps = world.isps();
    for (i, &isp) in isps.iter().enumerate() {
        let src = pool.next();
        let (pause, config) = calibrate_isp(world, opts, &mut transport, isp, src, run_seed);
        per_isp_pause.push((isp, pause));
        let (jobs, tag_to_addr) = sample_jobs(world, opts, isp, sample_seed(city, opts));
        tag_maps.push(tag_to_addr);
        specs.push(ShardSpec {
            id: i as u32,
            label: isp.slug().to_string(),
            // The same per-ISP seed the sequential path always used, so a
            // shard's stream (and journal) is identical to the campaign it
            // replaces.
            seed: run_seed ^ (isp.column() as u64),
            config: Some(config),
            jobs,
        });
    }
    let shard_plan = ShardPlan::new(specs);

    // Each shard gets a private copy of the fleet: fresh hermetic
    // transport (same seed — draws are position-independent), fresh pool
    // (journaled attempts assign IPs by key, never by cursor), and its own
    // journal segment.
    let fleet = world.clone();
    let make_env = move |spec: &ShardSpec| -> Result<ShardEnv, JournalError> {
        let mut transport = Transport::hermetic(run_seed);
        if let Some(plan) = plan.clone() {
            transport.set_fault_plan(plan);
        }
        for isp in fleet.isps() {
            let server = BatServer::new(isp, fleet.clone());
            let net = server.profile().network_latency;
            transport.register(isp.slug(), Endpoint::new(Box::new(server), net));
        }
        let journal = Journal::open(&dir.join(format!("{}.journal", spec.label)))?;
        Ok(ShardEnv {
            transport,
            pool: IpPool::residential(256, RotationPolicy::RoundRobin, run_seed),
            journal: Some(journal),
        })
    };

    // One telemetry log for the whole campaign directory, fed the merged
    // stream. Stable events only: a resume must rewrite the same bytes.
    let file =
        File::create(dir.join("events.jsonl")).map_err(|e| JournalError::Io(e.to_string()))?;
    let mut event_log = JsonlRecorder::stable(BufWriter::new(file));

    // The monitor's stable profile and exposition stay byte-identical
    // across resume; `profile_fetches` would break that, so journaled
    // curation never enables it.
    let outcome = Campaign::from_orchestrator(isp_orchestrator(opts, isps[0], run_seed))
        .monitor(MonitorPolicy::paper_default())
        .threads(opts.threads)
        .recorder(&mut event_log)
        .run_sharded(&shard_plan, &make_env)?;

    // Beside `events.jsonl`, the campaign directory gets the monitor's
    // exposition and profile — both replay-stable, so a resumed run
    // rewrites identical bytes.
    let sections = outcome.health_sections();
    std::fs::write(dir.join("health.prom"), render_prometheus(&sections))
        .map_err(|e| JournalError::Io(e.to_string()))?;
    std::fs::write(dir.join("profile.folded"), render_folded(&sections))
        .map_err(|e| JournalError::Io(e.to_string()))?;
    std::fs::write(dir.join("trace.json"), render_trace_json(&sections))
        .map_err(|e| JournalError::Io(e.to_string()))?;
    drop(sections);

    let resume = outcome.resume();
    let mut records = Vec::new();
    let mut per_isp_metrics = Vec::new();
    for (run, (&isp, tag_to_addr)) in outcome.shards.into_iter().zip(isps.iter().zip(&tag_maps)) {
        let Some(report) = run.report else {
            // lint:allow(T2): pipeline campaigns never set a crash point
            unreachable!("pipeline campaigns never set a crash point")
        };
        land_records(&mut records, city, world, isp, &report.records, tag_to_addr);
        per_isp_metrics.push((isp, report.metrics));
    }

    Ok((
        CityDataset {
            city,
            records,
            per_isp_metrics,
            per_isp_pause,
        },
        resume,
    ))
}

/// The epoch-free address-sampling seed: every wave of a longitudinal
/// study queries the same addresses (the world's plans evolve with the
/// epoch; the sample does not). At epoch 0 this equals the run seed, so
/// single-snapshot curation is unchanged.
fn sample_seed(city: &'static CityProfile, opts: &CurationOptions) -> u64 {
    city_seed(city.name) ^ opts.seed.rotate_left(16)
}

/// Calibrates one ISP's settle pause like the paper — max observed load
/// time over a bootstrap sample — and derives its workflow config.
fn calibrate_isp(
    world: &Arc<CityWorld>,
    opts: &CurationOptions,
    transport: &mut Transport,
    isp: Isp,
    src: bbsim_net::SimIp,
    run_seed: u64,
) -> (SimDuration, BqtConfig) {
    let calib_lines: Vec<String> = world
        .addresses()
        .records()
        .iter()
        .take(opts.calibration_samples.max(1))
        .map(|r| r.canonical.canonical_line())
        .collect();
    let pause = bqt::client::calibrate_pause(transport, isp.slug(), &calib_lines, src, run_seed);
    let mut config = BqtConfig::paper_default(pause);
    config.measure = opts.measure;
    (pause, config)
}

/// Samples addresses per block group (10%, floor 30, optional cap) into
/// one ISP's job list, plus the tag → address-id map for landing records.
///
/// The sampling seed deliberately excludes the epoch (see
/// [`sample_seed`]): a longitudinal study re-curates the *same* sample at
/// every wave, so the snapshot diff compares ISP decisions, not sampling
/// noise.
fn sample_jobs(
    world: &Arc<CityWorld>,
    opts: &CurationOptions,
    isp: Isp,
    sample_seed: u64,
) -> (Vec<QueryJob>, HashMap<u64, u32>) {
    let db = world.addresses();
    let mut jobs = Vec::new();
    let mut tag_to_addr: HashMap<u64, u32> = HashMap::new();
    for bg in 0..world.grid().len() {
        let mut sampled =
            db.sample_block_group(bg, opts.sample_rate, opts.min_samples, sample_seed);
        if let Some(cap) = opts.max_samples_per_bg {
            sampled.truncate(cap);
        }
        for rec in sampled {
            let tag = rec.id as u64;
            tag_to_addr.insert(tag, rec.id);
            jobs.push(QueryJob {
                endpoint: isp.slug().to_string(),
                dialect: templates::dialect_of(isp),
                input_line: rec.listing_line.clone(),
                tag,
            });
        }
    }
    (jobs, tag_to_addr)
}

/// The per-ISP orchestration parameters every curation mode shares.
fn isp_orchestrator(opts: &CurationOptions, isp: Isp, run_seed: u64) -> Orchestrator {
    Orchestrator {
        n_workers: opts.workers,
        politeness: SimDuration::from_secs(5),
        seed: run_seed ^ (isp.column() as u64),
        retry: opts.retry,
        watchdog: opts.watchdog,
        shed: opts.shed,
        drift: opts
            .drift
            .map(|(capacity, threshold)| bqt::DriftMonitor::new(capacity, threshold)),
    }
}

/// Lands one campaign's hits as dataset rows.
fn land_records(
    records: &mut Vec<PlanRecord>,
    city: &'static CityProfile,
    world: &Arc<CityWorld>,
    isp: Isp,
    qrecords: &[bqt::QueryRecord],
    tag_to_addr: &HashMap<u64, u32>,
) {
    for qrec in qrecords {
        let plans = match &qrec.outcome {
            QueryOutcome::Plans(p) => p.clone(),
            QueryOutcome::NoService => Vec::new(),
            _ => continue,
        };
        let addr_id = tag_to_addr[&qrec.tag];
        let addr = world.addresses().record(addr_id);
        records.push(PlanRecord {
            city: city.name.to_string(),
            isp,
            address_tag: qrec.tag,
            block_group: addr.block_group,
            bg_index: addr.bg_index,
            plans,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate_block_groups;
    use bbsim_census::city_by_name;

    fn billings() -> CityDataset {
        curate_city(
            city_by_name("Billings").unwrap(),
            &CurationOptions::quick(1),
        )
    }

    #[test]
    fn curates_both_isps_with_high_hit_rates() {
        let ds = billings();
        assert_eq!(ds.per_isp_metrics.len(), 2);
        for (isp, m) in &ds.per_isp_metrics {
            assert!(m.queried > 300, "{isp}: {m:?}");
            assert!(m.hit_rate() > 0.75, "{isp}: hit rate {}", m.hit_rate());
        }
    }

    #[test]
    fn records_cover_most_block_groups() {
        let ds = billings();
        let rows = aggregate_block_groups(&ds.records);
        let spectrum_rows = rows
            .iter()
            .filter(|r| r.isp == bbsim_isp::Isp::Spectrum)
            .count();
        // Spectrum (cable) serves ~all 98 groups; most should have data.
        assert!(spectrum_rows > 80, "only {spectrum_rows} Spectrum rows");
    }

    #[test]
    fn scraped_cvs_are_in_catalog_range() {
        let ds = billings();
        for r in &ds.records {
            if let Some(cv) = r.best_cv() {
                assert!(cv > 0.0 && cv < 60.0, "{}: cv {cv}", r.isp);
            }
        }
    }

    #[test]
    fn per_bg_sample_counts_respect_quick_cap() {
        let ds = billings();
        let mut per_bg: std::collections::HashMap<(bbsim_isp::Isp, usize), usize> =
            std::collections::HashMap::new();
        for r in &ds.records {
            *per_bg.entry((r.isp, r.bg_index)).or_default() += 1;
        }
        for (&(isp, bg), &n) in &per_bg {
            assert!(n <= 6, "{isp} bg {bg}: {n} records exceed the cap");
        }
    }

    #[test]
    fn curation_is_deterministic_in_seed() {
        let a = curate_city(
            city_by_name("Billings").unwrap(),
            &CurationOptions::quick(5),
        );
        let b = curate_city(
            city_by_name("Billings").unwrap(),
            &CurationOptions::quick(5),
        );
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x, y);
        }
        let c = curate_city(
            city_by_name("Billings").unwrap(),
            &CurationOptions::quick(6),
        );
        assert!(
            a.records.len() != c.records.len() || a.records != c.records,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn journaled_curation_resumes_without_rescraping() {
        let dir = std::env::temp_dir().join(format!("bqj-pipeline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = CurationOptions::quick(9);
        opts.max_samples_per_bg = Some(2);
        opts.min_samples = 2;
        let city = city_by_name("Billings").unwrap();

        let (first, r1) = curate_city_journaled(city, &opts, None, &dir).unwrap();
        assert_eq!(r1.replayed_attempts, 0);
        assert!(r1.live_attempts > 0);
        let log1 = std::fs::read(dir.join("events.jsonl")).unwrap();
        assert!(!log1.is_empty(), "campaign directory gets an event log");
        let prom1 = std::fs::read_to_string(dir.join("health.prom")).unwrap();
        assert!(
            prom1.contains("# TYPE bqt_attempts_total counter"),
            "exposition present"
        );
        let folded1 = std::fs::read_to_string(dir.join("profile.folded")).unwrap();
        assert!(!folded1.is_empty(), "folded profile present");
        let trace1 = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        assert!(
            trace1.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            "Perfetto export present"
        );
        assert!(trace1.contains("\"ph\":\"X\""), "complete events emitted");

        // Second run over the same journals: everything replays.
        let (second, r2) = curate_city_journaled(city, &opts, None, &dir).unwrap();
        assert_eq!(r2.live_attempts, 0, "complete journals need no scraping");
        assert_eq!(r2.replayed_attempts, r1.live_attempts);
        assert_eq!(first.records, second.records);
        assert_eq!(first.per_isp_metrics, second.per_isp_metrics);
        let log2 = std::fs::read(dir.join("events.jsonl")).unwrap();
        assert_eq!(log1, log2, "replayed curation rewrites the same log");
        let prom2 = std::fs::read_to_string(dir.join("health.prom")).unwrap();
        assert_eq!(prom1, prom2, "resume rewrites the identical exposition");
        let folded2 = std::fs::read_to_string(dir.join("profile.folded")).unwrap();
        assert_eq!(folded1, folded2, "resume rewrites the identical profile");
        let trace2 = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        assert_eq!(trace1, trace2, "resume rewrites the identical trace export");

        // A different campaign must refuse the same journals.
        let mut other = opts;
        other.seed = 10;
        match curate_city_journaled(city, &other, None, &dir) {
            Err(JournalError::ManifestMismatch { .. }) => {}
            Err(other) => panic!("expected manifest mismatch, got {other}"),
            Ok(_) => panic!("foreign journals must be refused"),
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn calibrated_pauses_track_isp_latency_ordering() {
        let ds = billings();
        // Billings has CenturyLink (slower) and Spectrum (slowest of all).
        let pause_of =
            |isp: bbsim_isp::Isp| ds.per_isp_pause.iter().find(|(i, _)| *i == isp).unwrap().1;
        assert!(
            pause_of(bbsim_isp::Isp::Spectrum) > pause_of(bbsim_isp::Isp::CenturyLink),
            "Spectrum pause should exceed CenturyLink's"
        );
    }
}
