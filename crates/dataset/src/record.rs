//! Dataset schemas.

use bbsim_geo::BlockGroupId;
use bbsim_isp::Isp;
use bqt::ScrapedPlan;

/// One scraped address: the row type of the measurement dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRecord {
    pub city: String,
    pub isp: Isp,
    /// Opaque per-address tag (the anonymized public release hashes this).
    pub address_tag: u64,
    /// Census block group of the address (public geometry).
    pub block_group: BlockGroupId,
    /// Cell index of the block group in the city grid.
    pub bg_index: usize,
    /// The plans scraped at this address (empty = authoritative
    /// no-service).
    pub plans: Vec<ScrapedPlan>,
}

impl PlanRecord {
    /// Best carriage value among scraped plans (the paper's per-address
    /// metric); `None` for a no-service address.
    pub fn best_cv(&self) -> Option<f64> {
        self.plans
            .iter()
            .map(ScrapedPlan::carriage_value)
            .fold(None, |acc, cv| Some(acc.map_or(cv, |a: f64| a.max(cv))))
    }

    /// Whether the best plan at this address looks fiber-fed (observable
    /// classification used by §5.5).
    pub fn best_plan_is_fiber(&self) -> Option<bool> {
        let best = self.plans.iter().max_by(|a, b| {
            a.carriage_value()
                .partial_cmp(&b.carriage_value())
                .expect("carriage values are finite")
        })?;
        Some(best.looks_like_fiber())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(plans: Vec<ScrapedPlan>) -> PlanRecord {
        PlanRecord {
            city: "Testville".to_string(),
            isp: Isp::Cox,
            address_tag: 7,
            block_group: BlockGroupId::new(22, 71, 1, 1),
            bg_index: 0,
            plans,
        }
    }

    #[test]
    fn best_cv_takes_the_maximum() {
        let r = record(vec![
            ScrapedPlan {
                download_mbps: 200.0,
                upload_mbps: 5.0,
                price_usd: 20.0,
            },
            ScrapedPlan {
                download_mbps: 1000.0,
                upload_mbps: 35.0,
                price_usd: 35.0,
            },
        ]);
        assert!((r.best_cv().unwrap() - 28.571).abs() < 0.01);
    }

    #[test]
    fn no_service_has_no_best_cv() {
        let r = record(vec![]);
        assert_eq!(r.best_cv(), None);
        assert_eq!(r.best_plan_is_fiber(), None);
    }

    #[test]
    fn fiber_classification_uses_best_plan() {
        let r = record(vec![
            ScrapedPlan {
                download_mbps: 6.0,
                upload_mbps: 1.0,
                price_usd: 55.0,
            },
            ScrapedPlan {
                download_mbps: 1000.0,
                upload_mbps: 1000.0,
                price_usd: 80.0,
            },
        ]);
        assert_eq!(r.best_plan_is_fiber(), Some(true));
        let dsl_only = record(vec![ScrapedPlan {
            download_mbps: 6.0,
            upload_mbps: 1.0,
            price_usd: 55.0,
        }]);
        assert_eq!(dsl_only.best_plan_is_fiber(), Some(false));
    }
}
