//! Per-city dataset artifacts: the curated record set of one city in
//! the release CSV schema, as the unit the serving layer loads.
//!
//! A [`CityArtifact`] is what one `curate_city` run leaves behind once
//! the campaign telemetry is stripped away: the city name and its
//! curated [`PlanRecord`]s. The text form reuses the release CSV codec
//! ([`records_to_csv`]/[`records_from_csv`]) unsalted, so an artifact
//! round-trips byte-identically and stays diffable next to the public
//! dataset files.

use crate::csvio::{records_from_csv, records_to_csv, CsvError};
use crate::pipeline::CityDataset;
use crate::record::PlanRecord;
use std::io;
use std::path::Path;

/// One city's curated record set, ready for the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct CityArtifact {
    pub city: String,
    pub records: Vec<PlanRecord>,
}

/// A defect while loading an artifact file.
#[derive(Debug)]
pub enum ArtifactError {
    Io(io::Error),
    Csv(CsvError),
    /// The artifact parsed but holds no records, so no city name is
    /// recoverable from it.
    Empty,
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io: {e}"),
            ArtifactError::Csv(e) => write!(f, "artifact csv: {e}"),
            ArtifactError::Empty => write!(f, "artifact holds no records"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<CsvError> for ArtifactError {
    fn from(e: CsvError) -> Self {
        ArtifactError::Csv(e)
    }
}

impl CityArtifact {
    /// Snapshots a curated dataset into its serving artifact.
    pub fn from_dataset(dataset: &CityDataset) -> CityArtifact {
        CityArtifact {
            city: dataset.city.name.to_string(),
            records: dataset.records.clone(),
        }
    }

    /// The artifact's text form: the release CSV schema, unsalted.
    pub fn to_text(&self) -> String {
        records_to_csv(&self.records, None)
    }

    /// Parses an artifact back from its text form; the city name comes
    /// from the records themselves.
    pub fn from_text(text: &str) -> Result<CityArtifact, ArtifactError> {
        let records = records_from_csv(text)?;
        let city = records
            .first()
            .map(|r| r.city.clone())
            .ok_or(ArtifactError::Empty)?;
        Ok(CityArtifact { city, records })
    }

    /// Writes the artifact to `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads an artifact from `path`.
    pub fn load(path: &Path) -> Result<CityArtifact, ArtifactError> {
        Self::from_text(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{curate_city, CurationOptions};

    #[test]
    fn artifacts_round_trip_through_text() {
        let city = bbsim_census::city_by_name("Fargo").expect("study city");
        let dataset = curate_city(city, &CurationOptions::quick(11));
        let artifact = CityArtifact::from_dataset(&dataset);
        assert_eq!(artifact.city, "Fargo");
        assert!(!artifact.records.is_empty());
        let text = artifact.to_text();
        let revived = CityArtifact::from_text(&text).expect("own text form");
        assert_eq!(revived, artifact);
        assert_eq!(revived.to_text(), text, "text form is a fixed point");
    }

    #[test]
    fn empty_text_is_rejected() {
        let err = CityArtifact::from_text("city,isp,address,geoid,bg_index,plans\n");
        assert!(matches!(err, Err(ArtifactError::Empty)));
    }
}
