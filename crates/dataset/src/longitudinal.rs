//! Longitudinal snapshots: what changed between two curations of a city.
//!
//! The paper scrapes each city once; a longitudinal study re-curates the
//! same sample at later epochs and asks what the ISPs changed — plans
//! introduced, plans withdrawn, tiers repriced, addresses gaining or
//! losing service. This module is the diff engine over two curated
//! snapshots: it matches addresses by `(isp, address_tag)`, matches plans
//! within an address by speed tier, and aggregates the churn per block
//! group so the §5 disparity lens applies to *change* the same way it
//! applies to level.
//!
//! Everything here is deterministic: the diff walks `BTreeMap`s keyed on
//! stable identifiers, so two runs over byte-identical snapshots render
//! byte-identical reports (the property the `longitudinal` CI job
//! byte-compares across thread counts and crash+resume).

use crate::pipeline::CityDataset;
use crate::record::PlanRecord;
use bbsim_isp::Isp;
use bqt::ScrapedPlan;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A speed tier: the identity of a plan across snapshots. Price is what
/// churns; download/upload is what a plan *is*.
fn tier(p: &ScrapedPlan) -> (u64, u64) {
    (p.download_mbps.to_bits(), p.upload_mbps.to_bits())
}

/// Plan churn counters for one scope (an address, a block group, or the
/// whole snapshot pair).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Churn {
    /// Speed tiers present only in the newer snapshot.
    pub added: u64,
    /// Speed tiers present only in the older snapshot.
    pub removed: u64,
    /// Tiers present in both at a different price.
    pub repriced: u64,
    /// Addresses with service only in the newer snapshot.
    pub gained_service: u64,
    /// Addresses with service only in the older snapshot.
    pub lost_service: u64,
}

impl Churn {
    /// Nothing changed in this scope.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }

    fn absorb(&mut self, other: &Churn) {
        self.added += other.added;
        self.removed += other.removed;
        self.repriced += other.repriced;
        self.gained_service += other.gained_service;
        self.lost_service += other.lost_service;
    }
}

/// The diff between two curated snapshots of the same city.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDiff {
    /// Churn per `(isp, bg_index)`, ascending by ISP column then block
    /// group; quiet block groups are kept so coverage is visible.
    pub per_block_group: Vec<(Isp, usize, Churn)>,
    /// Everything above, summed.
    pub total: Churn,
    /// Addresses present in both snapshots (the comparable universe).
    pub matched_addresses: u64,
    /// Addresses present in exactly one snapshot. Zero when both epochs
    /// curated the same sample; anything else means the comparison is
    /// partial and the caller should say so.
    pub unmatched_addresses: u64,
}

impl SnapshotDiff {
    /// True when the ISPs changed nothing between the snapshots.
    pub fn is_quiet(&self) -> bool {
        self.total.is_quiet()
    }

    /// Block groups with any churn at all.
    pub fn churned_block_groups(&self) -> usize {
        self.per_block_group
            .iter()
            .filter(|(_, _, c)| !c.is_quiet())
            .count()
    }

    /// A stable plain-text rendering: one header, one total line, then
    /// one line per *churned* block group. Byte-identical across runs
    /// over identical snapshots — the artifact the longitudinal CI job
    /// compares.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            &mut out,
            "snapshot-diff matched={} unmatched={} block_groups={} churned={}",
            self.matched_addresses,
            self.unmatched_addresses,
            self.per_block_group.len(),
            self.churned_block_groups(),
        );
        let c = &self.total;
        let _ = writeln!(
            &mut out,
            "total added={} removed={} repriced={} gained={} lost={}",
            c.added, c.removed, c.repriced, c.gained_service, c.lost_service
        );
        for (isp, bg, c) in &self.per_block_group {
            if c.is_quiet() {
                continue;
            }
            let _ = writeln!(
                &mut out,
                "{} bg={bg} added={} removed={} repriced={} gained={} lost={}",
                isp.slug(),
                c.added,
                c.removed,
                c.repriced,
                c.gained_service,
                c.lost_service
            );
        }
        out
    }
}

/// Diffs one address's plan lists: tiers are matched by speed, prices
/// compared bit-exact (scraped prices are parsed from rendered markup, so
/// equal offers re-scrape to equal bits).
fn diff_address(old: &[ScrapedPlan], new: &[ScrapedPlan]) -> Churn {
    let mut churn = Churn::default();
    if old.is_empty() != new.is_empty() {
        if old.is_empty() {
            churn.gained_service = 1;
        } else {
            churn.lost_service = 1;
        }
    }
    let old_tiers: BTreeMap<(u64, u64), u64> = old
        .iter()
        .map(|p| (tier(p), p.price_usd.to_bits()))
        .collect();
    let new_tiers: BTreeMap<(u64, u64), u64> = new
        .iter()
        .map(|p| (tier(p), p.price_usd.to_bits()))
        .collect();
    for (t, price) in &new_tiers {
        match old_tiers.get(t) {
            None => churn.added += 1,
            Some(old_price) if old_price != price => churn.repriced += 1,
            Some(_) => {}
        }
    }
    churn.removed += new_tiers.keys().fold(old_tiers.len() as u64, |acc, t| {
        acc - old_tiers.contains_key(t) as u64
    });
    churn
}

/// Diffs two snapshots' records. Addresses are matched by
/// `(isp, address_tag)`; an address present in only one snapshot is
/// counted as unmatched, never as churn (sampling drift is not an ISP
/// decision).
pub fn diff_snapshots(old: &[PlanRecord], new: &[PlanRecord]) -> SnapshotDiff {
    let index = |records: &[PlanRecord]| -> BTreeMap<(u8, u64), (Isp, usize, Vec<ScrapedPlan>)> {
        records
            .iter()
            .map(|r| {
                (
                    (r.isp.column(), r.address_tag),
                    (r.isp, r.bg_index, r.plans.clone()),
                )
            })
            .collect()
    };
    let old_idx = index(old);
    let new_idx = index(new);

    let mut per_bg: BTreeMap<(u8, usize), (Isp, Churn)> = BTreeMap::new();
    // Every covered block group gets a row, churned or not.
    for (isp, bg, _) in old_idx.values().chain(new_idx.values()) {
        per_bg
            .entry((isp.column(), *bg))
            .or_insert((*isp, Churn::default()));
    }

    let mut diff = SnapshotDiff::default();
    for (key, (isp, bg, old_plans)) in &old_idx {
        let Some((_, _, new_plans)) = new_idx.get(key) else {
            diff.unmatched_addresses += 1;
            continue;
        };
        diff.matched_addresses += 1;
        let churn = diff_address(old_plans, new_plans);
        if !churn.is_quiet() {
            per_bg
                .get_mut(&(isp.column(), *bg))
                .expect("every record's block group was indexed")
                .1
                .absorb(&churn);
            diff.total.absorb(&churn);
        }
    }
    diff.unmatched_addresses += new_idx.keys().filter(|k| !old_idx.contains_key(k)).count() as u64;

    diff.per_block_group = per_bg
        .into_iter()
        .map(|((_, bg), (isp, churn))| (isp, bg, churn))
        .collect();
    diff
}

/// Diffs a sequence of epoch snapshots pairwise: element `i` is the churn
/// from wave `i` to wave `i + 1`.
pub fn diff_epochs(snapshots: &[CityDataset]) -> Vec<SnapshotDiff> {
    snapshots
        .windows(2)
        .map(|w| diff_snapshots(&w[0].records, &w[1].records))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_geo::BlockGroupId;

    fn plan(down: f64, up: f64, price: f64) -> ScrapedPlan {
        ScrapedPlan {
            download_mbps: down,
            upload_mbps: up,
            price_usd: price,
        }
    }

    fn record(tag: u64, bg: usize, plans: Vec<ScrapedPlan>) -> PlanRecord {
        PlanRecord {
            city: "Testville".to_string(),
            isp: Isp::Cox,
            address_tag: tag,
            block_group: BlockGroupId::new(22, 71, 1, bg as u8),
            bg_index: bg,
            plans,
        }
    }

    #[test]
    fn identical_snapshots_diff_quiet() {
        let records = vec![
            record(1, 0, vec![plan(100.0, 10.0, 50.0)]),
            record(2, 1, vec![]),
        ];
        let diff = diff_snapshots(&records, &records.clone());
        assert!(diff.is_quiet());
        assert_eq!(diff.matched_addresses, 2);
        assert_eq!(diff.unmatched_addresses, 0);
        assert_eq!(diff.churned_block_groups(), 0);
        assert_eq!(diff.per_block_group.len(), 2, "coverage rows survive");
    }

    #[test]
    fn churn_classifies_adds_removals_and_reprices() {
        let old = vec![record(
            1,
            3,
            vec![plan(100.0, 10.0, 50.0), plan(500.0, 50.0, 80.0)],
        )];
        let new = vec![record(
            1,
            3,
            // 100/10 repriced, 500/50 withdrawn, gig tier introduced.
            vec![plan(100.0, 10.0, 55.0), plan(1000.0, 1000.0, 90.0)],
        )];
        let diff = diff_snapshots(&old, &new);
        assert_eq!(diff.total.added, 1);
        assert_eq!(diff.total.removed, 1);
        assert_eq!(diff.total.repriced, 1);
        assert_eq!(diff.total.gained_service, 0);
        assert_eq!(diff.total.lost_service, 0);
        assert_eq!(diff.churned_block_groups(), 1);
    }

    #[test]
    fn service_transitions_are_counted_per_address() {
        let old = vec![
            record(1, 0, vec![]),
            record(2, 0, vec![plan(50.0, 5.0, 40.0)]),
        ];
        let new = vec![
            record(1, 0, vec![plan(50.0, 5.0, 40.0)]),
            record(2, 0, vec![]),
        ];
        let diff = diff_snapshots(&old, &new);
        assert_eq!(diff.total.gained_service, 1);
        assert_eq!(diff.total.lost_service, 1);
        // The gained address's tier is an add; the lost one's a removal.
        assert_eq!(diff.total.added, 1);
        assert_eq!(diff.total.removed, 1);
    }

    #[test]
    fn unmatched_addresses_are_reported_not_diffed() {
        let old = vec![record(1, 0, vec![plan(100.0, 10.0, 50.0)])];
        let new = vec![record(2, 0, vec![plan(100.0, 10.0, 99.0)])];
        let diff = diff_snapshots(&old, &new);
        assert_eq!(diff.matched_addresses, 0);
        assert_eq!(diff.unmatched_addresses, 2);
        assert!(diff.is_quiet(), "disjoint samples produce no churn");
    }

    #[test]
    fn render_is_stable_and_lists_only_churned_groups() {
        let old = vec![
            record(1, 0, vec![plan(100.0, 10.0, 50.0)]),
            record(2, 7, vec![plan(25.0, 3.0, 30.0)]),
        ];
        let new = vec![
            record(1, 0, vec![plan(100.0, 10.0, 60.0)]),
            record(2, 7, vec![plan(25.0, 3.0, 30.0)]),
        ];
        let diff = diff_snapshots(&old, &new);
        let text = diff.render();
        assert_eq!(text, diff_snapshots(&old, &new).render());
        assert!(text.starts_with("snapshot-diff matched=2 unmatched=0"));
        assert!(text.contains("total added=0 removed=0 repriced=1"));
        assert!(text.contains("cox bg=0"), "{text}");
        assert!(!text.contains("bg=7"), "quiet group stays off the report");
    }

    #[test]
    fn curation_waves_re_query_the_same_sample_and_churn() {
        use crate::pipeline::{curate_city, CurationOptions};
        let city = bbsim_census::city_by_name("Billings").unwrap();
        let mut opts = CurationOptions::quick(3);
        opts.min_samples = 2;
        opts.max_samples_per_bg = Some(2);
        let wave0 = curate_city(city, &opts);
        let wave1 = curate_city(city, &opts.epoch(6));
        let diff = diff_snapshots(&wave0.records, &wave1.records);
        // Sampling is epoch-invariant, so nearly every address matches
        // across waves (the residue is addresses that only produced a
        // record in one wave's scrape).
        assert!(
            diff.matched_addresses >= 9 * diff.unmatched_addresses,
            "waves must share their sample: {} matched, {} unmatched",
            diff.matched_addresses,
            diff.unmatched_addresses
        );
        // Six simulated months of fiber build-out and promo rotation must
        // register as churn somewhere.
        assert!(!diff.is_quiet(), "{:?}", diff.total);
        assert!(diff.churned_block_groups() > 0);
    }

    #[test]
    fn epoch_waves_diff_pairwise() {
        let a = vec![record(1, 0, vec![plan(100.0, 10.0, 50.0)])];
        let b = vec![record(1, 0, vec![plan(100.0, 10.0, 55.0)])];
        let snapshots = vec![
            CityDataset {
                city: bbsim_census::city_by_name("Billings").unwrap(),
                records: a,
                per_isp_metrics: Vec::new(),
                per_isp_pause: Vec::new(),
            },
            CityDataset {
                city: bbsim_census::city_by_name("Billings").unwrap(),
                records: b,
                per_isp_metrics: Vec::new(),
                per_isp_pause: Vec::new(),
            },
        ];
        let diffs = diff_epochs(&snapshots);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].total.repriced, 1);
    }
}
