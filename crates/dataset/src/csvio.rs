//! CSV interchange for the measurement dataset.
//!
//! Hand-rolled on purpose: the schema is two fixed tables, and owning the
//! parser means malformed rows produce typed errors rather than silent
//! drops. Plans are packed into one cell as `down/up/price` triples joined
//! by `;`, so one row is one address.

use crate::aggregate::BlockGroupRow;
use crate::anonymize::anonymize_token;
use crate::record::PlanRecord;
use bbsim_geo::BlockGroupId;
use bbsim_isp::Isp;
use bqt::ScrapedPlan;
use std::fmt;

/// CSV schema violations.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    WrongColumnCount { line: usize, got: usize },
    BadField { line: usize, field: &'static str },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::WrongColumnCount { line, got } => {
                write!(f, "line {line}: expected 6 columns, got {got}")
            }
            CsvError::BadField { line, field } => write!(f, "line {line}: bad {field}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Header of the per-address table.
pub const RECORDS_HEADER: &str = "city,isp,address,geoid,bg_index,plans";

fn pack_plans(plans: &[ScrapedPlan]) -> String {
    plans
        .iter()
        .map(|p| format!("{}/{}/{}", p.download_mbps, p.upload_mbps, p.price_usd))
        .collect::<Vec<_>>()
        .join(";")
}

fn unpack_plans(cell: &str, line: usize) -> Result<Vec<ScrapedPlan>, CsvError> {
    if cell.is_empty() {
        return Ok(Vec::new());
    }
    cell.split(';')
        .map(|triple| {
            let parts: Vec<&str> = triple.split('/').collect();
            if parts.len() != 3 {
                return Err(CsvError::BadField {
                    line,
                    field: "plans",
                });
            }
            let parse = |s: &str| {
                s.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or(CsvError::BadField {
                        line,
                        field: "plans",
                    })
            };
            Ok(ScrapedPlan {
                download_mbps: parse(parts[0])?,
                upload_mbps: parse(parts[1])?,
                price_usd: parse(parts[2])?,
            })
        })
        .collect()
}

/// Serializes per-address records. With `anonymize_salt` set, address tags
/// are replaced by one-way tokens (the public-release form).
pub fn records_to_csv(records: &[PlanRecord], anonymize_salt: Option<u64>) -> String {
    let mut out = String::from(RECORDS_HEADER);
    out.push('\n');
    for r in records {
        let addr = match anonymize_salt {
            Some(salt) => anonymize_token(r.address_tag, salt),
            None => r.address_tag.to_string(),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.city,
            r.isp.slug(),
            addr,
            r.block_group,
            r.bg_index,
            pack_plans(&r.plans)
        ));
    }
    out
}

/// Parses the per-address table (non-anonymized form only: anonymized
/// address tokens round-trip as tag 0, preserving everything else).
pub fn records_from_csv(csv: &str) -> Result<Vec<PlanRecord>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if i == 0 || line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 6 {
            return Err(CsvError::WrongColumnCount {
                line: i + 1,
                got: cols.len(),
            });
        }
        let isp = Isp::from_slug(cols[1]).ok_or(CsvError::BadField {
            line: i + 1,
            field: "isp",
        })?;
        let address_tag = if cols[2].starts_with("addr-") {
            0
        } else {
            cols[2].parse().map_err(|_| CsvError::BadField {
                line: i + 1,
                field: "address",
            })?
        };
        let block_group: BlockGroupId = cols[3].parse().map_err(|_| CsvError::BadField {
            line: i + 1,
            field: "geoid",
        })?;
        let bg_index: usize = cols[4].parse().map_err(|_| CsvError::BadField {
            line: i + 1,
            field: "bg_index",
        })?;
        out.push(PlanRecord {
            city: cols[0].to_string(),
            isp,
            address_tag,
            block_group,
            bg_index,
            plans: unpack_plans(cols[5], i + 1)?,
        });
    }
    Ok(out)
}

/// Serializes block-group rows (the aggregate table behind the figures).
pub fn block_groups_to_csv(rows: &[BlockGroupRow]) -> String {
    let mut out = String::from("city,isp,geoid,bg_index,median_cv,cov,n_addresses,fiber_share\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.6},{},{},{:.6}\n",
            r.city,
            r.isp.slug(),
            r.block_group,
            r.bg_index,
            r.median_cv,
            r.cov.map_or(String::new(), |c| format!("{c:.6}")),
            r.n_addresses,
            r.fiber_share
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<PlanRecord> {
        vec![
            PlanRecord {
                city: "New Orleans".to_string(),
                isp: Isp::Cox,
                address_tag: 17,
                block_group: BlockGroupId::new(22, 71, 3, 2),
                bg_index: 9,
                plans: vec![
                    ScrapedPlan {
                        download_mbps: 200.0,
                        upload_mbps: 5.0,
                        price_usd: 20.0,
                    },
                    ScrapedPlan {
                        download_mbps: 1000.0,
                        upload_mbps: 35.0,
                        price_usd: 35.0,
                    },
                ],
            },
            PlanRecord {
                city: "New Orleans".to_string(),
                isp: Isp::Att,
                address_tag: 18,
                block_group: BlockGroupId::new(22, 71, 3, 2),
                bg_index: 9,
                plans: Vec::new(),
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let records = sample_records();
        let csv = records_to_csv(&records, None);
        let parsed = records_from_csv(&csv).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn no_service_rows_have_empty_plans_cell() {
        let csv = records_to_csv(&sample_records(), None);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[2].ends_with(",9,"), "{}", lines[2]);
    }

    #[test]
    fn anonymized_export_hides_tags_but_parses() {
        let records = sample_records();
        let csv = records_to_csv(&records, Some(99));
        assert!(!csv.contains(",17,"), "raw tag leaked");
        assert!(csv.contains("addr-"));
        let parsed = records_from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].address_tag, 0, "anonymized tags parse as 0");
        assert_eq!(parsed[0].plans, records[0].plans);
    }

    #[test]
    fn wrong_column_count_is_reported_with_line() {
        let bad = format!("{RECORDS_HEADER}\na,b,c\n");
        assert_eq!(
            records_from_csv(&bad),
            Err(CsvError::WrongColumnCount { line: 2, got: 3 })
        );
    }

    #[test]
    fn bad_fields_are_typed_errors() {
        let bad = format!("{RECORDS_HEADER}\nX,notanisp,1,220710000032,9,\n");
        assert!(matches!(
            records_from_csv(&bad),
            Err(CsvError::BadField { field: "isp", .. })
        ));
        let bad2 = format!("{RECORDS_HEADER}\nX,cox,1,220710000032,9,1/2\n");
        assert!(matches!(
            records_from_csv(&bad2),
            Err(CsvError::BadField { field: "plans", .. })
        ));
    }

    #[test]
    fn block_group_csv_contains_expected_columns() {
        let rows = vec![BlockGroupRow {
            city: "Wichita".to_string(),
            isp: Isp::Cox,
            block_group: BlockGroupId::new(20, 173, 1, 1),
            bg_index: 0,
            median_cv: 11.36,
            cov: Some(0.02),
            n_addresses: 30,
            fiber_share: 0.0,
        }];
        let csv = block_groups_to_csv(&rows);
        assert!(csv.contains("Wichita,cox,"));
        assert!(csv.contains("11.360000"));
        assert!(csv.lines().count() == 2);
    }
}
