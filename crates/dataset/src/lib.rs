//! Dataset curation: the paper's §4 pipeline.
//!
//! One call builds a city's hidden world, deploys its BAT servers on the
//! simulated transport, samples street addresses per block group (10% with
//! a 30-sample floor), drives BQT through the orchestrator, and lands the
//! scraped results as plan records — the measurement dataset every §5
//! analysis consumes.
//!
//! Layering rule: everything in this crate downstream of the scrape sees
//! only what came off the wire (scraped plans, timings, outcomes) plus
//! *public* context (census geometry, ACS income). The generative world is
//! used solely to stand up servers and enumerate addresses to query.
//!
//! * [`pipeline`] — end-to-end curation for one city or the full study;
//! * [`record`] — the per-address and per-block-group dataset schemas;
//! * [`aggregate`] — carriage values, block-group medians and CoV (§5.1);
//! * [`longitudinal`] — the snapshot diff engine: plan churn between two
//!   curations of the same sample (the epoch-wave study's core);
//! * [`anonymize`] — the hashed public-release form of the dataset;
//! * [`csvio`] — plain-text CSV export/import for interchange;
//! * [`artifact`] — per-city record snapshots the serving layer loads.

pub mod aggregate;
pub mod anonymize;
pub mod artifact;
pub mod csvio;
pub mod longitudinal;
pub mod pipeline;
pub mod record;

pub use aggregate::{aggregate_block_groups, BlockGroupRow};
pub use anonymize::anonymize_tag;
pub use artifact::{ArtifactError, CityArtifact};
pub use longitudinal::{diff_epochs, diff_snapshots, Churn, SnapshotDiff};
pub use pipeline::{
    curate_city, curate_city_journaled, curate_city_with_faults, CityDataset, CurationOptions,
};
pub use record::PlanRecord;
