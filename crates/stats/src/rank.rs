//! Rank-based statistics: Spearman correlation and the Mann–Whitney U test.
//!
//! These back the robustness experiments: the paper verifies its carriage
//! values are consistent between download- and upload-based definitions
//! (Spearman), and the §5.4 competition conclusion should not hinge on the
//! choice of KS over other two-sample tests (Mann–Whitney).

use crate::special::std_normal_cdf;

/// Mid-ranks of a sample (ties share the average rank), 1-based.
pub fn midranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN in ranks"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = (i + j + 2) as f64 / 2.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation coefficient; `None` when undefined (fewer than
/// 2 points or a constant margin).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "paired samples must align");
    if xs.len() < 2 {
        return None;
    }
    let rx = midranks(xs);
    let ry = midranks(ys);
    pearson(&rx, &ry)
}

/// Pearson correlation on raw values (used on ranks for Spearman).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "paired samples must align");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyOutcome {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Normal-approximation z-score (tie-corrected).
    pub z: f64,
    /// One-tailed p-value for "sample 2 stochastically greater".
    pub p_greater: f64,
    /// Two-tailed p-value.
    pub p_two_sided: f64,
}

/// Mann–Whitney U test with the normal approximation (fine for n ≥ 8 per
/// side, which every block-group sample in the study exceeds).
///
/// # Panics
/// Panics on an empty sample.
pub fn mann_whitney(xs: &[f64], ys: &[f64]) -> MannWhitneyOutcome {
    assert!(
        !xs.is_empty() && !ys.is_empty(),
        "Mann-Whitney needs non-empty samples"
    );
    let n1 = xs.len() as f64;
    let n2 = ys.len() as f64;
    let mut all: Vec<f64> = xs.iter().chain(ys).copied().collect();
    let ranks = midranks(&all);
    let r1: f64 = ranks[..xs.len()].iter().sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    // Tie correction for the variance.
    all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < all.len() {
        let mut j = i;
        while j + 1 < all.len() && all[j + 1] == all[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let n = n1 + n2;
    let mean_u = n1 * n2 / 2.0;
    let var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    let z = if var_u > 0.0 {
        (u1 - mean_u) / var_u.sqrt()
    } else {
        0.0
    };
    // Low U1 means sample 1 ranks low, i.e. sample 2 stochastically greater.
    let p_greater = std_normal_cdf(z);
    let p_two = 2.0 * std_normal_cdf(-z.abs());
    MannWhitneyOutcome {
        u: u1,
        z,
        p_greater,
        p_two_sided: p_two.min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midranks_handle_ties() {
        assert_eq!(
            midranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
        assert_eq!(midranks(&[5.0]), vec![1.0]);
        assert_eq!(midranks(&[2.0, 1.0]), vec![2.0, 1.0]);
    }

    #[test]
    fn spearman_of_monotone_relation_is_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3) - 5.0).collect(); // monotone, nonlinear
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((spearman(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_of_independent_hash_is_near_zero() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..500u64)
            .map(|i| (i.wrapping_mul(2654435761) % 1000) as f64)
            .collect();
        let rho = spearman(&xs, &ys).unwrap();
        assert!(rho.abs() < 0.1, "rho = {rho}");
    }

    #[test]
    fn spearman_undefined_for_constant_margin() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(spearman(&[1.0], &[2.0]), None);
    }

    #[test]
    fn pearson_of_perfect_line_is_signed_one() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mann_whitney_detects_shift_direction() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 50.0).collect();
        let out = mann_whitney(&a, &b);
        assert!(out.p_greater < 0.01, "p = {}", out.p_greater);
        // Flip the samples: no evidence in this direction.
        let flipped = mann_whitney(&b, &a);
        assert!(flipped.p_greater > 0.5);
    }

    #[test]
    fn mann_whitney_identical_samples_are_null() {
        let a: Vec<f64> = (0..60).map(|i| (i % 7) as f64).collect();
        let out = mann_whitney(&a, &a);
        assert!(out.z.abs() < 1e-9);
        assert!(out.p_two_sided > 0.95);
    }

    #[test]
    fn mann_whitney_agrees_with_ks_on_the_competition_shape() {
        // Fig-8-like samples: monopoly ~11.4, duopoly ~14.6.
        let monopoly: Vec<f64> = (0..80).map(|i| 11.3 + (i % 5) as f64 * 0.05).collect();
        let duopoly: Vec<f64> = (0..80).map(|i| 14.5 + (i % 5) as f64 * 0.05).collect();
        let mw = mann_whitney(&monopoly, &duopoly);
        assert!(mw.p_greater < 0.001);
        let ks = crate::ks::ks_one_tailed(&monopoly, &duopoly, crate::ks::Tail::Greater);
        assert!(ks.rejects_at(0.05));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn mann_whitney_rejects_empty() {
        mann_whitney(&[], &[1.0]);
    }
}
