//! Descriptive statistics: means, variances, quantiles, and the coefficient
//! of variation the paper uses to justify block-group median aggregation
//! (Fig. 4).

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divides by `n`); `None` for an empty slice.
///
/// We use the population form because a block group's sampled addresses are
/// treated as the full set of observations for that group, matching the
/// paper's CoV definition (σ/μ over available plans within a block).
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Coefficient of variation σ/μ.
///
/// Returns `None` for empty input or a zero mean (CoV undefined).
pub fn coefficient_of_variation(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    if m == 0.0 {
        return None;
    }
    Some(std_dev(xs)? / m)
}

/// Linear-interpolated quantile, `q` in `[0, 1]`; `None` for empty input.
///
/// Uses the "linear" (type-7) rule: index `h = q * (n - 1)` with
/// interpolation between the floor and ceil order statistics.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = q * (v.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(v[lo] + (v[hi] - v[lo]) * (h - lo as f64))
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty sample; `None` if empty.
    pub fn of(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        Some(Summary {
            n: xs.len(),
            mean: mean(xs)?,
            std_dev: std_dev(xs)?,
            min: quantile(xs, 0.0)?,
            p25: quantile(xs, 0.25)?,
            median: quantile(xs, 0.5)?,
            p75: quantile(xs, 0.75)?,
            max: quantile(xs, 1.0)?,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(median(&[]), None);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(std_dev(&xs), Some(2.0));
    }

    #[test]
    fn cov_is_scale_invariant() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let scaled: Vec<f64> = xs.iter().map(|x| x * 7.5).collect();
        let a = coefficient_of_variation(&xs).unwrap();
        let b = coefficient_of_variation(&scaled).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cov_of_constant_sample_is_zero() {
        assert_eq!(coefficient_of_variation(&[3.0, 3.0, 3.0]), Some(0.0));
    }

    #[test]
    fn cov_undefined_for_zero_mean() {
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]), None);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantile_endpoints_are_min_max() {
        let xs = [9.0, -3.0, 4.0, 12.0];
        assert_eq!(quantile(&xs, 0.0), Some(-3.0));
        assert_eq!(quantile(&xs, 1.0), Some(12.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        // h = 0.25 * 3 = 0.75 -> 10 + (20-10)*0.75 = 17.5
        assert_eq!(quantile(&xs, 0.25), Some(17.5));
    }

    #[test]
    fn quantile_rejects_out_of_range_q() {
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn summary_is_internally_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.median, 50.5);
        assert!(s.p25 < s.median && s.median < s.p75);
        assert!((s.iqr() - (s.p75 - s.p25)).abs() < 1e-12);
    }
}
