//! Moran's I spatial autocorrelation.
//!
//! The paper uses Moran's I over block-group carriage values inside a city to
//! quantify spatial clustering (Table 3, §5.3). We implement the statistic
//! over sparse row-major weights, with two inference routes:
//!
//! * the classic analytic moments under the normality assumption (z-score
//!   against `E[I] = −1/(n−1)`), and
//! * a seeded permutation test, which makes no distributional assumption.

use crate::special::std_normal_cdf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sparse spatial weights: row `i` holds `(j, w_ij)` pairs.
pub type WeightRows = [Vec<(usize, f64)>];

/// Result of a Moran's I computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoranResult {
    /// The observed statistic, in `[-1, 1]` for row-standardized weights.
    pub i: f64,
    /// Expected value under the null, `-1/(n-1)`.
    pub expected: f64,
    /// Standard deviate under the normality assumption.
    pub z_score: f64,
    /// One-tailed p-value for positive autocorrelation, `P(Z >= z)`.
    pub p_value: f64,
    pub n: usize,
}

/// Computes Moran's I with analytic (normality) inference.
///
/// Returns `None` when the statistic is undefined: fewer than 3 observations,
/// zero total weight, or zero variance in `values`.
///
/// # Panics
/// Panics if `values.len() != weights.len()` or a weight column is out of
/// range.
pub fn morans_i(values: &[f64], weights: &WeightRows) -> Option<MoranResult> {
    let n = values.len();
    assert_eq!(n, weights.len(), "values and weight rows must align");
    if n < 3 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let z: Vec<f64> = values.iter().map(|v| v - mean).collect();
    let m2: f64 = z.iter().map(|v| v * v).sum();
    if m2 == 0.0 {
        return None;
    }

    let mut s0 = 0.0;
    let mut num = 0.0;
    for (i, row) in weights.iter().enumerate() {
        for &(j, w) in row {
            assert!(j < n, "weight column {j} out of range for n = {n}");
            s0 += w;
            num += w * z[i] * z[j];
        }
    }
    if s0 == 0.0 {
        return None;
    }
    let i_stat = (n as f64 / s0) * (num / m2);

    // Analytic moments under normality (Cliff & Ord).
    // S1 = 1/2 Σ_ij (w_ij + w_ji)^2 ; S2 = Σ_i (w_i. + w_.i)^2.
    let mut w_dense_sym_sq = 0.0; // Σ (w_ij + w_ji)^2 over ordered pairs, computed sparsely
    let mut row_sums = vec![0.0; n];
    let mut col_sums = vec![0.0; n];
    // For S1 we need w_ji for each (i, j); gather a lookup per row.
    use std::collections::HashMap;
    let mut maps: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
    for (i, row) in weights.iter().enumerate() {
        for &(j, w) in row {
            *maps[i].entry(j).or_insert(0.0) += w;
            row_sums[i] += w;
            col_sums[j] += w;
        }
    }
    for (i, map) in maps.iter().enumerate() {
        for (&j, &wij) in map {
            let wji = maps[j].get(&i).copied().unwrap_or(0.0);
            w_dense_sym_sq += (wij + wji).powi(2);
        }
    }
    let s1 = 0.5 * w_dense_sym_sq;
    let s2: f64 = (0..n).map(|i| (row_sums[i] + col_sums[i]).powi(2)).sum();

    let nf = n as f64;
    let expected = -1.0 / (nf - 1.0);
    let var = (nf * nf * s1 - nf * s2 + 3.0 * s0 * s0) / ((nf * nf - 1.0) * s0 * s0)
        - expected * expected;
    if var <= 0.0 {
        return None;
    }
    let z_score = (i_stat - expected) / var.sqrt();
    Some(MoranResult {
        i: i_stat,
        expected,
        z_score,
        p_value: 1.0 - std_normal_cdf(z_score),
        n,
    })
}

/// Permutation-test p-value for positive spatial autocorrelation.
///
/// Shuffles `values` `permutations` times (seeded) and reports the fraction
/// of permuted statistics at least as large as the observed one, with the
/// standard +1 correction. Returns `None` when the statistic is undefined.
pub fn morans_i_permutation(
    values: &[f64],
    weights: &WeightRows,
    permutations: usize,
    seed: u64,
) -> Option<(MoranResult, f64)> {
    let observed = morans_i(values, weights)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled: Vec<f64> = values.to_vec();
    let mut at_least = 0usize;
    for _ in 0..permutations {
        shuffled.shuffle(&mut rng);
        if let Some(perm) = morans_i(&shuffled, weights) {
            if perm.i >= observed.i {
                at_least += 1;
            }
        }
    }
    let p = (at_least + 1) as f64 / (permutations + 1) as f64;
    Some((observed, p))
}

#[cfg(test)]
pub(crate) mod tests_support {
    /// Row-standardized weights for a k x k rook grid.
    pub fn grid_weights(k: usize) -> Vec<Vec<(usize, f64)>> {
        let idx = |r: usize, c: usize| r * k + c;
        (0..k * k)
            .map(|i| {
                let (r, c) = (i / k, i % k);
                let mut ns = Vec::new();
                if r > 0 {
                    ns.push(idx(r - 1, c));
                }
                if r + 1 < k {
                    ns.push(idx(r + 1, c));
                }
                if c > 0 {
                    ns.push(idx(r, c - 1));
                }
                if c + 1 < k {
                    ns.push(idx(r, c + 1));
                }
                let w = 1.0 / ns.len() as f64;
                ns.into_iter().map(|j| (j, w)).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::grid_weights;
    use super::*;

    #[test]
    fn clustered_values_give_strong_positive_i() {
        // Left half low, right half high: maximal clustering.
        let k = 10;
        let values: Vec<f64> = (0..k * k)
            .map(|i| if i % k < k / 2 { 0.0 } else { 10.0 })
            .collect();
        let w = grid_weights(k);
        let r = morans_i(&values, &w).unwrap();
        assert!(r.i > 0.7, "I = {}", r.i);
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn checkerboard_gives_negative_i() {
        let k = 10;
        let values: Vec<f64> = (0..k * k)
            .map(|i| if (i / k + i % k) % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let w = grid_weights(k);
        let r = morans_i(&values, &w).unwrap();
        assert!(r.i < -0.9, "I = {}", r.i);
        assert!(r.p_value > 0.99, "no positive autocorrelation");
    }

    #[test]
    fn random_values_give_i_near_zero() {
        // Deterministic pseudo-random pattern via multiplicative hashing.
        let k = 12;
        let values: Vec<f64> = (0..k * k)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % 1000) as f64)
            .collect();
        let w = grid_weights(k);
        let r = morans_i(&values, &w).unwrap();
        assert!(r.i.abs() < 0.15, "I = {}", r.i);
    }

    #[test]
    fn expected_value_is_minus_one_over_n_minus_one() {
        let k = 5;
        let values: Vec<f64> = (0..k * k).map(|i| i as f64).collect();
        let r = morans_i(&values, &grid_weights(k)).unwrap();
        assert!((r.expected + 1.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn constant_field_is_undefined() {
        let values = vec![3.0; 25];
        assert!(morans_i(&values, &grid_weights(5)).is_none());
    }

    #[test]
    fn too_few_observations_is_undefined() {
        let w: Vec<Vec<(usize, f64)>> = vec![vec![(1, 1.0)], vec![(0, 1.0)]];
        assert!(morans_i(&[1.0, 2.0], &w).is_none());
    }

    #[test]
    fn permutation_p_agrees_with_analytic_for_clustered_data() {
        let k = 8;
        let values: Vec<f64> = (0..k * k)
            .map(|i| if i % k < k / 2 { 0.0 } else { 10.0 })
            .collect();
        let w = grid_weights(k);
        let (obs, p_perm) = morans_i_permutation(&values, &w, 499, 11).unwrap();
        assert!(p_perm < 0.01, "perm p = {p_perm}");
        assert!(obs.p_value < 0.01);
    }

    #[test]
    fn permutation_is_deterministic_in_seed() {
        let k = 6;
        let values: Vec<f64> = (0..k * k).map(|i| (i % 7) as f64).collect();
        let w = grid_weights(k);
        let (_, p1) = morans_i_permutation(&values, &w, 199, 5).unwrap();
        let (_, p2) = morans_i_permutation(&values, &w, 199, 5).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn paper_range_clustering_detected_at_moderate_strength() {
        // Smooth gradient field: positive but not extreme I, like the paper's
        // 0.3-0.5 medians.
        let k = 10;
        let values: Vec<f64> = (0..k * k)
            .map(|i| {
                let (r, c) = (i / k, i % k);
                (r + c) as f64 + ((i as u64).wrapping_mul(40503) % 13) as f64
            })
            .collect();
        let r = morans_i(&values, &grid_weights(k)).unwrap();
        assert!(r.i > 0.2 && r.i < 0.9, "I = {}", r.i);
    }
}

/// Geary's C spatial autocorrelation (robustness alternative to Moran's I).
///
/// `C < 1` indicates positive spatial autocorrelation, `C > 1` negative,
/// `C = 1` none. Used by the Table-3 robustness experiment: the clustering
/// conclusion should not depend on the choice of statistic.
///
/// Returns `None` under the same undefined conditions as [`morans_i`].
pub fn gearys_c(values: &[f64], weights: &WeightRows) -> Option<f64> {
    let n = values.len();
    assert_eq!(n, weights.len(), "values and weight rows must align");
    if n < 3 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let m2: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
    if m2 == 0.0 {
        return None;
    }
    let mut s0 = 0.0;
    let mut num = 0.0;
    for (i, row) in weights.iter().enumerate() {
        for &(j, w) in row {
            assert!(j < n, "weight column {j} out of range for n = {n}");
            s0 += w;
            num += w * (values[i] - values[j]).powi(2);
        }
    }
    if s0 == 0.0 {
        return None;
    }
    Some((n as f64 - 1.0) * num / (2.0 * s0 * m2))
}

/// Local Moran's I (LISA) per cell: positive where a cell sits in a patch
/// of similar values, negative where it is a spatial outlier. Used for
/// hotspot rendering on the Fig.-7-style maps.
///
/// Returns `None` when the field is constant or too small.
pub fn local_morans_i(values: &[f64], weights: &WeightRows) -> Option<Vec<f64>> {
    let n = values.len();
    assert_eq!(n, weights.len(), "values and weight rows must align");
    if n < 3 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let z: Vec<f64> = values.iter().map(|v| v - mean).collect();
    let m2: f64 = z.iter().map(|v| v * v).sum::<f64>() / n as f64;
    if m2 == 0.0 {
        return None;
    }
    Some(
        (0..n)
            .map(|i| {
                let lag: f64 = weights[i].iter().map(|&(j, w)| w * z[j]).sum();
                z[i] / m2 * lag
            })
            .collect(),
    )
}

#[cfg(test)]
mod geary_tests {
    use super::tests_support::grid_weights;
    use super::*;

    #[test]
    fn clustered_field_has_c_below_one() {
        let k = 10;
        let values: Vec<f64> = (0..k * k)
            .map(|i| if i % k < k / 2 { 0.0 } else { 10.0 })
            .collect();
        let c = gearys_c(&values, &grid_weights(k)).unwrap();
        assert!(c < 0.5, "C = {c}");
    }

    #[test]
    fn checkerboard_has_c_above_one() {
        let k = 10;
        let values: Vec<f64> = (0..k * k)
            .map(|i| if (i / k + i % k) % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let c = gearys_c(&values, &grid_weights(k)).unwrap();
        assert!(c > 1.5, "C = {c}");
    }

    #[test]
    fn geary_and_moran_agree_on_direction() {
        let k = 12;
        let values: Vec<f64> = (0..k * k)
            .map(|i| (i / k + i % k) as f64 + ((i as u64).wrapping_mul(40503) % 5) as f64)
            .collect();
        let w = grid_weights(k);
        let i_stat = morans_i(&values, &w).unwrap().i;
        let c = gearys_c(&values, &w).unwrap();
        assert!(i_stat > 0.0);
        assert!(c < 1.0, "C = {c} disagrees with I = {i_stat}");
    }

    #[test]
    fn constant_field_is_undefined() {
        assert!(gearys_c(&[1.0; 25], &grid_weights(5)).is_none());
        assert!(local_morans_i(&[1.0; 25], &grid_weights(5)).is_none());
    }

    #[test]
    fn local_moran_averages_to_global() {
        // With row-standardized weights, mean(local I) ~= global I (exact up
        // to the n/(n-1) variance convention).
        let k = 9;
        let values: Vec<f64> = (0..k * k)
            .map(|i| if i % k < k / 2 { 1.0 } else { 7.0 })
            .collect();
        let w = grid_weights(k);
        let local = local_morans_i(&values, &w).unwrap();
        let global = morans_i(&values, &w).unwrap().i;
        let mean_local = local.iter().sum::<f64>() / local.len() as f64;
        assert!(
            (mean_local - global).abs() < 0.05,
            "{mean_local} vs {global}"
        );
    }

    #[test]
    fn local_moran_flags_interior_of_patches_positive() {
        let k = 10;
        let values: Vec<f64> = (0..k * k)
            .map(|i| if i % k < k / 2 { 0.0 } else { 10.0 })
            .collect();
        let w = grid_weights(k);
        let local = local_morans_i(&values, &w).unwrap();
        // A deep-interior cell of the left patch: all neighbours identical.
        let interior = k + 1;
        assert!(local[interior] > 0.0, "interior LISA {}", local[interior]);
    }
}
