//! Special functions needed for statistical inference.

/// Error function, via the Abramowitz & Stegun 7.1.26 rational approximation
/// (max absolute error ~1.5e-7, plenty for p-values).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function Φ(z).
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)`,
/// the asymptotic p-value for the two-sided two-sample KS statistic.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        let signed = if k % 2 == 1 { term } else { -term };
        sum += signed;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 approximation has ~1.5e-7 absolute error.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-6);
            assert!(erf(x).abs() <= 1.0);
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.6449) - 0.05).abs() < 1e-3);
        assert!(std_normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn normal_cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let v = std_normal_cdf(i as f64 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn kolmogorov_sf_known_values() {
        // Q(λ) at the classic critical value: Q(1.36) ≈ 0.049.
        assert!((kolmogorov_sf(1.36) - 0.049).abs() < 0.002);
        assert!((kolmogorov_sf(1.63) - 0.010).abs() < 0.002);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(5.0) < 1e-9);
    }

    #[test]
    fn kolmogorov_sf_is_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 1..=50 {
            let v = kolmogorov_sf(i as f64 * 0.1);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
