//! Statistics substrate for the Decoding-the-Divide reproduction.
//!
//! Everything the paper's evaluation needs, implemented from scratch:
//!
//! * descriptive statistics — mean, variance, quantiles, median, and the
//!   coefficient of variation used in Fig. 4 ([`descriptive`]);
//! * empirical CDFs and fixed-width histograms for distribution figures
//!   ([`ecdf`]);
//! * two-sample Kolmogorov–Smirnov tests, both the two-sided form and the
//!   one-tailed forms the paper uses for the competition analysis (§5.4,
//!   Fig. 8) ([`ks`]);
//! * Moran's I spatial autocorrelation with analytic (normality) and
//!   permutation inference, used for Table 3 ([`moran`]);
//! * the paper's 30-dimensional "plans vector" and its L1 distance, used to
//!   compare an ISP's offerings across cities (Fig. 6) ([`planvec`]);
//! * special functions (erf, standard normal CDF) backing the above
//!   ([`special`]).
//!
//! All permutation procedures take explicit seeds; nothing reads ambient
//! entropy.

pub mod descriptive;
pub mod ecdf;
pub mod ks;
pub mod moran;
pub mod planvec;
pub mod rank;
pub mod resample;
pub mod special;

pub use descriptive::{
    coefficient_of_variation, mean, median, quantile, std_dev, variance, Summary,
};
pub use ecdf::{Ecdf, Histogram};
pub use ks::{ks_one_tailed, ks_two_sample, KsOutcome, Tail};
pub use moran::{gearys_c, local_morans_i, morans_i, morans_i_permutation, MoranResult};
pub use planvec::{l1_distance, PlanVector, PLAN_VECTOR_DIMS};
pub use rank::{mann_whitney, midranks, pearson, spearman, MannWhitneyOutcome};
pub use resample::{bootstrap_ci, median_ci, BootstrapCi};
