//! Empirical distribution functions and histograms.
//!
//! These back every distribution figure in the paper (Figs. 2b, 4, 5, 6, 8,
//! 9b): the `repro` harness prints ECDF/histogram series where the paper
//! shows curves.

/// Empirical cumulative distribution function of a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF; NaNs are rejected with a panic (they would poison the
    /// ordering silently otherwise).
    pub fn new(mut xs: Vec<f64>) -> Self {
        assert!(xs.iter().all(|x| !x.is_nan()), "ECDF input contains NaN");
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Self { sorted: xs }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — the fraction of the sample `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point returns the count of elements <= x because the
        // predicate holds for a sorted prefix.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse `F⁻¹(q)`: the smallest sample value with
    /// `F(x) >= q`. `None` if the sample is empty or `q` out of `(0, 1]`.
    pub fn inverse(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0 < q && q <= 1.0) {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// The sorted sample (support points of the step function).
    pub fn support(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the ECDF on an evenly spaced grid of `n` points spanning
    /// the sample range, as `(x, F(x))` pairs — the series plotted in the
    /// paper's CDF figures.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if n == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// A fixed-width histogram over `[lo, hi)` with an implicit overflow rule:
/// values outside the range are clamped into the first/last bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "histogram input contains NaN");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / w).floor() as i64).clamp(0, self.counts.len() as i64 - 1);
        self.counts[idx as usize] += 1;
        self.total += 1;
    }

    /// Adds every value in the slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bin_center, fraction)` pairs — the paper's normalized histograms.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + w * (i as f64 + 0.5);
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }

    /// Indices of local maxima with at least `min_frac` of the mass — used to
    /// count the "peaks" the paper describes in Fig. 5.
    pub fn peaks(&self, min_frac: f64) -> Vec<usize> {
        let n = self.counts.len();
        let frac = |i: usize| {
            if self.total == 0 {
                0.0
            } else {
                self.counts[i] as f64 / self.total as f64
            }
        };
        (0..n)
            .filter(|&i| {
                let f = frac(i);
                if f < min_frac {
                    return false;
                }
                let left = if i == 0 { 0.0 } else { frac(i - 1) };
                let right = if i + 1 == n { 0.0 } else { frac(i + 1) };
                f >= left && f > right || f > left && f >= right
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_eval_matches_definition() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn ecdf_is_monotone() {
        let e = Ecdf::new(vec![5.0, -1.0, 3.3, 3.3, 0.0, 12.0]);
        let mut prev = 0.0;
        for i in -20..=140 {
            let v = e.eval(i as f64 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn ecdf_inverse_is_generalized_quantile() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.inverse(0.25), Some(10.0));
        assert_eq!(e.inverse(0.5), Some(20.0));
        assert_eq!(e.inverse(1.0), Some(40.0));
        assert_eq!(e.inverse(0.0), None);
    }

    #[test]
    fn ecdf_curve_spans_range_and_ends_at_one() {
        let e = Ecdf::new(vec![1.0, 4.0, 9.0]);
        let c = e.curve(10);
        assert_eq!(c.len(), 10);
        assert_eq!(c[0].0, 1.0);
        assert_eq!(c[9], (9.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend(&[-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 50.0]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[0], 3); // -1 (clamped), 0, 1.9
        assert_eq!(h.counts()[1], 1); // 2.0
        assert_eq!(h.counts()[4], 3); // 9.9, 10.0 (clamped), 50 (clamped)
    }

    #[test]
    fn histogram_normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 7);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let total: f64 = h.normalized().iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_peaks_finds_bimodal_modes() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        // Two humps with a continuous valley between them; bins 1 and 7 are
        // the only local maxima above the mass threshold.
        for (bin, count) in [(1, 40), (2, 12), (3, 8), (4, 5), (5, 9), (6, 13), (7, 50)] {
            for _ in 0..count {
                h.add(bin as f64 + 0.5);
            }
        }
        let peaks = h.peaks(0.05);
        assert_eq!(peaks, vec![1, 7]);
    }

    #[test]
    fn histogram_peaks_empty_when_no_mass() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.peaks(0.01).is_empty());
    }
}
