//! Two-sample Kolmogorov–Smirnov tests.
//!
//! The paper (§5.4) runs *one-tailed* two-sample KS tests to decide whether a
//! cable ISP's carriage-value distribution in duopoly block groups
//! stochastically dominates the distribution in monopoly block groups. We
//! implement both one-tailed directions and the two-sided test.
//!
//! P-values use the standard asymptotic forms: for the one-sided statistic
//! `D⁺`, `p ≈ exp(-2 m D⁺²)` with `m = n₁n₂/(n₁+n₂)`; for the two-sided
//! statistic, the Kolmogorov survival function with the
//! Marsaglia–Tsang–Wang-style small-sample correction
//! `λ = (√m + 0.12 + 0.11/√m)·D`.

use crate::special::kolmogorov_sf;

/// Which tail of the one-sided test to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// `D⁺ = sup_x (F₁(x) − F₂(x))`: large when sample 1 sits at *smaller*
    /// values than sample 2 (its CDF is above). Rejecting H0 supports
    /// "sample 2 is stochastically greater than sample 1".
    Greater,
    /// `D⁻ = sup_x (F₂(x) − F₁(x))`: the mirror image.
    Less,
}

/// Result of a KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsOutcome {
    /// The KS statistic (D, D⁺ or D⁻ depending on the test).
    pub statistic: f64,
    /// Asymptotic p-value.
    pub p_value: f64,
    pub n1: usize,
    pub n2: usize,
}

impl KsOutcome {
    /// True when the null hypothesis is rejected at level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Computes `(D⁺, D⁻)`: the maximum signed deviations between the two
/// empirical CDFs, walking the merged sorted samples in one pass.
fn ks_deviations(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let mut a: Vec<f64> = xs.to_vec();
    let mut b: Vec<f64> = ys.to_vec();
    a.sort_by(|p, q| p.partial_cmp(q).expect("NaN in KS input"));
    b.sort_by(|p, q| p.partial_cmp(q).expect("NaN in KS input"));
    let (n1, n2) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let (mut d_plus, mut d_minus) = (0.0f64, 0.0f64);
    while i < a.len() && j < b.len() {
        let t = a[i].min(b[j]);
        while i < a.len() && a[i] <= t {
            i += 1;
        }
        while j < b.len() && b[j] <= t {
            j += 1;
        }
        let f1 = i as f64 / n1;
        let f2 = j as f64 / n2;
        d_plus = d_plus.max(f1 - f2);
        d_minus = d_minus.max(f2 - f1);
    }
    (d_plus, d_minus)
}

/// Two-sided two-sample KS test. Panics on an empty sample (the statistic is
/// undefined).
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> KsOutcome {
    assert!(
        !xs.is_empty() && !ys.is_empty(),
        "KS test needs non-empty samples"
    );
    let (d_plus, d_minus) = ks_deviations(xs, ys);
    let d = d_plus.max(d_minus);
    let m = (xs.len() * ys.len()) as f64 / (xs.len() + ys.len()) as f64;
    let lambda = (m.sqrt() + 0.12 + 0.11 / m.sqrt()) * d;
    KsOutcome {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
        n1: xs.len(),
        n2: ys.len(),
    }
}

/// One-tailed two-sample KS test.
///
/// With `Tail::Greater`, the alternative hypothesis is that `ys` is
/// stochastically greater than `xs` (i.e. the CDF of `xs` lies above);
/// with `Tail::Less`, the reverse.
pub fn ks_one_tailed(xs: &[f64], ys: &[f64], tail: Tail) -> KsOutcome {
    assert!(
        !xs.is_empty() && !ys.is_empty(),
        "KS test needs non-empty samples"
    );
    let (d_plus, d_minus) = ks_deviations(xs, ys);
    let d = match tail {
        Tail::Greater => d_plus,
        Tail::Less => d_minus,
    };
    let m = (xs.len() * ys.len()) as f64 / (xs.len() + ys.len()) as f64;
    let p = (-2.0 * m * d * d).exp().clamp(0.0, 1.0);
    KsOutcome {
        statistic: d,
        p_value: p,
        n1: xs.len(),
        n2: ys.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }

    #[test]
    fn identical_samples_have_zero_statistic() {
        let xs = linspace(0.0, 1.0, 50);
        let out = ks_two_sample(&xs, &xs);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let xs = linspace(0.0, 1.0, 30);
        let ys = linspace(10.0, 11.0, 30);
        let out = ks_two_sample(&xs, &ys);
        assert_eq!(out.statistic, 1.0);
        assert!(out.p_value < 1e-6);
    }

    #[test]
    fn one_tailed_detects_direction() {
        // ys shifted up: ys stochastically greater.
        let xs = linspace(0.0, 1.0, 100);
        let ys = linspace(0.5, 1.5, 100);
        let greater = ks_one_tailed(&xs, &ys, Tail::Greater);
        let less = ks_one_tailed(&xs, &ys, Tail::Less);
        assert!(greater.rejects_at(0.05), "p = {}", greater.p_value);
        assert!(!less.rejects_at(0.05), "p = {}", less.p_value);
        assert!(greater.statistic > less.statistic);
    }

    #[test]
    fn one_tailed_statistics_cover_two_sided() {
        let xs = vec![1.0, 3.0, 5.0, 7.0, 9.0];
        let ys = vec![2.0, 4.0, 6.0, 8.0, 10.0];
        let two = ks_two_sample(&xs, &ys);
        let g = ks_one_tailed(&xs, &ys, Tail::Greater);
        let l = ks_one_tailed(&xs, &ys, Tail::Less);
        assert!((two.statistic - g.statistic.max(l.statistic)).abs() < 1e-12);
    }

    #[test]
    fn handles_ties_across_samples() {
        let xs = vec![1.0, 1.0, 2.0, 2.0];
        let ys = vec![1.0, 2.0, 2.0, 3.0];
        let out = ks_two_sample(&xs, &ys);
        // F1(1) = 0.5, F2(1) = 0.25 -> D at least 0.25.
        assert!((out.statistic - 0.25).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_rarely_rejects() {
        // Deterministic interleaved samples from the same grid: no rejection.
        let xs: Vec<f64> = (0..200).map(|i| (i * 2) as f64).collect();
        let ys: Vec<f64> = (0..200).map(|i| (i * 2 + 1) as f64).collect();
        let out = ks_two_sample(&xs, &ys);
        assert!(!out.rejects_at(0.05), "p = {}", out.p_value);
    }

    #[test]
    fn unequal_sample_sizes_supported() {
        let xs = linspace(0.0, 1.0, 17);
        let ys = linspace(0.0, 1.0, 211);
        let out = ks_two_sample(&xs, &ys);
        assert!(out.statistic < 0.2);
        assert_eq!(out.n1, 17);
        assert_eq!(out.n2, 211);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        ks_two_sample(&[], &[1.0]);
    }

    #[test]
    fn large_shift_yields_d_near_one_sided_paper_value() {
        // Mimic Fig. 8: a ~30% cv increase in duopoly groups with overlap,
        // should give a substantial D+ (paper reports 0.65).
        let monopoly: Vec<f64> = (0..100).map(|i| 10.0 + (i % 30) as f64 * 0.1).collect();
        let duopoly: Vec<f64> = (0..100).map(|i| 13.0 + (i % 30) as f64 * 0.1).collect();
        let out = ks_one_tailed(&monopoly, &duopoly, Tail::Greater);
        assert!(out.statistic > 0.5);
        assert!(out.rejects_at(0.05));
    }
}
