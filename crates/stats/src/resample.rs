//! Bootstrap resampling: confidence intervals for medians and other
//! statistics of the block-group samples.
//!
//! The paper reports point medians; bootstrap CIs let the repro harness say
//! how much sampling slack those medians carry at reduced scales.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-sided percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    pub point: f64,
    pub lo: f64,
    pub hi: f64,
    pub level: f64,
}

impl BootstrapCi {
    /// Whether the interval contains `v`.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile-bootstrap CI for an arbitrary statistic.
///
/// `stat` must return `Some` on any non-empty resample. Returns `None` when
/// the statistic is undefined on the original sample. Deterministic in
/// `seed`.
pub fn bootstrap_ci<F>(
    xs: &[f64],
    stat: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi>
where
    F: Fn(&[f64]) -> Option<f64>,
{
    assert!((0.5..1.0).contains(&level), "confidence level in [0.5, 1)");
    assert!(resamples >= 20, "too few resamples for a percentile CI");
    let point = stat(xs)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB007);
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[rng.gen_range(0..xs.len())];
        }
        if let Some(s) = stat(&buf) {
            stats.push(s);
        }
    }
    if stats.is_empty() {
        return None;
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| -> f64 {
        let h = q * (stats.len() - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        stats[lo] + (stats[hi] - stats[lo]) * (h - lo as f64)
    };
    Some(BootstrapCi {
        point,
        lo: idx(alpha),
        hi: idx(1.0 - alpha),
        level,
    })
}

/// Convenience: bootstrap CI of the median.
pub fn median_ci(xs: &[f64], resamples: usize, level: f64, seed: u64) -> Option<BootstrapCi> {
    bootstrap_ci(xs, crate::descriptive::median, resamples, level, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f64> {
        (0..200).map(|i| (i % 37) as f64 * 0.5 + 10.0).collect()
    }

    #[test]
    fn ci_brackets_the_point_estimate() {
        let xs = sample();
        let ci = median_ci(&xs, 500, 0.95, 1).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.contains(ci.point));
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let small: Vec<f64> = sample().into_iter().take(20).collect();
        let big: Vec<f64> = sample().iter().cycle().take(2000).copied().collect();
        let ci_small = median_ci(&small, 400, 0.95, 2).unwrap();
        let ci_big = median_ci(&big, 400, 0.95, 2).unwrap();
        assert!(
            ci_big.width() < ci_small.width(),
            "big {} vs small {}",
            ci_big.width(),
            ci_small.width()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let xs = sample();
        let a = median_ci(&xs, 300, 0.9, 7).unwrap();
        let b = median_ci(&xs, 300, 0.9, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constant_sample_has_zero_width() {
        let xs = vec![4.2; 50];
        let ci = median_ci(&xs, 100, 0.95, 0).unwrap();
        assert_eq!(ci.lo, 4.2);
        assert_eq!(ci.hi, 4.2);
    }

    #[test]
    fn undefined_statistic_is_none() {
        assert!(median_ci(&[], 100, 0.95, 0).is_none());
    }

    #[test]
    fn custom_statistic_works() {
        let xs = sample();
        let ci = bootstrap_ci(&xs, crate::descriptive::mean, 300, 0.95, 3).unwrap();
        let m = crate::descriptive::mean(&xs).unwrap();
        assert_eq!(ci.point, m);
        assert!(ci.contains(m));
    }

    #[test]
    #[should_panic(expected = "resamples")]
    fn too_few_resamples_rejected() {
        median_ci(&[1.0, 2.0], 5, 0.95, 0);
    }
}
