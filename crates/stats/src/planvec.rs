//! The paper's "plans vector" representation and L1 distance (§5.1, Fig. 6).
//!
//! An ISP's offerings in a city are summarized as a 30-dimensional vector:
//! dimension `d` holds the fraction of the city's block groups whose carriage
//! value, discretized with the ceiling operator, equals `d+1` Mbps/$. The
//! difference between two cities' offerings is the L1 norm between their
//! vectors (0 = identical mix, 2 = completely disjoint).

/// Number of discrete carriage-value dimensions. The paper uses 30 because
/// the maximum observed carriage value across all ISPs is 28.6 Mbps/$
/// (Table 1).
pub const PLAN_VECTOR_DIMS: usize = 30;

/// A block-group-weighted distribution over discretized carriage values.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanVector {
    weights: [f64; PLAN_VECTOR_DIMS],
    n_groups: usize,
}

impl PlanVector {
    /// Builds a plan vector from one carriage value per block group.
    ///
    /// Each value is discretized as `ceil(cv)` and clamped into
    /// `[1, PLAN_VECTOR_DIMS]`; each block group contributes equal weight.
    /// Returns `None` for an empty input (no served block groups).
    pub fn from_carriage_values(cvs: &[f64]) -> Option<Self> {
        if cvs.is_empty() {
            return None;
        }
        let mut weights = [0.0; PLAN_VECTOR_DIMS];
        let share = 1.0 / cvs.len() as f64;
        for &cv in cvs {
            assert!(
                cv.is_finite() && cv >= 0.0,
                "carriage value must be finite and >= 0, got {cv}"
            );
            let bucket = (cv.ceil() as usize).clamp(1, PLAN_VECTOR_DIMS);
            weights[bucket - 1] += share;
        }
        Some(Self {
            weights,
            n_groups: cvs.len(),
        })
    }

    /// The weight in dimension `d` (0-based; carriage value `d+1`).
    pub fn weight(&self, d: usize) -> f64 {
        self.weights[d]
    }

    /// All weights.
    pub fn weights(&self) -> &[f64; PLAN_VECTOR_DIMS] {
        &self.weights
    }

    /// Number of block groups aggregated into this vector.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Dimensions with non-zero weight, as `(carriage_value, fraction)`.
    pub fn support(&self) -> Vec<(usize, f64)> {
        self.weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0.0)
            .map(|(d, &w)| (d + 1, w))
            .collect()
    }
}

/// L1 distance between two plan vectors; ranges over `[0, 2]`.
pub fn l1_distance(a: &PlanVector, b: &PlanVector) -> f64 {
    a.weights
        .iter()
        .zip(b.weights.iter())
        .map(|(x, y)| (x - y).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let v = PlanVector::from_carriage_values(&[1.2, 5.5, 5.5, 11.0, 28.6]).unwrap();
        let total: f64 = v.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(v.n_groups(), 5);
    }

    #[test]
    fn ceil_discretization() {
        let v = PlanVector::from_carriage_values(&[0.3, 1.0, 1.1, 2.9]).unwrap();
        // 0.3 -> 1, 1.0 -> 1, 1.1 -> 2, 2.9 -> 3
        assert!((v.weight(0) - 0.5).abs() < 1e-12);
        assert!((v.weight(1) - 0.25).abs() < 1e-12);
        assert!((v.weight(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn values_above_range_clamp_to_top_bucket() {
        let v = PlanVector::from_carriage_values(&[45.0]).unwrap();
        assert_eq!(v.weight(PLAN_VECTOR_DIMS - 1), 1.0);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(PlanVector::from_carriage_values(&[]).is_none());
    }

    #[test]
    fn identical_vectors_have_zero_distance() {
        let v = PlanVector::from_carriage_values(&[3.0, 7.0, 12.0]).unwrap();
        assert_eq!(l1_distance(&v, &v), 0.0);
    }

    #[test]
    fn disjoint_vectors_have_distance_two() {
        let a = PlanVector::from_carriage_values(&[1.0, 2.0]).unwrap();
        let b = PlanVector::from_carriage_values(&[10.0, 20.0]).unwrap();
        assert!((l1_distance(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_triangle_holds() {
        let a = PlanVector::from_carriage_values(&[1.0, 5.0, 9.0]).unwrap();
        let b = PlanVector::from_carriage_values(&[2.0, 5.0, 14.0]).unwrap();
        let c = PlanVector::from_carriage_values(&[2.0, 6.0, 14.0, 20.0]).unwrap();
        assert_eq!(l1_distance(&a, &b), l1_distance(&b, &a));
        assert!(l1_distance(&a, &c) <= l1_distance(&a, &b) + l1_distance(&b, &c) + 1e-12);
    }

    #[test]
    fn paper_example_new_orleans_vs_wichita_shape() {
        // The paper's worked example: Cox offers cv ~10.5 and ~11.3 to
        // (35%, 12%) of New Orleans groups vs (4%, 21%) in Wichita. Build
        // small vectors with those shares (rest of mass at cv 14.6) and
        // check the L1 norm is in the reported ballpark (1.57 for a full
        // 30-dim comparison; ours only models three buckets so we check
        // ordering, not the exact figure).
        let nola: Vec<f64> = std::iter::empty()
            .chain(std::iter::repeat_n(10.5, 35))
            .chain(std::iter::repeat_n(11.3, 12))
            .chain(std::iter::repeat_n(14.6, 53))
            .collect();
        let wichita: Vec<f64> = std::iter::empty()
            .chain(std::iter::repeat_n(10.5, 4))
            .chain(std::iter::repeat_n(11.3, 21))
            .chain(std::iter::repeat_n(14.6, 75))
            .collect();
        let okc: Vec<f64> = std::iter::empty()
            .chain(std::iter::repeat_n(10.5, 12))
            .chain(std::iter::repeat_n(11.3, 6))
            .chain(std::iter::repeat_n(14.6, 82))
            .collect();
        let vn = PlanVector::from_carriage_values(&nola).unwrap();
        let vw = PlanVector::from_carriage_values(&wichita).unwrap();
        let vo = PlanVector::from_carriage_values(&okc).unwrap();
        // Oklahoma City and Wichita are the most similar pair, as in the paper.
        let d_ow = l1_distance(&vo, &vw);
        assert!(d_ow < l1_distance(&vn, &vw));
        assert!(d_ow < l1_distance(&vn, &vo));
    }
}
