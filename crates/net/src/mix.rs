//! Seeded hash mixing for derived randomness streams.
//!
//! Several subsystems need randomness that is a *pure function* of stable
//! identifiers — "the latency draw for this request", "the fault roll for
//! this endpoint at this instant" — rather than the next value of a shared
//! sequential stream. Pure derivation is what makes crash-resume
//! deterministic: a replayed campaign can skip completed work without
//! desynchronizing the draws that the remaining live work observes.
//!
//! [`mix64`] folds any number of words into one well-scrambled 64-bit
//! value using the splitmix64 finalizer, the same construction the retry
//! backoff jitter uses.

/// Folds `parts` into the seed with a splitmix64-style finalizer.
///
/// Pure and order-sensitive: `mix64(s, &[a, b]) != mix64(s, &[b, a])` in
/// general, and every distinct input tuple lands on an independent-looking
/// output.
pub fn mix64(seed: u64, parts: &[u64]) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        z = z.wrapping_add(p).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 30;
    }
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, for folding names (endpoints, addresses)
/// into [`mix64`] parts.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_pure() {
        assert_eq!(mix64(1, &[2, 3]), mix64(1, &[2, 3]));
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix64(1, &[2, 3]), mix64(1, &[3, 2]));
    }

    #[test]
    fn mix_decorrelates_seeds_and_parts() {
        assert_ne!(mix64(1, &[5]), mix64(2, &[5]));
        assert_ne!(mix64(1, &[5]), mix64(1, &[6]));
        assert_ne!(mix64(1, &[]), mix64(2, &[]));
    }

    #[test]
    fn mix_spreads_sequential_inputs() {
        // Consecutive keys should not land on consecutive outputs.
        let outs: Vec<u64> = (0..64).map(|i| mix64(9, &[i])).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collisions in a tiny key space");
        // Low bits should look balanced.
        let ones = outs.iter().filter(|o| *o & 1 == 1).count();
        assert!((16..=48).contains(&ones), "low-bit bias: {ones}/64");
    }

    #[test]
    fn fnv_distinguishes_strings() {
        assert_ne!(fnv1a(b"cox/nola"), fnv1a(b"att/nola"));
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }
}
