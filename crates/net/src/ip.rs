//! Residential IP pool: the simulated analogue of the Bright Data proxy
//! service the paper uses so queries do not all originate from one
//! non-residential address (§4.1).

use crate::mix::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Domain separator so derived assignment never collides with other
/// consumers of the pool seed.
const ASSIGN_SALT: u64 = 0x1b_9d5a_00d1;

/// A simulated IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimIp(pub u32);

impl SimIp {
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for SimIp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// How the pool hands out addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationPolicy {
    /// Cycle through the pool in order; maximally even spread.
    RoundRobin,
    /// Independent uniform draw per checkout.
    Random,
}

/// A finite pool of residential addresses with a rotation policy.
#[derive(Debug, Clone)]
pub struct IpPool {
    addrs: Vec<SimIp>,
    policy: RotationPolicy,
    cursor: usize,
    rng: StdRng,
    assign_salt: u64,
    leases: Vec<u32>,
    n_leased: usize,
}

impl IpPool {
    /// Builds a pool of `size` distinct addresses inside the 100.64/10
    /// carrier-grade NAT block (so they can't collide with anything else in
    /// the simulation), deterministically from `seed`.
    pub fn residential(size: usize, policy: RotationPolicy, seed: u64) -> Self {
        assert!(size >= 1, "pool must hold at least one address");
        assert!(size <= 1 << 22, "pool exceeds the 100.64/10 block");
        let mut rng = StdRng::seed_from_u64(seed);
        // Sample distinct host offsets via a partial shuffle of the block.
        let mut offsets: Vec<u32> = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::with_capacity(size);
        while offsets.len() < size {
            let off: u32 = rng.gen_range(0..(1 << 22));
            if seen.insert(off) {
                offsets.push(off);
            }
        }
        let base = u32::from_be_bytes([100, 64, 0, 0]);
        let addrs: Vec<SimIp> = offsets.into_iter().map(|o| SimIp(base + o)).collect();
        let leases = vec![0; addrs.len()];
        Self {
            addrs,
            policy,
            cursor: 0,
            rng,
            assign_salt: seed,
            leases,
            n_leased: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Checks out the next address according to the rotation policy.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> SimIp {
        match self.policy {
            RotationPolicy::RoundRobin => {
                let ip = self.addrs[self.cursor];
                self.cursor = (self.cursor + 1) % self.addrs.len();
                ip
            }
            RotationPolicy::Random => {
                let i = self.rng.gen_range(0..self.addrs.len());
                self.addrs[i]
            }
        }
    }

    /// All addresses in the pool.
    pub fn addrs(&self) -> &[SimIp] {
        &self.addrs
    }

    /// Pure derived assignment: maps `key` to an address as a function of
    /// the pool seed and `key` alone, independent of checkout history.
    ///
    /// This is what a resumable campaign uses — the address a job's attempt
    /// sees must not depend on how many *other* checkouts happened before
    /// it, or a resumed run that skips completed jobs would route the
    /// remaining work through different source addresses.
    pub fn assign(&self, key: u64) -> SimIp {
        let i = (mix64(self.assign_salt ^ ASSIGN_SALT, &[key]) % self.addrs.len() as u64) as usize;
        self.addrs[i]
    }

    /// Checks out the derived address for `key`, preferring an unleased
    /// slot.
    ///
    /// Starting from the derived index, probes forward (wrapping) for the
    /// first address with no outstanding lease. When every address is
    /// leased — more concurrent workers than pool slots — the pool does
    /// not spin or panic: it degrades to sharing the derived address and
    /// records a second lease on it. [`release`](Self::release) must be
    /// called once per checkout.
    pub fn checkout(&mut self, key: u64) -> SimIp {
        let n = self.addrs.len();
        let start = (mix64(self.assign_salt ^ ASSIGN_SALT, &[key]) % n as u64) as usize;
        // Probe forward (wrapping) for a free slot; under exhaustion every
        // slot is taken and the probe wraps back to `start`, so checkout
        // degrades to sharing the derived address instead of spinning.
        let i = (0..n)
            .map(|d| (start + d) % n)
            .find(|&j| self.leases[j] == 0)
            .unwrap_or(start);
        self.leases[i] += 1;
        self.n_leased += 1;
        self.addrs[i]
    }

    /// Returns a leased address to the pool. Unknown or unleased addresses
    /// are ignored rather than corrupting the lease table.
    pub fn release(&mut self, ip: SimIp) {
        if let Some(i) = self.addrs.iter().position(|&a| a == ip) {
            if self.leases[i] > 0 {
                self.leases[i] -= 1;
                self.n_leased -= 1;
            }
        }
    }

    /// Number of outstanding leases (may exceed `len()` under exhaustion).
    pub fn outstanding_leases(&self) -> usize {
        self.n_leased
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_addresses_are_distinct_and_in_cgn_block() {
        let pool = IpPool::residential(500, RotationPolicy::RoundRobin, 1);
        let mut set = std::collections::HashSet::new();
        for ip in pool.addrs() {
            assert!(set.insert(*ip), "duplicate {ip}");
            let [a, b, _, _] = ip.octets();
            assert_eq!(a, 100);
            assert!((64..128).contains(&b), "{ip} outside 100.64/10");
        }
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let mut pool = IpPool::residential(5, RotationPolicy::RoundRobin, 2);
        let first: Vec<SimIp> = (0..5).map(|_| pool.next()).collect();
        let second: Vec<SimIp> = (0..5).map(|_| pool.next()).collect();
        assert_eq!(first, second);
        assert_eq!(
            first.iter().collect::<std::collections::HashSet<_>>().len(),
            5
        );
    }

    #[test]
    fn random_policy_is_deterministic_in_seed() {
        let mut a = IpPool::residential(50, RotationPolicy::Random, 3);
        let mut b = IpPool::residential(50, RotationPolicy::Random, 3);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn random_policy_spreads_load() {
        let mut pool = IpPool::residential(10, RotationPolicy::Random, 4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..1000 {
            *counts.entry(pool.next()).or_insert(0usize) += 1;
        }
        assert!(counts.len() >= 9, "nearly all addresses used");
        assert!(counts.values().all(|&c| c < 300), "no address dominates");
    }

    #[test]
    fn display_formats_dotted_quad() {
        assert_eq!(
            SimIp(u32::from_be_bytes([100, 64, 1, 2])).to_string(),
            "100.64.1.2"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        IpPool::residential(0, RotationPolicy::Random, 0);
    }

    #[test]
    fn assign_is_pure_and_history_independent() {
        let mut pool = IpPool::residential(7, RotationPolicy::RoundRobin, 11);
        let before: Vec<SimIp> = (0..20).map(|k| pool.assign(k)).collect();
        // Churn the mutable state heavily.
        for k in 0..50 {
            let ip = pool.checkout(k);
            if k % 3 == 0 {
                pool.release(ip);
            }
            pool.next();
        }
        let after: Vec<SimIp> = (0..20).map(|k| pool.assign(k)).collect();
        assert_eq!(before, after, "assign must ignore checkout history");
    }

    #[test]
    fn checkout_prefers_free_slots_in_small_pool() {
        // 4 addresses, 4 workers: distinct keys must land on distinct
        // addresses while free slots remain, whatever the derived indices.
        let mut pool = IpPool::residential(4, RotationPolicy::RoundRobin, 5);
        let got: Vec<SimIp> = (0..4).map(|k| pool.checkout(k)).collect();
        let distinct: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(distinct.len(), 4, "free slots skipped: {got:?}");
        assert_eq!(pool.outstanding_leases(), 4);
    }

    #[test]
    fn checkout_survives_exhaustion_by_sharing() {
        // 3 addresses, 16 workers: the pool must neither panic nor loop;
        // past exhaustion it shares addresses and keeps counting leases.
        let mut pool = IpPool::residential(3, RotationPolicy::Random, 6);
        let got: Vec<SimIp> = (0..16).map(|k| pool.checkout(k)).collect();
        assert_eq!(pool.outstanding_leases(), 16);
        let distinct: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(distinct.len(), 3, "all addresses pressed into service");
        // Releasing every lease drains the table completely.
        for ip in got {
            pool.release(ip);
        }
        assert_eq!(pool.outstanding_leases(), 0);
        // And the pool recovers: fresh checkouts spread out again.
        let again: Vec<SimIp> = (0..3).map(|k| pool.checkout(k)).collect();
        assert_eq!(
            again.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn release_of_foreign_or_unleased_ip_is_harmless() {
        let mut pool = IpPool::residential(2, RotationPolicy::RoundRobin, 7);
        let outside = SimIp(u32::from_be_bytes([10, 0, 0, 1]));
        pool.release(outside);
        let inside = pool.addrs()[0];
        pool.release(inside); // never checked out
        assert_eq!(pool.outstanding_leases(), 0);
        let ip = pool.checkout(0);
        pool.release(ip);
        pool.release(ip); // double release
        assert_eq!(pool.outstanding_leases(), 0);
    }
}
