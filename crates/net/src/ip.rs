//! Residential IP pool: the simulated analogue of the Bright Data proxy
//! service the paper uses so queries do not all originate from one
//! non-residential address (§4.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A simulated IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimIp(pub u32);

impl SimIp {
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for SimIp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// How the pool hands out addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationPolicy {
    /// Cycle through the pool in order; maximally even spread.
    RoundRobin,
    /// Independent uniform draw per checkout.
    Random,
}

/// A finite pool of residential addresses with a rotation policy.
#[derive(Debug, Clone)]
pub struct IpPool {
    addrs: Vec<SimIp>,
    policy: RotationPolicy,
    cursor: usize,
    rng: StdRng,
}

impl IpPool {
    /// Builds a pool of `size` distinct addresses inside the 100.64/10
    /// carrier-grade NAT block (so they can't collide with anything else in
    /// the simulation), deterministically from `seed`.
    pub fn residential(size: usize, policy: RotationPolicy, seed: u64) -> Self {
        assert!(size >= 1, "pool must hold at least one address");
        assert!(size <= 1 << 22, "pool exceeds the 100.64/10 block");
        let mut rng = StdRng::seed_from_u64(seed);
        // Sample distinct host offsets via a partial shuffle of the block.
        let mut offsets: Vec<u32> = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::with_capacity(size);
        while offsets.len() < size {
            let off: u32 = rng.gen_range(0..(1 << 22));
            if seen.insert(off) {
                offsets.push(off);
            }
        }
        let base = u32::from_be_bytes([100, 64, 0, 0]);
        let addrs = offsets.into_iter().map(|o| SimIp(base + o)).collect();
        Self {
            addrs,
            policy,
            cursor: 0,
            rng,
        }
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Checks out the next address according to the rotation policy.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> SimIp {
        match self.policy {
            RotationPolicy::RoundRobin => {
                let ip = self.addrs[self.cursor];
                self.cursor = (self.cursor + 1) % self.addrs.len();
                ip
            }
            RotationPolicy::Random => {
                let i = self.rng.gen_range(0..self.addrs.len());
                self.addrs[i]
            }
        }
    }

    /// All addresses in the pool.
    pub fn addrs(&self) -> &[SimIp] {
        &self.addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_addresses_are_distinct_and_in_cgn_block() {
        let pool = IpPool::residential(500, RotationPolicy::RoundRobin, 1);
        let mut set = std::collections::HashSet::new();
        for ip in pool.addrs() {
            assert!(set.insert(*ip), "duplicate {ip}");
            let [a, b, _, _] = ip.octets();
            assert_eq!(a, 100);
            assert!((64..128).contains(&b), "{ip} outside 100.64/10");
        }
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let mut pool = IpPool::residential(5, RotationPolicy::RoundRobin, 2);
        let first: Vec<SimIp> = (0..5).map(|_| pool.next()).collect();
        let second: Vec<SimIp> = (0..5).map(|_| pool.next()).collect();
        assert_eq!(first, second);
        assert_eq!(
            first.iter().collect::<std::collections::HashSet<_>>().len(),
            5
        );
    }

    #[test]
    fn random_policy_is_deterministic_in_seed() {
        let mut a = IpPool::residential(50, RotationPolicy::Random, 3);
        let mut b = IpPool::residential(50, RotationPolicy::Random, 3);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn random_policy_spreads_load() {
        let mut pool = IpPool::residential(10, RotationPolicy::Random, 4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..1000 {
            *counts.entry(pool.next()).or_insert(0usize) += 1;
        }
        assert!(counts.len() >= 9, "nearly all addresses used");
        assert!(counts.values().all(|&c| c < 300), "no address dominates");
    }

    #[test]
    fn display_formats_dotted_quad() {
        assert_eq!(
            SimIp(u32::from_be_bytes([100, 64, 1, 2])).to_string(),
            "100.64.1.2"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        IpPool::residential(0, RotationPolicy::Random, 0);
    }
}
