//! Simulated-network substrate for the Decoding-the-Divide reproduction.
//!
//! The paper's measurements run over the live web: a Selenium client talks to
//! ISP web servers through a pool of residential IPs. None of that substrate
//! is available offline, so this crate rebuilds the pieces the measurement
//! pipeline actually exercises, in the sans-IO, event-driven style of
//! embedded TCP/IP stacks:
//!
//! * **virtual time** ([`clock`]) — all latencies are in simulated
//!   milliseconds, so "query resolution time" (Fig. 2b) is measured, not
//!   asserted, and fully reproducible;
//! * **latency models** ([`latency`]) — lognormal service/network delays
//!   parameterized per endpoint;
//! * **framing** ([`frame`]) — a length-prefixed codec over [`bytes`]
//!   buffers, the wire form of every simulated exchange;
//! * **HTTP-lite** ([`http`]) — a small request/response message layer with
//!   headers, cookies and status codes, round-trippable through the framing
//!   codec;
//! * **IP pool** ([`ip`]) — the residential-proxy pool analogue, with
//!   rotation policies;
//! * **fault injection** ([`fault`]) — seeded schedules of timeouts,
//!   connection resets, rate-limit storms and server brownouts on the
//!   virtual timeline, for exercising retry machinery reproducibly;
//! * **event queue** ([`sim`]) — a discrete-event scheduler used by the
//!   orchestrator to interleave many concurrent "containers" on one virtual
//!   timeline;
//! * **transport** ([`transport`]) — the endpoint registry binding client
//!   requests to server services, accounting for network + processing time.
//!
//! Determinism: every random draw flows from a caller-provided seed.

pub mod clock;
pub mod fault;
pub mod frame;
pub mod http;
pub mod ip;
pub mod latency;
pub mod mix;
pub mod sim;
pub mod transport;

pub use clock::{SimDuration, SimTime};
pub use fault::{FaultKind, FaultPlan, FaultWindow};
pub use frame::{FrameCodec, FrameError};
pub use http::{Method, Request, Response, Status};
pub use ip::{IpPool, RotationPolicy, SimIp};
pub use latency::LatencyModel;
pub use mix::{fnv1a, mix64};
pub use sim::EventQueue;
pub use transport::{Endpoint, Exchange, Service, Transport, TransportError};
