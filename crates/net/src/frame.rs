//! Length-prefixed framing over byte buffers.
//!
//! Every simulated exchange is serialized through this codec: a 4-byte
//! big-endian length followed by the payload. The codec is incremental —
//! `decode` consumes at most one complete frame and leaves partial input in
//! the buffer — mirroring how a real stream protocol is framed on top of
//! TCP.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Maximum frame payload we accept (1 MiB). Real BAT pages are tens of
/// kilobytes; anything bigger is a protocol error, not a bigger buffer.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Errors from the framing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME_LEN}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Stateless encoder/decoder for length-prefixed frames.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameCodec;

impl FrameCodec {
    /// Appends one frame containing `payload` to `dst`.
    ///
    /// # Panics
    /// Panics if `payload` exceeds [`MAX_FRAME_LEN`]; producing an oversized
    /// frame is a local bug, not a peer error.
    pub fn encode(&self, payload: &[u8], dst: &mut BytesMut) {
        assert!(
            payload.len() <= MAX_FRAME_LEN,
            "frame payload too large: {}",
            payload.len()
        );
        dst.reserve(4 + payload.len());
        dst.put_u32(payload.len() as u32);
        dst.put_slice(payload);
    }

    /// Tries to extract one complete frame from `src`.
    ///
    /// Returns `Ok(Some(payload))` and consumes the frame when one is fully
    /// buffered, `Ok(None)` when more bytes are needed (nothing consumed),
    /// or `Err` when the peer declared an oversized frame.
    pub fn decode(&self, src: &mut BytesMut) -> Result<Option<Bytes>, FrameError> {
        if src.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([src[0], src[1], src[2], src[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(len));
        }
        if src.len() < 4 + len {
            // Incomplete: reserve so the caller's next read can complete it.
            src.reserve(4 + len - src.len());
            return Ok(None);
        }
        src.advance(4);
        Ok(Some(src.split_to(len).freeze()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let codec = FrameCodec;
        let mut buf = BytesMut::new();
        codec.encode(b"hello world", &mut buf);
        let out = codec.decode(&mut buf).unwrap().unwrap();
        assert_eq!(&out[..], b"hello world");
        assert!(buf.is_empty());
    }

    #[test]
    fn decode_empty_buffer_needs_more() {
        let mut buf = BytesMut::new();
        assert_eq!(FrameCodec.decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn partial_header_needs_more() {
        let mut buf = BytesMut::from(&[0u8, 0, 0][..]);
        assert_eq!(FrameCodec.decode(&mut buf).unwrap(), None);
        assert_eq!(buf.len(), 3, "nothing consumed");
    }

    #[test]
    fn partial_payload_needs_more_and_consumes_nothing() {
        let codec = FrameCodec;
        let mut full = BytesMut::new();
        codec.encode(b"abcdef", &mut full);
        let mut partial = BytesMut::from(&full[..7]); // header + 3 bytes
        assert_eq!(codec.decode(&mut partial).unwrap(), None);
        assert_eq!(partial.len(), 7);
    }

    #[test]
    fn multiple_frames_decode_in_order() {
        let codec = FrameCodec;
        let mut buf = BytesMut::new();
        codec.encode(b"one", &mut buf);
        codec.encode(b"two", &mut buf);
        codec.encode(b"", &mut buf);
        assert_eq!(&codec.decode(&mut buf).unwrap().unwrap()[..], b"one");
        assert_eq!(&codec.decode(&mut buf).unwrap().unwrap()[..], b"two");
        assert_eq!(&codec.decode(&mut buf).unwrap().unwrap()[..], b"");
        assert_eq!(codec.decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32((MAX_FRAME_LEN + 1) as u32);
        buf.put_slice(b"x");
        assert_eq!(
            FrameCodec.decode(&mut buf),
            Err(FrameError::Oversized(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn incremental_byte_by_byte_feed() {
        let codec = FrameCodec;
        let mut encoded = BytesMut::new();
        codec.encode(b"drip-fed payload", &mut encoded);
        let mut buf = BytesMut::new();
        let mut out = None;
        for b in encoded.iter().copied().collect::<Vec<_>>() {
            buf.put_u8(b);
            if let Some(frame) = codec.decode(&mut buf).unwrap() {
                out = Some(frame);
            }
        }
        assert_eq!(&out.unwrap()[..], b"drip-fed payload");
    }
}
