//! The endpoint registry binding clients to simulated servers.
//!
//! A [`Transport`] owns named [`Endpoint`]s, each pairing a [`Service`]
//! implementation (the server's state machine) with a network latency model.
//! `round_trip` carries a request to the server and its response back,
//! charging request-leg latency, server processing time and response-leg
//! latency on the virtual clock. Every message really is serialized through
//! the framing codec and wire format — the server parses what the client
//! sent, not a shared in-memory object — so protocol bugs surface here, not
//! in production figures.

use crate::clock::{SimDuration, SimTime};
use crate::fault::{FaultAction, FaultPlan};
use crate::frame::FrameCodec;
use crate::http::{Request, Response, Status};
use crate::ip::SimIp;
use crate::latency::LatencyModel;
use crate::mix::{fnv1a, mix64};
use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;

/// What a service returns for one request: the response plus how long the
/// server spent producing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Exchange {
    pub response: Response,
    pub processing: SimDuration,
}

/// A simulated server: a deterministic state machine fed parsed requests.
pub trait Service {
    /// Handles one request arriving from `peer` at virtual time `now`.
    ///
    /// `rng` is the transport's seeded stream; services draw processing
    /// times and template randomness from it so runs stay reproducible.
    fn handle(&mut self, peer: SimIp, req: &Request, now: SimTime, rng: &mut StdRng) -> Exchange;
}

/// A registered server endpoint.
pub struct Endpoint {
    service: Box<dyn Service + Send>,
    /// One-way network latency between any client and this endpoint.
    network: LatencyModel,
}

impl Endpoint {
    pub fn new(service: Box<dyn Service + Send>, network: LatencyModel) -> Self {
        Self { service, network }
    }
}

/// Transport-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No endpoint registered under this name.
    UnknownEndpoint(String),
    /// The peer's bytes did not parse as a wire message.
    Garbled(String),
    /// An injected fault swallowed the request; the client waited `after`
    /// of virtual time before giving up.
    Timeout { after: SimDuration },
    /// An injected fault tore the connection down `after` into the
    /// exchange.
    ConnectionReset { after: SimDuration },
    /// An injected fault hung the session forever: no response, no
    /// timeout. The caller's worker is stuck until a watchdog reclaims it,
    /// so no elapsed time can be charged here.
    Stalled,
}

impl TransportError {
    /// Whether a retry could plausibly succeed. Timeouts and resets are
    /// transient network conditions; unknown endpoints and garbled frames
    /// are logic errors that no retry will fix. A stall is not transient
    /// *within* a query — the session is gone and only the orchestrator's
    /// watchdog/requeue machinery recovers the job.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            TransportError::Timeout { .. } | TransportError::ConnectionReset { .. }
        )
    }

    /// Virtual time the client burned before this error surfaced.
    pub fn elapsed(&self) -> SimDuration {
        match self {
            TransportError::Timeout { after } | TransportError::ConnectionReset { after } => *after,
            _ => SimDuration::ZERO,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownEndpoint(n) => write!(f, "no endpoint named {n:?}"),
            TransportError::Garbled(e) => write!(f, "garbled wire message: {e}"),
            TransportError::Timeout { after } => write!(f, "request timed out after {after}"),
            TransportError::ConnectionReset { after } => {
                write!(f, "connection reset after {after}")
            }
            TransportError::Stalled => write!(f, "session stalled indefinitely"),
        }
    }
}

impl std::error::Error for TransportError {}

/// The simulated network: endpoints plus a seeded randomness stream.
pub struct Transport {
    endpoints: HashMap<String, Endpoint>,
    seed: u64,
    rng: StdRng,
    /// Derive each round trip's randomness from `(seed, endpoint, src,
    /// now)` instead of the shared sequential stream. See [`Self::hermetic`].
    hermetic: bool,
    codec: FrameCodec,
    faults: Option<FaultPlan>,
    requests: u64,
}

impl Transport {
    pub fn new(seed: u64) -> Self {
        Self {
            endpoints: HashMap::new(),
            seed,
            rng: StdRng::seed_from_u64(seed),
            hermetic: false,
            codec: FrameCodec,
            faults: None,
            requests: 0,
        }
    }

    /// A transport whose per-request randomness (latency draws, server
    /// processing times, transient-failure rolls) is a pure function of
    /// `(seed, endpoint, source IP, virtual time)` rather than a shared
    /// sequential stream.
    ///
    /// This is the property crash-resume determinism stands on: a resumed
    /// campaign replays completed attempts from the journal without touching
    /// the transport, and hermetic derivation guarantees the remaining live
    /// attempts still observe exactly the draws they would have seen in an
    /// uninterrupted run. (Two requests with identical endpoint, source and
    /// millisecond would share draws; distinct per-attempt source IPs make
    /// that vanishingly rare and harmless — a correlated latency sample.)
    pub fn hermetic(seed: u64) -> Self {
        let mut t = Self::new(seed);
        t.hermetic = true;
        t
    }

    /// Whether this transport derives per-request randomness hermetically.
    pub fn is_hermetic(&self) -> bool {
        self.hermetic
    }

    /// Requests carried (or preempted by faults) since construction.
    pub fn requests_sent(&self) -> u64 {
        self.requests
    }

    /// Registers (or replaces) an endpoint under `name`.
    pub fn register(&mut self, name: impl Into<String>, endpoint: Endpoint) {
        self.endpoints.insert(name.into(), endpoint);
    }

    pub fn has_endpoint(&self, name: &str) -> bool {
        self.endpoints.contains_key(name)
    }

    /// Attaches (or replaces) the fault-injection schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes any attached fault schedule.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Sends `req` from `src` to `endpoint` at virtual time `now`.
    ///
    /// Returns the parsed response and the full round-trip duration
    /// (request leg + server processing + response leg).
    pub fn round_trip(
        &mut self,
        endpoint: &str,
        src: SimIp,
        req: &Request,
        now: SimTime,
    ) -> Result<(Response, SimDuration), TransportError> {
        let ep = self
            .endpoints
            .get_mut(endpoint)
            .ok_or_else(|| TransportError::UnknownEndpoint(endpoint.to_string()))?;
        self.requests += 1;

        // In hermetic mode every draw for this exchange comes from a stream
        // derived from the request's stable coordinates.
        let mut derived;
        let rng: &mut StdRng = if self.hermetic {
            derived = StdRng::seed_from_u64(mix64(
                self.seed,
                &[fnv1a(endpoint.as_bytes()), src.0 as u64, now.as_millis()],
            ));
            &mut derived
        } else {
            &mut self.rng
        };

        // Consult the fault schedule before any work happens: preempting
        // faults never reach the service, so a timed-out request leaves no
        // server-side trace (no session, no rate-limit charge).
        let mut degrade: Option<(f64, bool)> = None;
        if let Some(plan) = &mut self.faults {
            match plan.intercept(endpoint, now) {
                Some(FaultAction::Timeout { after }) => {
                    return Err(TransportError::Timeout { after });
                }
                Some(FaultAction::Stall) => {
                    return Err(TransportError::Stalled);
                }
                Some(FaultAction::Reset { after }) => {
                    return Err(TransportError::ConnectionReset { after });
                }
                Some(FaultAction::SyntheticRateLimit) => {
                    // The anti-bot layer answers from the edge: one network
                    // round trip, no server processing.
                    let leg_out = ep.network.sample(rng);
                    let leg_back = ep.network.sample(rng);
                    return Ok((Response::new(Status::TooManyRequests), leg_out + leg_back));
                }
                Some(FaultAction::Degrade {
                    latency_factor,
                    fail,
                }) => degrade = Some((latency_factor, fail)),
                None => {}
            }
        }

        // Request leg: encode, frame, decode, parse — the server sees only
        // what survived the wire.
        let mut buf = BytesMut::new();
        self.codec.encode(req.to_wire().as_bytes(), &mut buf);
        let frame = self
            .codec
            .decode(&mut buf)
            .map_err(|e| TransportError::Garbled(e.to_string()))?
            // lint:allow(T2): a frame we just encoded always decodes complete
            .expect("frame just encoded is complete");
        let wire =
            std::str::from_utf8(&frame).map_err(|e| TransportError::Garbled(e.to_string()))?;
        let parsed_req =
            Request::from_wire(wire).map_err(|e| TransportError::Garbled(e.to_string()))?;

        let leg_out = ep.network.sample(rng);
        let arrival = now + leg_out;
        let Exchange {
            response,
            processing,
        } = ep.service.handle(src, &parsed_req, arrival, rng);

        // Response leg through the same codec path.
        let mut rbuf = BytesMut::new();
        self.codec.encode(response.to_wire().as_bytes(), &mut rbuf);
        let rframe = self
            .codec
            .decode(&mut rbuf)
            .map_err(|e| TransportError::Garbled(e.to_string()))?
            // lint:allow(T2): a frame we just encoded always decodes complete
            .expect("frame just encoded is complete");
        let rwire =
            std::str::from_utf8(&rframe).map_err(|e| TransportError::Garbled(e.to_string()))?;
        let parsed_resp =
            Response::from_wire(rwire).map_err(|e| TransportError::Garbled(e.to_string()))?;

        let leg_back = ep.network.sample(rng);
        let mut elapsed = leg_out + processing + leg_back;

        // Brownout: the work already happened (and mutated server state),
        // but it happened slowly, and under load some renders die as 500s.
        if let Some((latency_factor, fail)) = degrade {
            elapsed = SimDuration::from_secs_f64(elapsed.as_secs_f64() * latency_factor);
            if fail {
                return Ok((Response::new(Status::ServerError), elapsed));
            }
        }

        Ok((parsed_resp, elapsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Method, Status};

    /// Echoes the request body back, with a fixed processing time.
    struct Echo;

    impl Service for Echo {
        fn handle(
            &mut self,
            peer: SimIp,
            req: &Request,
            _now: SimTime,
            _rng: &mut StdRng,
        ) -> Exchange {
            Exchange {
                response: Response::ok(format!("{} said: {}", peer, req.body)),
                processing: SimDuration::from_millis(100),
            }
        }
    }

    /// Counts requests; used to show server state persists across calls.
    struct Counter(u32);

    impl Service for Counter {
        fn handle(&mut self, _: SimIp, _: &Request, _: SimTime, _: &mut StdRng) -> Exchange {
            self.0 += 1;
            Exchange {
                response: Response::ok(self.0.to_string()),
                processing: SimDuration::ZERO,
            }
        }
    }

    fn client_ip() -> SimIp {
        SimIp(u32::from_be_bytes([100, 64, 0, 1]))
    }

    #[test]
    fn round_trip_delivers_parsed_messages() {
        let mut t = Transport::new(1);
        t.register(
            "att",
            Endpoint::new(
                Box::new(Echo),
                LatencyModel::constant(SimDuration::from_millis(50)),
            ),
        );
        let req = Request::post("/check", "hello");
        let (resp, elapsed) = t
            .round_trip("att", client_ip(), &req, SimTime::ZERO)
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "100.64.0.1 said: hello");
        // 50 out + 100 processing + 50 back.
        assert_eq!(elapsed.as_millis(), 200);
    }

    #[test]
    fn unknown_endpoint_is_an_error() {
        let mut t = Transport::new(1);
        let err = t
            .round_trip("verizon", client_ip(), &Request::get("/"), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, TransportError::UnknownEndpoint(_)));
    }

    #[test]
    fn server_state_persists_between_requests() {
        let mut t = Transport::new(2);
        t.register(
            "cox",
            Endpoint::new(
                Box::new(Counter(0)),
                LatencyModel::constant(SimDuration::ZERO),
            ),
        );
        for expect in 1..=3 {
            let (resp, _) = t
                .round_trip("cox", client_ip(), &Request::get("/"), SimTime::ZERO)
                .unwrap();
            assert_eq!(resp.body, expect.to_string());
        }
    }

    #[test]
    fn latency_variance_flows_from_transport_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut t = Transport::new(seed);
            t.register(
                "isp",
                Endpoint::new(
                    Box::new(Echo),
                    LatencyModel::new(SimDuration::from_millis(500), 0.5),
                ),
            );
            (0..10)
                .map(|_| {
                    t.round_trip("isp", client_ip(), &Request::get("/"), SimTime::ZERO)
                        .unwrap()
                        .1
                        .as_millis()
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same timings");
        assert_ne!(run(7), run(8), "different seed, different timings");
    }

    #[test]
    fn fault_timeout_preempts_the_service() {
        use crate::fault::FaultPlan;
        let mut t = Transport::new(5);
        t.register(
            "cox",
            Endpoint::new(
                Box::new(Counter(0)),
                LatencyModel::constant(SimDuration::ZERO),
            ),
        );
        t.set_fault_plan(FaultPlan::new(1).lossy_network(
            SimTime::ZERO,
            SimTime::from_millis(10_000),
            1.0,
        ));
        let err = t
            .round_trip("cox", client_ip(), &Request::get("/"), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout { .. }));
        assert!(err.is_transient());
        assert!(err.elapsed() > SimDuration::ZERO);

        // After the window the very same transport works, and the counter
        // proves the faulted request never reached the server.
        let (resp, _) = t
            .round_trip(
                "cox",
                client_ip(),
                &Request::get("/"),
                SimTime::from_millis(10_000),
            )
            .unwrap();
        assert_eq!(resp.body, "1");
    }

    #[test]
    fn rate_limit_storm_synthesizes_429_at_the_edge() {
        use crate::fault::FaultPlan;
        let mut t = Transport::new(6);
        t.register(
            "cox",
            Endpoint::new(
                Box::new(Counter(0)),
                LatencyModel::constant(SimDuration::from_millis(40)),
            ),
        );
        t.set_fault_plan(FaultPlan::new(2).rate_limit_storm(
            "cox",
            SimTime::ZERO,
            SimTime::from_millis(1000),
        ));
        let (resp, elapsed) = t
            .round_trip("cox", client_ip(), &Request::get("/"), SimTime::ZERO)
            .unwrap();
        assert_eq!(resp.status, Status::TooManyRequests);
        assert_eq!(elapsed.as_millis(), 80, "two legs, no processing");
    }

    #[test]
    fn brownout_stretches_latency_and_can_500() {
        use crate::fault::FaultPlan;
        let clean = {
            let mut t = Transport::new(7);
            t.register(
                "e",
                Endpoint::new(
                    Box::new(Echo),
                    LatencyModel::constant(SimDuration::from_millis(50)),
                ),
            );
            t.round_trip("e", client_ip(), &Request::get("/"), SimTime::ZERO)
                .unwrap()
                .1
        };
        let mut t = Transport::new(7);
        t.register(
            "e",
            Endpoint::new(
                Box::new(Echo),
                LatencyModel::constant(SimDuration::from_millis(50)),
            ),
        );
        t.set_fault_plan(FaultPlan::new(3).brownout(
            "e",
            SimTime::ZERO,
            SimTime::from_millis(1000),
            4.0,
            0.0,
        ));
        let (resp, elapsed) = t
            .round_trip("e", client_ip(), &Request::get("/"), SimTime::ZERO)
            .unwrap();
        assert_eq!(resp.status, Status::Ok, "error_rate 0 never 500s");
        assert_eq!(elapsed.as_millis(), clean.as_millis() * 4);

        // With error_rate 1.0 every browned-out request dies as a 500.
        t.set_fault_plan(FaultPlan::new(4).brownout(
            "e",
            SimTime::ZERO,
            SimTime::from_millis(1000),
            1.0,
            1.0,
        ));
        let (resp, _) = t
            .round_trip("e", client_ip(), &Request::get("/"), SimTime::ZERO)
            .unwrap();
        assert_eq!(resp.status, Status::ServerError);
    }

    #[test]
    fn stall_fault_hangs_without_charging_time() {
        use crate::fault::FaultPlan;
        let mut t = Transport::new(9);
        t.register(
            "e",
            Endpoint::new(
                Box::new(Counter(0)),
                LatencyModel::constant(SimDuration::ZERO),
            ),
        );
        t.set_fault_plan(FaultPlan::new(1).stalls(
            "e",
            SimTime::ZERO,
            SimTime::from_millis(1000),
            1.0,
        ));
        let err = t
            .round_trip("e", client_ip(), &Request::get("/"), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, TransportError::Stalled);
        assert!(!err.is_transient(), "stalls need the watchdog, not a retry");
        assert_eq!(err.elapsed(), SimDuration::ZERO);
        // The hung request never reached the service...
        let (resp, _) = t
            .round_trip(
                "e",
                client_ip(),
                &Request::get("/"),
                SimTime::from_millis(1000),
            )
            .unwrap();
        assert_eq!(resp.body, "1");
        // ...but both exchanges count as carried requests.
        assert_eq!(t.requests_sent(), 2);
    }

    #[test]
    fn hermetic_draws_depend_on_request_coordinates_not_history() {
        let build = || {
            let mut t = Transport::hermetic(11);
            t.register(
                "isp",
                Endpoint::new(
                    Box::new(Echo),
                    LatencyModel::new(SimDuration::from_millis(500), 0.5),
                ),
            );
            t
        };
        // Same coordinates, different amounts of prior traffic: identical.
        let mut a = build();
        let probe = |t: &mut Transport, ms: u64| {
            t.round_trip(
                "isp",
                client_ip(),
                &Request::get("/"),
                SimTime::from_millis(ms),
            )
            .unwrap()
            .1
        };
        let direct = probe(&mut a, 77);
        let mut b = build();
        for ms in 0..50 {
            probe(&mut b, ms);
        }
        assert_eq!(probe(&mut b, 77), direct, "history leaked into the draw");
        // Different instants still vary.
        let mut c = build();
        let samples: Vec<u64> = (0..20)
            .map(|i| probe(&mut c, i * 1000).as_millis())
            .collect();
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(
            distinct.len() > 10,
            "hermetic draws degenerate: {samples:?}"
        );
    }

    #[test]
    fn request_method_survives_the_wire() {
        struct AssertPost;
        impl Service for AssertPost {
            fn handle(&mut self, _: SimIp, req: &Request, _: SimTime, _: &mut StdRng) -> Exchange {
                assert_eq!(req.method, Method::Post);
                assert_eq!(req.path, "/submit");
                Exchange {
                    response: Response::new(Status::Ok),
                    processing: SimDuration::ZERO,
                }
            }
        }
        let mut t = Transport::new(3);
        t.register(
            "x",
            Endpoint::new(
                Box::new(AssertPost),
                LatencyModel::constant(SimDuration::ZERO),
            ),
        );
        t.round_trip(
            "x",
            client_ip(),
            &Request::post("/submit", "a=1"),
            SimTime::ZERO,
        )
        .unwrap();
    }
}
