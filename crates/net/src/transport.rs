//! The endpoint registry binding clients to simulated servers.
//!
//! A [`Transport`] owns named [`Endpoint`]s, each pairing a [`Service`]
//! implementation (the server's state machine) with a network latency model.
//! `round_trip` carries a request to the server and its response back,
//! charging request-leg latency, server processing time and response-leg
//! latency on the virtual clock. Every message really is serialized through
//! the framing codec and wire format — the server parses what the client
//! sent, not a shared in-memory object — so protocol bugs surface here, not
//! in production figures.

use crate::clock::{SimDuration, SimTime};
use crate::frame::FrameCodec;
use crate::http::{Request, Response};
use crate::ip::SimIp;
use crate::latency::LatencyModel;
use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;

/// What a service returns for one request: the response plus how long the
/// server spent producing it.
#[derive(Debug, Clone, PartialEq)]
pub struct Exchange {
    pub response: Response,
    pub processing: SimDuration,
}

/// A simulated server: a deterministic state machine fed parsed requests.
pub trait Service {
    /// Handles one request arriving from `peer` at virtual time `now`.
    ///
    /// `rng` is the transport's seeded stream; services draw processing
    /// times and template randomness from it so runs stay reproducible.
    fn handle(&mut self, peer: SimIp, req: &Request, now: SimTime, rng: &mut StdRng) -> Exchange;
}

/// A registered server endpoint.
pub struct Endpoint {
    service: Box<dyn Service + Send>,
    /// One-way network latency between any client and this endpoint.
    network: LatencyModel,
}

impl Endpoint {
    pub fn new(service: Box<dyn Service + Send>, network: LatencyModel) -> Self {
        Self { service, network }
    }
}

/// Transport-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No endpoint registered under this name.
    UnknownEndpoint(String),
    /// The peer's bytes did not parse as a wire message.
    Garbled(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownEndpoint(n) => write!(f, "no endpoint named {n:?}"),
            TransportError::Garbled(e) => write!(f, "garbled wire message: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// The simulated network: endpoints plus a seeded randomness stream.
pub struct Transport {
    endpoints: HashMap<String, Endpoint>,
    rng: StdRng,
    codec: FrameCodec,
}

impl Transport {
    pub fn new(seed: u64) -> Self {
        Self {
            endpoints: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            codec: FrameCodec,
        }
    }

    /// Registers (or replaces) an endpoint under `name`.
    pub fn register(&mut self, name: impl Into<String>, endpoint: Endpoint) {
        self.endpoints.insert(name.into(), endpoint);
    }

    pub fn has_endpoint(&self, name: &str) -> bool {
        self.endpoints.contains_key(name)
    }

    /// Sends `req` from `src` to `endpoint` at virtual time `now`.
    ///
    /// Returns the parsed response and the full round-trip duration
    /// (request leg + server processing + response leg).
    pub fn round_trip(
        &mut self,
        endpoint: &str,
        src: SimIp,
        req: &Request,
        now: SimTime,
    ) -> Result<(Response, SimDuration), TransportError> {
        let ep = self
            .endpoints
            .get_mut(endpoint)
            .ok_or_else(|| TransportError::UnknownEndpoint(endpoint.to_string()))?;

        // Request leg: encode, frame, decode, parse — the server sees only
        // what survived the wire.
        let mut buf = BytesMut::new();
        self.codec.encode(req.to_wire().as_bytes(), &mut buf);
        let frame = self
            .codec
            .decode(&mut buf)
            .map_err(|e| TransportError::Garbled(e.to_string()))?
            .expect("frame just encoded is complete");
        let wire =
            std::str::from_utf8(&frame).map_err(|e| TransportError::Garbled(e.to_string()))?;
        let parsed_req =
            Request::from_wire(wire).map_err(|e| TransportError::Garbled(e.to_string()))?;

        let leg_out = ep.network.sample(&mut self.rng);
        let arrival = now + leg_out;
        let Exchange {
            response,
            processing,
        } = ep.service.handle(src, &parsed_req, arrival, &mut self.rng);

        // Response leg through the same codec path.
        let mut rbuf = BytesMut::new();
        self.codec.encode(response.to_wire().as_bytes(), &mut rbuf);
        let rframe = self
            .codec
            .decode(&mut rbuf)
            .map_err(|e| TransportError::Garbled(e.to_string()))?
            .expect("frame just encoded is complete");
        let rwire =
            std::str::from_utf8(&rframe).map_err(|e| TransportError::Garbled(e.to_string()))?;
        let parsed_resp =
            Response::from_wire(rwire).map_err(|e| TransportError::Garbled(e.to_string()))?;

        let leg_back = ep.network.sample(&mut self.rng);
        Ok((parsed_resp, leg_out + processing + leg_back))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Method, Status};

    /// Echoes the request body back, with a fixed processing time.
    struct Echo;

    impl Service for Echo {
        fn handle(
            &mut self,
            peer: SimIp,
            req: &Request,
            _now: SimTime,
            _rng: &mut StdRng,
        ) -> Exchange {
            Exchange {
                response: Response::ok(format!("{} said: {}", peer, req.body)),
                processing: SimDuration::from_millis(100),
            }
        }
    }

    /// Counts requests; used to show server state persists across calls.
    struct Counter(u32);

    impl Service for Counter {
        fn handle(&mut self, _: SimIp, _: &Request, _: SimTime, _: &mut StdRng) -> Exchange {
            self.0 += 1;
            Exchange {
                response: Response::ok(self.0.to_string()),
                processing: SimDuration::ZERO,
            }
        }
    }

    fn client_ip() -> SimIp {
        SimIp(u32::from_be_bytes([100, 64, 0, 1]))
    }

    #[test]
    fn round_trip_delivers_parsed_messages() {
        let mut t = Transport::new(1);
        t.register(
            "att",
            Endpoint::new(
                Box::new(Echo),
                LatencyModel::constant(SimDuration::from_millis(50)),
            ),
        );
        let req = Request::post("/check", "hello");
        let (resp, elapsed) = t
            .round_trip("att", client_ip(), &req, SimTime::ZERO)
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body, "100.64.0.1 said: hello");
        // 50 out + 100 processing + 50 back.
        assert_eq!(elapsed.as_millis(), 200);
    }

    #[test]
    fn unknown_endpoint_is_an_error() {
        let mut t = Transport::new(1);
        let err = t
            .round_trip("verizon", client_ip(), &Request::get("/"), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, TransportError::UnknownEndpoint(_)));
    }

    #[test]
    fn server_state_persists_between_requests() {
        let mut t = Transport::new(2);
        t.register(
            "cox",
            Endpoint::new(
                Box::new(Counter(0)),
                LatencyModel::constant(SimDuration::ZERO),
            ),
        );
        for expect in 1..=3 {
            let (resp, _) = t
                .round_trip("cox", client_ip(), &Request::get("/"), SimTime::ZERO)
                .unwrap();
            assert_eq!(resp.body, expect.to_string());
        }
    }

    #[test]
    fn latency_variance_flows_from_transport_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut t = Transport::new(seed);
            t.register(
                "isp",
                Endpoint::new(
                    Box::new(Echo),
                    LatencyModel::new(SimDuration::from_millis(500), 0.5),
                ),
            );
            (0..10)
                .map(|_| {
                    t.round_trip("isp", client_ip(), &Request::get("/"), SimTime::ZERO)
                        .unwrap()
                        .1
                        .as_millis()
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same timings");
        assert_ne!(run(7), run(8), "different seed, different timings");
    }

    #[test]
    fn request_method_survives_the_wire() {
        struct AssertPost;
        impl Service for AssertPost {
            fn handle(&mut self, _: SimIp, req: &Request, _: SimTime, _: &mut StdRng) -> Exchange {
                assert_eq!(req.method, Method::Post);
                assert_eq!(req.path, "/submit");
                Exchange {
                    response: Response::new(Status::Ok),
                    processing: SimDuration::ZERO,
                }
            }
        }
        let mut t = Transport::new(3);
        t.register(
            "x",
            Endpoint::new(
                Box::new(AssertPost),
                LatencyModel::constant(SimDuration::ZERO),
            ),
        );
        t.round_trip(
            "x",
            client_ip(),
            &Request::post("/submit", "a=1"),
            SimTime::ZERO,
        )
        .unwrap();
    }
}
