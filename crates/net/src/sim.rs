//! A minimal discrete-event scheduler.
//!
//! The data-collection orchestrator interleaves many concurrent "containers"
//! on one virtual timeline: each worker's next action is an event, and the
//! queue releases events in chronological order. Ties break by insertion
//! order, which keeps runs fully deterministic.

use crate::clock::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue. `E` is the caller's event payload.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let slot = self.payloads.len();
        self.payloads.push(Some(event));
        self.heap.push(Reverse((time, self.seq, slot)));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((time, _, slot)) = self.heap.pop()?;
        // lint:allow(T2): each heap slot is filled exactly once per push
        let event = self.payloads[slot].take().expect("event popped twice");
        Some((time, event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_chronological_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(5), 1);
        q.push(t(5), 2);
        q.push(t(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(t(100), 100);
        q.push(t(50), 50);
        assert_eq!(q.pop(), Some((t(50), 50)));
        q.push(t(75), 75);
        q.push(t(25), 25); // scheduled in the "past" relative to 50: still fine
        assert_eq!(q.pop(), Some((t(25), 25)));
        assert_eq!(q.pop(), Some((t(75), 75)));
        assert_eq!(q.pop(), Some((t(100), 100)));
    }

    #[test]
    fn large_volume_is_sorted() {
        let mut q = EventQueue::new();
        // Deterministic scramble of 0..1000.
        for i in 0..1000u64 {
            let shuffled = (i * 7919) % 1000;
            q.push(t(shuffled), shuffled);
        }
        let mut prev = 0;
        while let Some((time, v)) = q.pop() {
            assert_eq!(time.as_millis(), v);
            assert!(v >= prev);
            prev = v;
        }
    }
}
