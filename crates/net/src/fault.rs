//! Deterministic fault injection for the simulated network.
//!
//! Real scraping campaigns do not run over a clean network: BATs brown out
//! under load, residential proxies drop connections, and anti-bot layers
//! fire rate-limit storms. A [`FaultPlan`] schedules those pathologies on
//! the virtual timeline so the retry and requeue machinery upstream can be
//! exercised — and measured — reproducibly.
//!
//! A plan is a list of [`FaultWindow`]s. Each window names an endpoint (or
//! all of them), a `[from, until)` span of virtual time, a [`FaultKind`]
//! and a hit `rate`. When [`Transport::round_trip`](crate::Transport) is
//! asked to carry a request that falls inside an active window, the plan
//! rolls its own seeded RNG stream and either lets the request through or
//! injects the scheduled failure. Keeping the fault stream separate from
//! the transport's stream means the *schedule* of injected faults for a
//! given plan seed does not depend on how much service randomness ran
//! before each request.

use crate::clock::{SimDuration, SimTime};
use crate::mix::{fnv1a, mix64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What an active fault window does to a matching request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The request is swallowed; the client gives up after its timeout.
    Timeout,
    /// The session hangs forever: no bytes ever come back and no client
    /// timeout fires. Only an orchestrator-level watchdog can reclaim the
    /// worker stuck on it.
    Stall,
    /// The connection is torn down partway through the exchange.
    ConnectionReset,
    /// The endpoint's anti-bot layer answers 429 without consulting the
    /// service at all.
    RateLimitStorm,
    /// The server is saturated: every matching request is slowed by
    /// `latency_factor`, and a `error_rate` fraction additionally fail
    /// with HTTP 500 after doing their (slow) work.
    Brownout {
        latency_factor: f64,
        error_rate: f64,
    },
}

/// One scheduled pathology on the virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Endpoint name the window applies to; `None` matches every endpoint.
    pub endpoint: Option<String>,
    /// First virtual instant the window is active.
    pub from: SimTime,
    /// First virtual instant the window is no longer active.
    pub until: SimTime,
    /// The failure mode injected while active.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that a matching request is affected.
    pub rate: f64,
}

impl FaultWindow {
    fn matches(&self, endpoint: &str, now: SimTime) -> bool {
        self.from <= now
            && now < self.until
            && self.endpoint.as_deref().is_none_or(|e| e == endpoint)
    }
}

/// The resolved effect of the plan on one request.
///
/// `Degrade` is the only variant that still reaches the service; the rest
/// preempt the exchange entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FaultAction {
    /// Swallow the request; the client burns `after` of virtual time.
    Timeout { after: SimDuration },
    /// Hang the session indefinitely; the worker is stuck until reclaimed.
    Stall,
    /// Tear the connection down `after` into the exchange.
    Reset { after: SimDuration },
    /// Synthesize a 429 without touching the service.
    SyntheticRateLimit,
    /// Carry the request, but stretch time by `latency_factor` and, if
    /// `fail`, replace the response with a 500.
    Degrade { latency_factor: f64, fail: bool },
}

/// A seeded schedule of fault windows, attachable to a
/// [`Transport`](crate::Transport).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
    seed: u64,
    rng: StdRng,
    /// Derive each request's fault rolls from `(seed, endpoint, now)`
    /// instead of the shared sequential stream. See [`Self::hermetic`].
    hermetic: bool,
    /// Virtual time a client waits before declaring a swallowed request
    /// timed out.
    client_timeout: SimDuration,
}

impl FaultPlan {
    /// An empty plan drawing fault decisions from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            windows: Vec::new(),
            seed,
            rng: StdRng::seed_from_u64(seed ^ 0xFA_017),
            hermetic: false,
            client_timeout: SimDuration::from_secs(30),
        }
    }

    /// Switches the plan to hermetic mode: every request's fault decision
    /// becomes a pure function of `(plan seed, endpoint, virtual time)`
    /// rather than the next draw of a shared stream. Required for
    /// crash-resume determinism — a resumed campaign skips completed
    /// requests, and with a sequential stream that skip would shift every
    /// later fault roll.
    pub fn hermetic(mut self) -> Self {
        self.hermetic = true;
        self
    }

    /// Overrides the client-side timeout charged for swallowed requests.
    pub fn with_client_timeout(mut self, timeout: SimDuration) -> Self {
        self.client_timeout = timeout;
        self
    }

    /// Adds an arbitrary window.
    pub fn with_window(mut self, window: FaultWindow) -> Self {
        assert!(
            (0.0..=1.0).contains(&window.rate),
            "fault rate {} outside [0, 1]",
            window.rate
        );
        assert!(window.from <= window.until, "window ends before it starts");
        self.windows.push(window);
        self
    }

    /// A flaky endpoint: `rate` of its requests reset mid-connection.
    pub fn flaky_endpoint(
        self,
        endpoint: impl Into<String>,
        from: SimTime,
        until: SimTime,
        rate: f64,
    ) -> Self {
        self.with_window(FaultWindow {
            endpoint: Some(endpoint.into()),
            from,
            until,
            kind: FaultKind::ConnectionReset,
            rate,
        })
    }

    /// Transient timeouts across all endpoints at the given rate.
    pub fn lossy_network(self, from: SimTime, until: SimTime, rate: f64) -> Self {
        self.with_window(FaultWindow {
            endpoint: None,
            from,
            until,
            kind: FaultKind::Timeout,
            rate,
        })
    }

    /// An anti-bot 429 storm on one endpoint: every request in the window
    /// is rate-limited.
    pub fn rate_limit_storm(
        self,
        endpoint: impl Into<String>,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.with_window(FaultWindow {
            endpoint: Some(endpoint.into()),
            from,
            until,
            kind: FaultKind::RateLimitStorm,
            rate: 1.0,
        })
    }

    /// Hung sessions on one endpoint: `rate` of its requests never answer
    /// at all (no timeout fires — the connection just sits there). Pairs
    /// with the orchestrator's watchdog, which reclaims the stuck worker.
    pub fn stalls(
        self,
        endpoint: impl Into<String>,
        from: SimTime,
        until: SimTime,
        rate: f64,
    ) -> Self {
        self.with_window(FaultWindow {
            endpoint: Some(endpoint.into()),
            from,
            until,
            kind: FaultKind::Stall,
            rate,
        })
    }

    /// A server brownout: matching requests run `latency_factor` slower
    /// and `error_rate` of them end in HTTP 500.
    pub fn brownout(
        self,
        endpoint: impl Into<String>,
        from: SimTime,
        until: SimTime,
        latency_factor: f64,
        error_rate: f64,
    ) -> Self {
        assert!(latency_factor >= 1.0, "brownouts slow servers down");
        self.with_window(FaultWindow {
            endpoint: Some(endpoint.into()),
            from,
            until,
            kind: FaultKind::Brownout {
                latency_factor,
                error_rate,
            },
            rate: 1.0,
        })
    }

    /// Whether any window could ever affect `endpoint`.
    pub fn covers(&self, endpoint: &str) -> bool {
        self.windows
            .iter()
            .any(|w| w.endpoint.as_deref().is_none_or(|e| e == endpoint))
    }

    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Rolls the plan for one request. The first matching window whose
    /// rate-roll hits decides the action; later windows are not consulted.
    ///
    /// In hermetic mode the rolls come from a fresh stream derived from
    /// `(seed, endpoint, now)`; otherwise from the shared sequential one.
    pub(crate) fn intercept(&mut self, endpoint: &str, now: SimTime) -> Option<FaultAction> {
        let mut derived;
        let rng: &mut StdRng = if self.hermetic {
            derived = StdRng::seed_from_u64(mix64(
                self.seed ^ 0xFA_017,
                &[fnv1a(endpoint.as_bytes()), now.as_millis()],
            ));
            &mut derived
        } else {
            &mut self.rng
        };
        for w in &self.windows {
            if !w.matches(endpoint, now) {
                continue;
            }
            if w.rate < 1.0 && !rng.gen_bool(w.rate) {
                continue;
            }
            return Some(match w.kind {
                FaultKind::Timeout => FaultAction::Timeout {
                    after: self.client_timeout,
                },
                FaultKind::Stall => FaultAction::Stall,
                FaultKind::ConnectionReset => FaultAction::Reset {
                    // Connections die partway through: charge a uniform
                    // fraction of the client timeout.
                    after: SimDuration::from_millis(
                        rng.gen_range(1..=self.client_timeout.as_millis().max(2)),
                    ),
                },
                FaultKind::RateLimitStorm => FaultAction::SyntheticRateLimit,
                FaultKind::Brownout {
                    latency_factor,
                    error_rate,
                } => FaultAction::Degrade {
                    latency_factor,
                    fail: error_rate > 0.0 && rng.gen_bool(error_rate.min(1.0)),
                },
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_millis(s * 1000)
    }

    #[test]
    fn windows_gate_on_time_and_endpoint() {
        let mut plan = FaultPlan::new(1).rate_limit_storm("cox/nola", t(10), t(20));
        assert!(plan.intercept("cox/nola", t(5)).is_none(), "before window");
        assert_eq!(
            plan.intercept("cox/nola", t(10)),
            Some(FaultAction::SyntheticRateLimit)
        );
        assert!(
            plan.intercept("att/nola", t(15)).is_none(),
            "other endpoint"
        );
        assert!(
            plan.intercept("cox/nola", t(20)).is_none(),
            "until exclusive"
        );
    }

    #[test]
    fn wildcard_window_hits_every_endpoint() {
        let mut plan = FaultPlan::new(2).lossy_network(t(0), t(100), 1.0);
        for ep in ["a", "b", "c"] {
            assert!(matches!(
                plan.intercept(ep, t(1)),
                Some(FaultAction::Timeout { .. })
            ));
        }
    }

    #[test]
    fn partial_rate_hits_roughly_that_fraction() {
        let mut plan = FaultPlan::new(3).flaky_endpoint("e", t(0), t(1000), 0.3);
        let hits = (0..10_000)
            .filter(|_| plan.intercept("e", t(1)).is_some())
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let roll = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::new(seed).flaky_endpoint("e", t(0), t(1000), 0.5);
            (0..200)
                .map(|_| plan.intercept("e", t(1)).is_some())
                .collect()
        };
        assert_eq!(roll(7), roll(7));
        assert_ne!(roll(7), roll(8));
    }

    #[test]
    fn brownout_degrades_and_sometimes_fails() {
        let mut plan = FaultPlan::new(4).brownout("e", t(0), t(1000), 3.0, 0.5);
        let mut failures = 0;
        for _ in 0..1000 {
            match plan.intercept("e", t(1)) {
                Some(FaultAction::Degrade {
                    latency_factor,
                    fail,
                }) => {
                    assert_eq!(latency_factor, 3.0);
                    if fail {
                        failures += 1;
                    }
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert!((300..700).contains(&failures), "failures {failures}");
    }

    #[test]
    fn reset_charges_partial_time() {
        let mut plan = FaultPlan::new(5)
            .with_client_timeout(SimDuration::from_secs(10))
            .flaky_endpoint("e", t(0), t(1000), 1.0);
        match plan.intercept("e", t(1)) {
            Some(FaultAction::Reset { after }) => {
                assert!(after > SimDuration::ZERO);
                assert!(after <= SimDuration::from_secs(10));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bogus_rate_is_rejected() {
        let _ = FaultPlan::new(0).flaky_endpoint("e", t(0), t(1), 1.5);
    }

    #[test]
    fn stall_window_hangs_matching_requests() {
        let mut plan = FaultPlan::new(6).stalls("e", t(0), t(100), 1.0);
        assert_eq!(plan.intercept("e", t(1)), Some(FaultAction::Stall));
        assert!(plan.intercept("e", t(100)).is_none(), "until exclusive");
        assert!(plan.intercept("other", t(1)).is_none());
    }

    #[test]
    fn hermetic_rolls_depend_only_on_endpoint_and_time() {
        let plan = || {
            FaultPlan::new(8)
                .hermetic()
                .flaky_endpoint("e", t(0), t(1000), 0.5)
        };
        // The same (endpoint, now) always rolls the same way, however many
        // unrelated intercepts ran before it.
        let mut a = plan();
        let direct = a.intercept("e", t(7));
        let mut b = plan();
        for i in 0..100 {
            b.intercept("e", t(500 + i));
        }
        assert_eq!(b.intercept("e", t(7)), direct);
        // Distinct instants still decorrelate: roughly half the rolls
        // inside the window hit.
        let mut c = plan();
        let hits = (0..1000)
            .filter(|i| c.intercept("e", t(*i)).is_some())
            .count();
        assert!((400..600).contains(&hits), "hermetic rate skew: {hits}");
    }

    #[test]
    fn hermetic_plans_differ_across_seeds() {
        let roll = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::new(seed)
                .hermetic()
                .flaky_endpoint("e", t(0), t(1000), 0.5);
            (0..200)
                .map(|i| plan.intercept("e", t(i)).is_some())
                .collect()
        };
        assert_eq!(roll(7), roll(7));
        assert_ne!(roll(7), roll(8));
    }
}
