//! Latency models for simulated endpoints.
//!
//! Web page loads are right-skewed: most renders land near the median with a
//! long slow tail. We model each delay source as a lognormal distribution
//! parameterized by its median and a tail-heaviness factor, which matches the
//! per-ISP render-time distributions BQT observed (Fig. 2b) well enough to
//! reproduce their orderings and spreads.

use crate::clock::SimDuration;
use rand::Rng;

/// A right-skewed delay distribution (lognormal), sampled in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Median delay in milliseconds (the lognormal scale, e^μ).
    median_ms: f64,
    /// Log-space standard deviation σ; 0 gives a constant delay, 0.3–0.6 is
    /// a typical web-page spread.
    sigma: f64,
}

impl LatencyModel {
    /// Builds a model from its median delay and log-space σ.
    pub fn new(median: SimDuration, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        Self {
            median_ms: median.as_millis() as f64,
            sigma,
        }
    }

    /// A degenerate model that always returns `d`.
    pub fn constant(d: SimDuration) -> Self {
        Self::new(d, 0.0)
    }

    pub fn median(&self) -> SimDuration {
        SimDuration::from_millis(self.median_ms as u64)
    }

    /// Draws one delay.
    ///
    /// Uses Box–Muller on two uniform draws, so the sample stream is
    /// reproducible for a seeded `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        if self.sigma == 0.0 {
            return SimDuration::from_millis(self.median_ms as u64);
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let ms = self.median_ms * (self.sigma * z).exp();
        SimDuration::from_millis(ms.round().max(0.0) as u64)
    }

    /// The model's mean delay, `median * exp(σ²/2)`.
    pub fn mean(&self) -> SimDuration {
        let ms = self.median_ms * (self.sigma * self.sigma / 2.0).exp();
        SimDuration::from_millis(ms.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_model_always_returns_median() {
        let m = LatencyModel::constant(SimDuration::from_millis(42));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng).as_millis(), 42);
        }
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let m = LatencyModel::new(SimDuration::from_secs(30), 0.4);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| m.sample(&mut rng).as_millis()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| m.sample(&mut rng).as_millis()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_median_matches_parameter() {
        let m = LatencyModel::new(SimDuration::from_millis(1000), 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u64> = (0..4000).map(|_| m.sample(&mut rng).as_millis()).collect();
        xs.sort_unstable();
        let med = xs[xs.len() / 2] as f64;
        assert!((med - 1000.0).abs() < 80.0, "median = {med}");
    }

    #[test]
    fn distribution_is_right_skewed() {
        let m = LatencyModel::new(SimDuration::from_millis(1000), 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..4000)
            .map(|_| m.sample(&mut rng).as_millis() as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = sorted[sorted.len() / 2];
        assert!(
            mean > med,
            "lognormal mean ({mean}) should exceed median ({med})"
        );
    }

    #[test]
    fn mean_formula_matches_samples() {
        let m = LatencyModel::new(SimDuration::from_millis(2000), 0.4);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let s: f64 = (0..n).map(|_| m.sample(&mut rng).as_millis() as f64).sum();
        let emp_mean = s / n as f64;
        let model_mean = m.mean().as_millis() as f64;
        assert!(
            (emp_mean - model_mean).abs() / model_mean < 0.05,
            "empirical {emp_mean} vs model {model_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_rejected() {
        LatencyModel::new(SimDuration::from_millis(1), -0.1);
    }
}
