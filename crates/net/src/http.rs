//! HTTP-lite: the request/response message layer spoken between BQT and the
//! simulated BAT servers.
//!
//! A deliberately small subset of HTTP/1.1 — methods, a path, headers
//! (including `Cookie`/`Set-Cookie`), a status line and a body — with a text
//! wire format that round-trips through the framing codec. The BAT servers
//! use cookies exactly the way the paper describes real ISPs doing: dynamic
//! per-session tokens whose reuse across too many requests is a block
//! signal.

use std::collections::BTreeMap;
use std::fmt;

/// Request methods used by the BAT workflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// Response status codes the simulated servers emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    Ok,
    BadRequest,
    Forbidden,
    NotFound,
    TooManyRequests,
    ServerError,
}

impl Status {
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::TooManyRequests => 429,
            Status::ServerError => 500,
        }
    }

    pub fn from_code(code: u16) -> Option<Status> {
        Some(match code {
            200 => Status::Ok,
            400 => Status::BadRequest,
            403 => Status::Forbidden,
            404 => Status::NotFound,
            429 => Status::TooManyRequests,
            500 => Status::ServerError,
            _ => return None,
        })
    }

    pub fn is_success(self) -> bool {
        self == Status::Ok
    }
}

/// Parse failures for the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    MissingStartLine,
    BadStartLine(String),
    BadHeader(String),
    UnknownMethod(String),
    UnknownStatus(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::MissingStartLine => write!(f, "message has no start line"),
            WireError::BadStartLine(l) => write!(f, "malformed start line: {l:?}"),
            WireError::BadHeader(l) => write!(f, "malformed header: {l:?}"),
            WireError::UnknownMethod(m) => write!(f, "unknown method: {m:?}"),
            WireError::UnknownStatus(s) => write!(f, "unknown status: {s:?}"),
        }
    }
}

impl std::error::Error for WireError {}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<(BTreeMap<String, String>, String), WireError> {
    let mut headers = BTreeMap::new();
    let mut body = String::new();
    let mut in_body = false;
    for line in lines {
        if in_body {
            if !body.is_empty() {
                body.push('\n');
            }
            body.push_str(line);
        } else if line.is_empty() {
            in_body = true;
        } else {
            let (k, v) = line
                .split_once(':')
                .ok_or_else(|| WireError::BadHeader(line.to_string()))?;
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    Ok((headers, body))
}

/// An HTTP-lite request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub method: Method,
    pub path: String,
    headers: BTreeMap<String, String>,
    pub body: String,
}

impl Request {
    pub fn new(method: Method, path: impl Into<String>) -> Self {
        Self {
            method,
            path: path.into(),
            headers: BTreeMap::new(),
            body: String::new(),
        }
    }

    pub fn get(path: impl Into<String>) -> Self {
        Self::new(Method::Get, path)
    }

    pub fn post(path: impl Into<String>, body: impl Into<String>) -> Self {
        let mut r = Self::new(Method::Post, path);
        r.body = body.into();
        r
    }

    /// Sets a header (case-insensitive key), replacing any previous value.
    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> Self {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The session cookie, if any.
    pub fn cookie(&self) -> Option<&str> {
        self.header("cookie")
    }

    pub fn with_cookie(self, value: impl Into<String>) -> Self {
        self.with_header("cookie", value)
    }

    /// Serializes to the text wire format.
    pub fn to_wire(&self) -> String {
        let mut s = format!("{} {} BQT/1\n", self.method, self.path);
        for (k, v) in &self.headers {
            s.push_str(&format!("{k}: {v}\n"));
        }
        s.push('\n');
        s.push_str(&self.body);
        s
    }

    /// Parses the text wire format.
    pub fn from_wire(wire: &str) -> Result<Self, WireError> {
        let mut lines = wire.split('\n');
        let start = lines.next().ok_or(WireError::MissingStartLine)?;
        let mut parts = start.split_whitespace();
        let method = match parts.next() {
            Some("GET") => Method::Get,
            Some("POST") => Method::Post,
            Some(other) => return Err(WireError::UnknownMethod(other.to_string())),
            None => return Err(WireError::BadStartLine(start.to_string())),
        };
        let path = parts
            .next()
            .ok_or_else(|| WireError::BadStartLine(start.to_string()))?
            .to_string();
        let (headers, body) = parse_headers(lines)?;
        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }
}

/// An HTTP-lite response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: Status,
    headers: BTreeMap<String, String>,
    pub body: String,
}

impl Response {
    pub fn new(status: Status) -> Self {
        Self {
            status,
            headers: BTreeMap::new(),
            body: String::new(),
        }
    }

    pub fn ok(body: impl Into<String>) -> Self {
        let mut r = Self::new(Status::Ok);
        r.body = body.into();
        r
    }

    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> Self {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// The `Set-Cookie` value, if the server issued one.
    pub fn set_cookie(&self) -> Option<&str> {
        self.header("set-cookie")
    }

    pub fn with_set_cookie(self, value: impl Into<String>) -> Self {
        self.with_header("set-cookie", value)
    }

    pub fn to_wire(&self) -> String {
        let mut s = format!("BQT/1 {}\n", self.status.code());
        for (k, v) in &self.headers {
            s.push_str(&format!("{k}: {v}\n"));
        }
        s.push('\n');
        s.push_str(&self.body);
        s
    }

    pub fn from_wire(wire: &str) -> Result<Self, WireError> {
        let mut lines = wire.split('\n');
        let start = lines.next().ok_or(WireError::MissingStartLine)?;
        let mut parts = start.split_whitespace();
        match parts.next() {
            Some("BQT/1") => {}
            _ => return Err(WireError::BadStartLine(start.to_string())),
        }
        let code_str = parts
            .next()
            .ok_or_else(|| WireError::BadStartLine(start.to_string()))?;
        let code: u16 = code_str
            .parse()
            .map_err(|_| WireError::UnknownStatus(code_str.to_string()))?;
        let status = Status::from_code(code)
            .ok_or_else(|| WireError::UnknownStatus(code_str.to_string()))?;
        let (headers, body) = parse_headers(lines)?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::post(
            "/check-availability",
            "address=742 Evergreen Ter\nzip=70118",
        )
        .with_header("X-Session", "abc123")
        .with_cookie("sid=deadbeef");
        let parsed = Request::from_wire(&req.to_wire()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.cookie(), Some("sid=deadbeef"));
        assert_eq!(parsed.header("x-session"), Some("abc123"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok("<html>plans</html>")
            .with_set_cookie("sid=1; HttpOnly")
            .with_header("X-Template", "plans");
        let parsed = Response::from_wire(&resp.to_wire()).unwrap();
        assert_eq!(parsed, resp);
        assert_eq!(parsed.set_cookie(), Some("sid=1; HttpOnly"));
    }

    #[test]
    fn headers_are_case_insensitive() {
        let req = Request::get("/").with_header("Content-Type", "text/html");
        assert_eq!(req.header("content-type"), Some("text/html"));
        assert_eq!(req.header("CONTENT-TYPE"), Some("text/html"));
    }

    #[test]
    fn multiline_body_survives_roundtrip() {
        let body = "line one\nline two\n\nline four";
        let req = Request::post("/x", body);
        assert_eq!(Request::from_wire(&req.to_wire()).unwrap().body, body);
    }

    #[test]
    fn empty_body_roundtrip() {
        let req = Request::get("/home");
        let parsed = Request::from_wire(&req.to_wire()).unwrap();
        assert_eq!(parsed.body, "");
    }

    #[test]
    fn unknown_method_rejected() {
        assert_eq!(
            Request::from_wire("BREW /teapot BQT/1\n\n"),
            Err(WireError::UnknownMethod("BREW".to_string()))
        );
    }

    #[test]
    fn bad_status_rejected() {
        assert!(matches!(
            Response::from_wire("BQT/1 999\n\n"),
            Err(WireError::UnknownStatus(_))
        ));
        assert!(matches!(
            Response::from_wire("HTTP/1.1 200\n\n"),
            Err(WireError::BadStartLine(_))
        ));
    }

    #[test]
    fn malformed_header_rejected() {
        assert!(matches!(
            Request::from_wire("GET / BQT/1\nnot-a-header\n\n"),
            Err(WireError::BadHeader(_))
        ));
    }

    #[test]
    fn status_code_mapping_is_bijective() {
        for s in [
            Status::Ok,
            Status::BadRequest,
            Status::Forbidden,
            Status::NotFound,
            Status::TooManyRequests,
            Status::ServerError,
        ] {
            assert_eq!(Status::from_code(s.code()), Some(s));
        }
        assert_eq!(Status::from_code(302), None);
    }

    #[test]
    fn roundtrips_through_frame_codec() {
        use crate::frame::FrameCodec;
        use bytes::BytesMut;
        let resp = Response::ok("body").with_set_cookie("sid=2");
        let mut buf = BytesMut::new();
        FrameCodec.encode(resp.to_wire().as_bytes(), &mut buf);
        let frame = FrameCodec.decode(&mut buf).unwrap().unwrap();
        let parsed = Response::from_wire(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(parsed, resp);
    }
}
