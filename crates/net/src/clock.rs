//! Virtual time: monotone simulated instants and durations.
//!
//! All pipeline timing (page waits, query resolution times, rate-limit
//! windows) is expressed in virtual milliseconds. This keeps every
//! experiment deterministic and lets Fig. 2b report "seconds" that mean the
//! same thing on every run.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the simulated timeline, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    pub fn as_millis(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration since an earlier instant. Panics if `earlier` is later —
    /// virtual time never runs backwards, so that is always a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            self >= earlier,
            "time went backwards: {self:?} < {earlier:?}"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Converts a fractional seconds value, saturating negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1000.0).round() as u64)
    }

    pub fn as_millis(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, earlier: SimTime) -> SimDuration {
        self.since(earlier)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::ZERO + SimDuration::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 3250);
        assert_eq!(t.as_secs_f64(), 3.25);
    }

    #[test]
    fn since_measures_span() {
        let a = SimTime::from_millis(1000);
        let b = SimTime::from_millis(4500);
        assert_eq!(b.since(a).as_millis(), 3500);
        assert_eq!((b - a).as_secs_f64(), 3.5);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_on_backwards_time() {
        SimTime::from_millis(1).since(SimTime::from_millis(2));
    }

    #[test]
    fn from_secs_f64_rounds_and_saturates() {
        assert_eq!(SimDuration::from_secs_f64(1.2345).as_millis(), 1235);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(25);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a).as_millis(), 15);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t+1.500s");
        assert_eq!(SimDuration::from_millis(27_000).to_string(), "27.000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(5) < SimTime::from_millis(6));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }
}
