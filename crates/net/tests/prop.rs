//! Property tests over the simulated-network substrate.

use bbsim_net::{EventQueue, IpPool, LatencyModel, RotationPolicy, SimDuration, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Virtual-time arithmetic is consistent: advancing then measuring
    /// returns the advance.
    #[test]
    fn time_arithmetic_roundtrips(start in 0u64..1_000_000, delta in 0u64..1_000_000) {
        let t0 = SimTime::from_millis(start);
        let d = SimDuration::from_millis(delta);
        let t1 = t0 + d;
        prop_assert_eq!(t1.since(t0), d);
        prop_assert_eq!(t1 - t0, d);
        prop_assert!(t1 >= t0);
    }

    /// The event queue is a stable priority queue: events pop in time
    /// order, ties in insertion order, nothing is lost.
    #[test]
    fn event_queue_is_a_stable_pq(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_millis(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stable tie-break");
            }
        }
    }

    /// Latency samples are deterministic per seed and non-negative, and a
    /// zero-sigma model is exactly its median.
    #[test]
    fn latency_model_properties(median_ms in 1u64..100_000, sigma in 0.0f64..1.0, seed in any::<u64>()) {
        let m = LatencyModel::new(SimDuration::from_millis(median_ms), sigma);
        let s1: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| m.sample(&mut rng).as_millis()).collect()
        };
        let s2: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| m.sample(&mut rng).as_millis()).collect()
        };
        prop_assert_eq!(&s1, &s2);
        let constant = LatencyModel::constant(SimDuration::from_millis(median_ms));
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(constant.sample(&mut rng).as_millis(), median_ms);
    }

    /// IP pools of any size hold distinct carrier-grade-NAT addresses, and
    /// round-robin visits all of them before repeating.
    #[test]
    fn ip_pools_are_distinct_and_fair(size in 1usize..300, seed in any::<u64>()) {
        let mut pool = IpPool::residential(size, RotationPolicy::RoundRobin, seed);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..size {
            prop_assert!(seen.insert(pool.next()), "duplicate before full cycle");
        }
        // Next draw revisits the first address.
        let first = *pool.addrs().first().expect("non-empty");
        prop_assert_eq!(pool.next(), first);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The wire parsers never panic on arbitrary input; they either parse
    /// or return a typed error.
    #[test]
    fn wire_parsers_never_panic(text in "[ -~\\n\\t]{0,400}") {
        let _ = bbsim_net::Request::from_wire(&text);
        let _ = bbsim_net::Response::from_wire(&text);
    }

    /// Whatever a request parses to, re-serializing and re-parsing is a
    /// fixed point (parser/serializer agreement).
    #[test]
    fn accepted_requests_are_fixed_points(text in "(GET|POST) /[a-z]{0,10} BQT/1\\n(cookie: [a-z0-9=]{0,20}\\n)?\\n[ -~]{0,100}") {
        if let Ok(req) = bbsim_net::Request::from_wire(&text) {
            let again = bbsim_net::Request::from_wire(&req.to_wire()).expect("own output parses");
            prop_assert_eq!(again, req);
        }
    }
}
