//! The sharded serve campaign engine: replays a seeded load schedule
//! against every shard's serving stack on the virtual clock, under the
//! same multi-core discipline as `bqt::shard` — and with the same
//! byte-identity guarantee across thread counts.
//!
//! Each shard runs as one virtual worker: its own [`ShardRecorder`]
//! (namespaced event seqs), its own hermetic [`Transport`] carrying its
//! own [`PlanService`] endpoint, its own arrival schedule. A FIFO queue
//! discipline turns arrival times into lookup latencies — an arrival
//! whose queue wait would exceed `shed_wait_ms` is refused with a
//! `ServeShed` event, which is what keeps the cache-hostile scan from
//! growing the backlog without bound. Shard streams are merged on
//! `(at, seq)` and fed once, in order, through the SLO monitor, the
//! metrics aggregator and the caller's recorder; nothing in the merged
//! stream or anything derived from it depends on how shards were
//! packed onto OS threads.

use crate::api::{ServeAnswer, ServeRequest, ServeResponse};
use crate::load::{Arrival, LoadPhase};
use crate::service::{cache_flags, evicted_keys, PlanService, ServeCosts};
use crate::store::PlanStore;
use bbsim_net::{Endpoint, LatencyModel, SimDuration, SimIp, SimTime, Transport};
use bqt::monitor::{CampaignMonitor, MonitorPolicy};
use bqt::telemetry::OutcomeCode;
use bqt::{
    merge_seq_streams, Event, EventKind, HealthReport, MetricsAggregator, Recorder, SeqEvent,
    ShardRecorder, SloRule, TelemetrySummary,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of one serve campaign.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Master seed: schedules, transport draws and jitter all derive
    /// from it.
    pub seed: u64,
    /// OS threads the shard set is packed onto (never affects output).
    pub threads: usize,
    /// LRU answer-cache capacity per shard.
    pub cache_capacity: usize,
    /// Queue wait beyond which an arrival is refused (shed).
    pub shed_wait_ms: u64,
    /// Per-lookup virtual processing costs.
    pub costs: ServeCosts,
    /// One-way link latency between requesters and a shard, in ms.
    pub link_latency_ms: u64,
    /// The load campaign, phase by phase (shared by every shard).
    pub phases: Vec<LoadPhase>,
    /// SLO monitor configuration applied to the merged stream.
    pub policy: MonitorPolicy,
}

impl ServeOptions {
    /// Serve SLOs: a latency ceiling the scan phase must breach, plus
    /// outcome hit rate and answer-cache health for the dashboard.
    fn serve_rules() -> Vec<SloRule> {
        vec![
            SloRule::p99_latency_at_most(250),
            SloRule::hit_rate_at_least(0.9),
            SloRule::cache_hit_rate_at_least(0.25),
        ]
    }

    /// CI-sized campaign: ~5 virtual minutes, ~120k lookups over three
    /// shards. The scan phase fires the p99 alert; the final steady
    /// phase is long enough (window span + hysteresis) to resolve it.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            threads: 1,
            cache_capacity: 128,
            shed_wait_ms: 2_000,
            costs: ServeCosts::paper_default(),
            link_latency_ms: 0,
            phases: vec![
                LoadPhase::steady(60_000, 12),
                LoadPhase::burst(10_000, 12),
                LoadPhase::steady(30_000, 12),
                LoadPhase::scan(40_000, 3),
                LoadPhase::steady(160_000, 12),
            ],
            policy: MonitorPolicy {
                bucket: SimDuration::from_secs(10),
                buckets: 10,
                ..MonitorPolicy::paper_default()
            }
            .rules(Self::serve_rules()),
        }
    }

    /// Paper-scale campaign: ~38 virtual minutes, >1M served lookups
    /// over three shards, with the same fire-and-resolve shape.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            seed,
            threads: 1,
            cache_capacity: 256,
            shed_wait_ms: 2_000,
            costs: ServeCosts::paper_default(),
            link_latency_ms: 0,
            phases: vec![
                LoadPhase::steady(900_000, 7),
                LoadPhase::burst(60_000, 7),
                LoadPhase::steady(240_000, 7),
                LoadPhase::scan(200_000, 3),
                LoadPhase::steady(900_000, 7),
            ],
            policy: MonitorPolicy::paper_default().rules(Self::serve_rules()),
        }
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// What one serve campaign leaves behind.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Aggregated counters/histograms over the merged stream (plus the
    /// monitor's synthesized alert events).
    pub summary: TelemetrySummary,
    /// The SLO monitor's verdict: alerts, window, folded profile.
    pub health: HealthReport,
    /// Virtual time the slowest shard finished draining at.
    pub makespan_ms: u64,
    /// Arrivals scheduled across all shards (served + shed).
    pub arrivals: u64,
}

impl ServeOutcome {
    /// Served lookups (per batch item; sheds excluded).
    pub fn lookups(&self) -> u64 {
        self.summary.serve_lookups
    }
}

/// Maps an answer to the outcome code its lookup event carries.
fn answer_outcome(answer: &ServeAnswer) -> OutcomeCode {
    match answer {
        ServeAnswer::Plans { .. } => OutcomeCode::Plans,
        ServeAnswer::NoService => OutcomeCode::NoService,
        ServeAnswer::Percentiles { .. } => OutcomeCode::Plans,
        ServeAnswer::Tiles { .. } => OutcomeCode::Plans,
        ServeAnswer::NotFound => OutcomeCode::Unserviceable,
        ServeAnswer::Shed => OutcomeCode::Blocked,
    }
}

/// Runs one shard's full schedule; returns its namespaced event stream
/// and the number of scheduled arrivals.
fn run_shard(store: &Arc<PlanStore>, opts: &ServeOptions, shard_id: u32) -> (Vec<SeqEvent>, u64) {
    let shard = store.shard(shard_id).expect("shard id from store range");
    let endpoint = shard.endpoint();
    let schedule = crate::load::generate_schedule(shard_id, shard, &opts.phases, opts.seed);
    let arrivals = schedule.len() as u64;

    let mut rec = ShardRecorder::new(shard_id);
    rec.record(&Event {
        at: SimTime::ZERO,
        kind: EventKind::WorkerBegin { worker: shard_id },
    });

    let mut transport = Transport::hermetic(opts.seed);
    transport.register(
        endpoint.clone(),
        Endpoint::new(
            Box::new(PlanService::new(
                store.clone(),
                opts.cache_capacity,
                opts.costs,
            )),
            LatencyModel::constant(SimDuration::from_millis(opts.link_latency_ms)),
        ),
    );
    // Deterministic per-shard requester address: keeps hermetic draws
    // distinct across shards sharing a virtual millisecond.
    let src = SimIp(0x0a00_0001 + shard_id);

    let mut prev_done = 0u64;
    for Arrival { at_ms, request } in schedule {
        let wait = prev_done.saturating_sub(at_ms);
        if wait > opts.shed_wait_ms {
            rec.record(&Event {
                at: SimTime::from_millis(at_ms),
                kind: EventKind::ServeShed {
                    shard: shard_id,
                    endpoint: endpoint.clone(),
                },
            });
            continue;
        }
        let send_at = at_ms.max(prev_done);
        let http = request.to_http();
        let (resp, rt) = transport
            .round_trip(&endpoint, src, &http, SimTime::from_millis(send_at))
            .expect("registered endpoint, no fault plan");
        let done = send_at + rt.as_millis();
        let hits = cache_flags(&resp);
        let batch = matches!(request, ServeRequest::Batch(_));
        let answers = match ServeResponse::from_http(&resp, batch) {
            Ok(r) => r.answers().to_vec(),
            Err(_) => Vec::new(),
        };
        for (i, q) in request.queries().iter().enumerate() {
            let outcome = answers
                .get(i)
                .map(answer_outcome)
                .unwrap_or(OutcomeCode::Failed);
            rec.record(&Event {
                at: SimTime::from_millis(done),
                kind: EventKind::ServeLookupEnd {
                    tag: q.telemetry_tag(),
                    shard: shard_id,
                    endpoint: endpoint.clone(),
                    outcome,
                    cache_hit: hits.get(i).copied().unwrap_or(false),
                    duration_ms: done - at_ms,
                },
            });
        }
        for key in evicted_keys(&resp) {
            rec.record(&Event {
                at: SimTime::from_millis(done),
                kind: EventKind::CacheEvicted {
                    shard: shard_id,
                    key,
                },
            });
        }
        prev_done = done;
    }
    rec.record(&Event {
        at: SimTime::from_millis(prev_done),
        kind: EventKind::WorkerEnd { worker: shard_id },
    });
    (rec.into_events(), arrivals)
}

/// A recorder that drops everything (for callers that only want the
/// outcome).
struct NopRecorder;

impl Recorder for NopRecorder {
    fn record(&mut self, _event: &Event) {}
}

/// Runs the serve campaign and discards the event stream.
pub fn run(store: &Arc<PlanStore>, opts: &ServeOptions) -> ServeOutcome {
    run_recorded(store, opts, &mut NopRecorder)
}

/// Runs the serve campaign, feeding the merged, time-ordered stream —
/// plus the monitor's synthesized alert events at their stream
/// positions — through `recorder`.
///
/// Shards are pulled off a shared work queue by `opts.threads` OS
/// threads; the merged stream, the health report, the telemetry
/// summary and everything the recorder sees are byte-identical for any
/// thread count.
pub fn run_recorded(
    store: &Arc<PlanStore>,
    opts: &ServeOptions,
    recorder: &mut dyn Recorder,
) -> ServeOutcome {
    /// One shard's finished work: its event stream and arrival count.
    type ShardSlot = Mutex<Option<(Vec<SeqEvent>, u64)>>;
    let n_shards = store.shards().len();
    let slots: Vec<ShardSlot> = (0..n_shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let threads = opts.threads.clamp(1, n_shards.max(1));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let id = next.fetch_add(1, Ordering::Relaxed);
                if id >= n_shards {
                    break;
                }
                let result = run_shard(store, opts, id as u32);
                *slots[id].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    let mut streams = Vec::with_capacity(n_shards);
    let mut arrivals = 0u64;
    for slot in &slots {
        let (events, n) = slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("every shard ran to completion");
        arrivals += n;
        streams.push(events);
    }
    let merged = merge_seq_streams(streams.iter().map(Vec::as_slice));
    drop(streams);
    let makespan_ms = merged.last().map(|e| e.at.as_millis()).unwrap_or(0);

    let mut monitor = CampaignMonitor::new(opts.policy.clone());
    let mut agg = MetricsAggregator::new();
    let feed = |event: &Event,
                monitor: &mut CampaignMonitor,
                agg: &mut MetricsAggregator,
                recorder: &mut dyn Recorder| {
        monitor.observe(event);
        agg.observe(event);
        recorder.record(event);
        for alert in monitor.take_events() {
            agg.observe(&alert);
            recorder.record(&alert);
        }
    };

    feed(
        &Event {
            at: SimTime::ZERO,
            kind: EventKind::CampaignBegin {
                seed: opts.seed,
                n_jobs: arrivals.min(u64::from(u32::MAX)) as u32,
                n_workers: n_shards as u32,
            },
        },
        &mut monitor,
        &mut agg,
        recorder,
    );
    for event in &merged {
        feed(event, &mut monitor, &mut agg, recorder);
    }
    feed(
        &Event {
            at: SimTime::from_millis(makespan_ms),
            kind: EventKind::CampaignEnd { makespan_ms },
        },
        &mut monitor,
        &mut agg,
        recorder,
    );

    let health = monitor.finish();
    ServeOutcome {
        summary: agg.into_summary(),
        health,
        makespan_ms,
        arrivals,
    }
}
