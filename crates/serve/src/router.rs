//! The single request-facing entry point: every typed query — single or
//! batch — funnels through [`Router::handle`], which consults the LRU
//! answer cache and falls through to the store's indices.
//!
//! A batch of N queries is answered exactly as N singles issued in
//! order would be: same answers, same cache transitions, same eviction
//! log. The batch tests pin that equivalence down.

use crate::api::{ServeAnswer, ServeQuery, ServeRequest, ServeResponse};
use crate::cache::LruCache;
use crate::store::PlanStore;
use std::sync::Arc;

/// Routes typed requests to the store through a per-router answer cache.
#[derive(Debug, Clone)]
pub struct Router {
    store: Arc<PlanStore>,
    cache: LruCache,
}

impl Router {
    pub fn new(store: Arc<PlanStore>, cache_capacity: usize) -> Self {
        Self {
            store,
            cache: LruCache::new(cache_capacity),
        }
    }

    pub fn store(&self) -> &PlanStore {
        &self.store
    }

    /// Answers one query; the flag reports whether the answer came from
    /// the cache. Uncacheable kinds bypass the cache entirely; the
    /// store's [`PlanStore::answer`] handles every query kind
    /// exhaustively (divide-lint E1).
    pub fn route(&mut self, query: &ServeQuery) -> (ServeAnswer, bool) {
        if !query.cacheable() {
            return (self.store.answer(query), false);
        }
        let key = query.cache_key();
        if let Some(answer) = self.cache.get(&key) {
            return (answer, true);
        }
        let answer = self.store.answer(query);
        self.cache.insert(key, answer.clone());
        (answer, false)
    }

    /// Answers a request envelope: answers arrive in query order, and a
    /// batch is processed as its queries issued singly would be. The
    /// per-query flags report cache hits in the same order.
    pub fn handle(&mut self, request: &ServeRequest) -> (ServeResponse, Vec<bool>) {
        match request {
            ServeRequest::Single(q) => {
                let (answer, hit) = self.route(q);
                (ServeResponse::Single(answer), vec![hit])
            }
            ServeRequest::Batch(qs) => {
                let mut answers = Vec::with_capacity(qs.len());
                let mut hits = Vec::with_capacity(qs.len());
                for q in qs {
                    let (answer, hit) = self.route(q);
                    answers.push(answer);
                    hits.push(hit);
                }
                (ServeResponse::Batch(answers), hits)
            }
        }
    }

    /// Cache keys evicted since the last drain, in eviction order.
    pub fn drain_evicted(&mut self) -> Vec<String> {
        self.cache.drain_evicted()
    }
}
