//! The seeded load generator: a deterministic per-shard arrival
//! schedule simulating millions of lookup users on the virtual clock.
//!
//! Three phase kinds compose a campaign: `Steady` draws address tags
//! from a zipfian popularity law (a small hot set the answer cache
//! absorbs), `Burst` keeps the same mix at half the inter-arrival gap
//! (double the request rate — pressure the cache keeps survivable,
//! without breaching the latency SLO), and `Scan`
//! walks every block group and address tag of the shard in sequence —
//! distinct keys far past the cache capacity, the cache-hostile sweep
//! that collapses the hit rate and drags p99 through the SLO ceiling.
//!
//! Each shard's schedule is generated from its own `StdRng` seeded by
//! `mix64(seed, [shard])`, so the schedule is a pure function of
//! `(store, shard, phases, seed)` — independent of thread count and of
//! every other shard.

use crate::api::{ServeQuery, ServeRequest};
use crate::store::ShardIndex;
use bbsim_net::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The traffic shape of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Zipfian tag popularity at the nominal gap.
    Steady,
    /// Same mix, half gap: arrival pressure.
    Burst,
    /// Sequential sweep over every key: cache pressure.
    Scan,
}

/// One phase of the load campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadPhase {
    pub kind: PhaseKind,
    /// Phase length on the virtual clock, in ms.
    pub duration_ms: u64,
    /// Nominal mean inter-arrival gap per shard, in ms (`Burst` halves
    /// it; the actual gap jitters uniformly in `[gap/2, 3·gap/2]`).
    pub mean_gap_ms: u64,
}

impl LoadPhase {
    pub fn steady(duration_ms: u64, mean_gap_ms: u64) -> Self {
        Self {
            kind: PhaseKind::Steady,
            duration_ms,
            mean_gap_ms,
        }
    }

    pub fn burst(duration_ms: u64, mean_gap_ms: u64) -> Self {
        Self {
            kind: PhaseKind::Burst,
            duration_ms,
            mean_gap_ms,
        }
    }

    pub fn scan(duration_ms: u64, mean_gap_ms: u64) -> Self {
        Self {
            kind: PhaseKind::Scan,
            duration_ms,
            mean_gap_ms,
        }
    }
}

/// One scheduled arrival: the request enters the shard's queue at
/// `at_ms` on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    pub at_ms: u64,
    pub request: ServeRequest,
}

/// Zipfian sampler over ranks `0..n` (weight of rank r is `1/(r+1)`),
/// via inverse-CDF binary search on the precomputed cumulative weights.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for r in 0..n.max(1) {
            total += 1.0 / (r as f64 + 1.0);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        // lint:allow(T2): cumulative is built from a non-empty class list
        let total = *self.cumulative.last().expect("non-empty by construction");
        let u = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < u)
    }
}

/// The per-shard query mix generator.
struct QueryMix {
    city: String,
    isp: bbsim_isp::Isp,
    tags: Vec<u64>,
    block_groups: Vec<u64>,
    zipf: Zipf,
    /// Sequential cursor over `bgs + tags` for scan phases; persists
    /// across scan phases so repeated scans keep sweeping fresh keys.
    scan_cursor: usize,
}

impl QueryMix {
    fn new(shard: &ShardIndex) -> Self {
        let tags: Vec<u64> = shard.tags().collect();
        let block_groups: Vec<u64> = shard.block_groups().collect();
        let zipf = Zipf::new(tags.len());
        Self {
            city: shard.city.clone(),
            isp: shard.isp,
            tags,
            block_groups,
            zipf,
            scan_cursor: 0,
        }
    }

    /// A zipfian-popular query: mostly hot-tag plan lookups, a sprinkle
    /// of block-group percentile reads and (1 in 64) city tile pulls.
    fn popular(&self, rng: &mut StdRng) -> ServeQuery {
        if rng.gen_range(0u32..64) == 0 {
            return ServeQuery::Tiles {
                city: self.city.clone(),
            };
        }
        if !self.block_groups.is_empty() && rng.gen_range(0u32..8) == 0 {
            let i = self.zipf.sample(rng).min(self.block_groups.len() - 1);
            return ServeQuery::BlockGroup {
                city: self.city.clone(),
                isp: self.isp,
                bg: self.block_groups[i],
            };
        }
        let i = self.zipf.sample(rng).min(self.tags.len().saturating_sub(1));
        ServeQuery::Plans {
            city: self.city.clone(),
            isp: self.isp,
            tag: self.tags.get(i).copied().unwrap_or(0),
        }
    }

    /// The next key of the sequential sweep: block groups first, then
    /// every address tag, then wrap.
    fn scan(&mut self) -> ServeQuery {
        let total = self.block_groups.len() + self.tags.len();
        let i = self.scan_cursor % total.max(1);
        self.scan_cursor = self.scan_cursor.wrapping_add(1);
        if i < self.block_groups.len() {
            ServeQuery::BlockGroup {
                city: self.city.clone(),
                isp: self.isp,
                bg: self.block_groups[i],
            }
        } else {
            ServeQuery::Plans {
                city: self.city.clone(),
                isp: self.isp,
                tag: self
                    .tags
                    .get(i - self.block_groups.len())
                    .copied()
                    .unwrap_or(0),
            }
        }
    }

    fn next_query(&mut self, kind: PhaseKind, rng: &mut StdRng) -> ServeQuery {
        match kind {
            PhaseKind::Steady | PhaseKind::Burst => self.popular(rng),
            PhaseKind::Scan => self.scan(),
        }
    }
}

/// Generates one shard's full arrival schedule. Every 32nd arrival is a
/// batch of 4 queries (the batch-lookup path under load); the rest are
/// singles.
pub fn generate_schedule(
    shard_id: u32,
    shard: &ShardIndex,
    phases: &[LoadPhase],
    seed: u64,
) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(mix64(seed, &[u64::from(shard_id)]));
    let mut mix = QueryMix::new(shard);
    let mut arrivals = Vec::new();
    let mut now = 0u64;
    let mut phase_start = 0u64;
    let mut count = 0u64;
    for phase in phases {
        let gap = match phase.kind {
            PhaseKind::Steady | PhaseKind::Scan => phase.mean_gap_ms.max(1),
            PhaseKind::Burst => (phase.mean_gap_ms / 2).max(1),
        };
        let phase_end = phase_start + phase.duration_ms;
        now = now.max(phase_start);
        while now < phase_end {
            count += 1;
            let request = if count.is_multiple_of(32) {
                ServeRequest::Batch(
                    (0..4)
                        .map(|_| mix.next_query(phase.kind, &mut rng))
                        .collect(),
                )
            } else {
                ServeRequest::Single(mix.next_query(phase.kind, &mut rng))
            };
            arrivals.push(Arrival {
                at_ms: now,
                request,
            });
            // Uniform jitter in [gap/2, 3·gap/2] keeps the mean at the
            // nominal gap without synchronizing arrivals across shards.
            now += rng.gen_range(gap.div_ceil(2)..=gap + gap / 2);
        }
        phase_start = phase_end;
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PlanStore;
    use bbsim_dataset::artifact::CityArtifact;
    use bbsim_dataset::PlanRecord;
    use bbsim_geo::BlockGroupId;
    use bbsim_isp::Isp;
    use bqt::ScrapedPlan;

    fn shard() -> PlanStore {
        let records = (0..40u64)
            .map(|tag| PlanRecord {
                city: "Testville".into(),
                isp: Isp::CenturyLink,
                address_tag: tag * 7 + 1,
                block_group: BlockGroupId::new(30, 111, 1, (tag % 8) as u8),
                bg_index: (tag % 8) as usize,
                plans: vec![ScrapedPlan {
                    download_mbps: 100.0,
                    upload_mbps: 10.0,
                    price_usd: 50.0,
                }],
            })
            .collect();
        PlanStore::load(&[CityArtifact {
            city: "Testville".into(),
            records,
        }])
    }

    #[test]
    fn schedules_are_seed_deterministic_and_phase_bounded() {
        let store = shard();
        let phases = [
            LoadPhase::steady(1_000, 10),
            LoadPhase::burst(200, 10),
            LoadPhase::scan(500, 5),
        ];
        let a = generate_schedule(0, &store.shards()[0], &phases, 42);
        let b = generate_schedule(0, &store.shards()[0], &phases, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(a.last().unwrap().at_ms < 1_700);
        let c = generate_schedule(0, &store.shards()[0], &phases, 43);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn burst_halves_the_gap_and_batches_appear() {
        let store = shard();
        let steady = generate_schedule(0, &store.shards()[0], &[LoadPhase::steady(2_000, 20)], 7);
        let burst = generate_schedule(0, &store.shards()[0], &[LoadPhase::burst(2_000, 20)], 7);
        assert!(
            burst.len() > steady.len() * 3 / 2,
            "{} vs {}",
            burst.len(),
            steady.len()
        );
        assert!(steady
            .iter()
            .any(|a| matches!(a.request, ServeRequest::Batch(_))));
    }

    #[test]
    fn scan_sweeps_distinct_keys_past_any_small_cache() {
        let store = shard();
        let scan = generate_schedule(0, &store.shards()[0], &[LoadPhase::scan(130, 3)], 7);
        let mut keys: Vec<String> = scan
            .iter()
            .flat_map(|a| a.request.queries())
            .map(ServeQuery::cache_key)
            .collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert!(keys.len() * 2 > total, "sweep mostly distinct keys");
    }
}
