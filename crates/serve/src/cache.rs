//! The per-router LRU answer cache with deterministic eviction.
//!
//! Recency is a logical tick counter, not wall time, and both indices
//! are `BTreeMap`s: for a given sequence of `get`/`insert` calls the
//! eviction order — and therefore the `CacheEvicted` event log — is a
//! pure function of the call sequence, byte-identical across runs and
//! thread counts.

use crate::api::ServeAnswer;
use std::collections::BTreeMap;

/// A least-recently-used answer cache over string keys.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    /// Logical clock: bumped on every touch; the smallest tick in
    /// `by_tick` is the eviction victim.
    tick: u64,
    by_key: BTreeMap<String, (u64, ServeAnswer)>,
    by_tick: BTreeMap<u64, String>,
    /// Keys evicted since the last [`LruCache::drain_evicted`], in
    /// eviction order.
    evicted: Vec<String>,
}

impl LruCache {
    /// A cache holding at most `capacity` answers (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            by_key: BTreeMap::new(),
            by_tick: BTreeMap::new(),
            evicted: Vec::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<ServeAnswer> {
        let (tick, answer) = self.by_key.get_mut(key)?;
        let old = *tick;
        self.tick += 1;
        *tick = self.tick;
        let answer = answer.clone();
        let moved = self.by_tick.remove(&old);
        debug_assert_eq!(moved.as_deref(), Some(key));
        self.by_tick.insert(self.tick, key.to_string());
        Some(answer)
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry if the cache is over capacity.
    pub fn insert(&mut self, key: String, answer: ServeAnswer) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((old, _)) = self.by_key.insert(key.clone(), (self.tick, answer)) {
            self.by_tick.remove(&old);
        }
        self.by_tick.insert(self.tick, key);
        while self.by_key.len() > self.capacity {
            let (_, victim) = self
                .by_tick
                .pop_first()
                // lint:allow(T2): len > capacity guarantees a first entry
                .expect("over capacity implies entries");
            self.by_key.remove(&victim);
            self.evicted.push(victim);
        }
    }

    /// Keys evicted since the last drain, in eviction order.
    pub fn drain_evicted(&mut self) -> Vec<String> {
        std::mem::take(&mut self.evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(n: u64) -> ServeAnswer {
        ServeAnswer::Percentiles {
            n,
            p25: 1.0,
            p50: 2.0,
            p75: 3.0,
            p95: 4.0,
        }
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), answer(1));
        cache.insert("b".into(), answer(2));
        assert!(cache.get("a").is_some(), "refresh a");
        cache.insert("c".into(), answer(3));
        assert_eq!(cache.drain_evicted(), vec!["b".to_string()]);
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), answer(1));
        cache.insert("b".into(), answer(2));
        cache.insert("a".into(), answer(10));
        cache.insert("c".into(), answer(3));
        assert_eq!(cache.drain_evicted(), vec!["b".to_string()]);
        assert_eq!(cache.get("a"), Some(answer(10)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert("a".into(), answer(1));
        assert!(cache.is_empty());
        assert!(cache.drain_evicted().is_empty());
    }

    #[test]
    fn eviction_log_is_a_function_of_the_call_sequence() {
        let run = || {
            let mut cache = LruCache::new(3);
            let mut log = Vec::new();
            for i in 0..32u64 {
                let key = format!("k{}", i % 7);
                if cache.get(&key).is_none() {
                    cache.insert(key, answer(i));
                }
                log.extend(cache.drain_evicted());
            }
            log
        };
        assert_eq!(run(), run());
    }
}
