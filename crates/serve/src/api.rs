//! The request-facing API surface: typed queries, answers, and the
//! batch-capable request/response envelopes, with a JSONL-stable wire
//! form that round-trips through [`bbsim_net::http`] and the frame codec.
//!
//! Every query kind is one [`ServeQuery`] variant; every reply is one
//! [`ServeAnswer`] variant. The wire form is a single line of JSON-lite
//! per query or answer (the same restricted dialect `events.jsonl`
//! uses: string values never contain quotes or backslashes, so no
//! escaping pass exists on either side). Serialization is exhaustive
//! over the enums — adding a variant without extending the wire
//! functions is a compile error here and a lint error in divide-lint's
//! E1 rule, which pins `wire_name`/`cacheable`/`query_to_line`/
//! `parse_query_line` to the variant list.

use bbsim_isp::Isp;
use bbsim_net::{Method, Request, Response};
use bqt::ScrapedPlan;
use std::fmt;

/// One typed lookup against the plan store.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeQuery {
    /// Plans offered at one address tag of `city` × `isp`.
    Plans { city: String, isp: Isp, tag: u64 },
    /// Carriage-value percentiles over one block group of `city` × `isp`.
    BlockGroup { city: String, isp: Isp, bg: u64 },
    /// City-wide competition/diversity tiles (cross-ISP, uncacheable).
    Tiles { city: String },
}

impl ServeQuery {
    /// Stable wire discriminant for the query kind.
    pub fn wire_name(&self) -> &'static str {
        match self {
            ServeQuery::Plans { .. } => "plans",
            ServeQuery::BlockGroup { .. } => "block_group",
            ServeQuery::Tiles { .. } => "tiles",
        }
    }

    /// Whether the answer may be served from (and stored in) the LRU
    /// answer cache. Tile queries aggregate across every shard of a
    /// city, so they bypass the per-shard cache.
    pub fn cacheable(&self) -> bool {
        match self {
            ServeQuery::Plans { .. } => true,
            ServeQuery::BlockGroup { .. } => true,
            ServeQuery::Tiles { .. } => false,
        }
    }

    /// The shard this query routes to: `(city, isp)` for sharded kinds,
    /// `None` for city-wide tile queries.
    pub fn shard_key(&self) -> Option<(&str, Isp)> {
        match self {
            ServeQuery::Plans { city, isp, .. } => Some((city, *isp)),
            ServeQuery::BlockGroup { city, isp, .. } => Some((city, *isp)),
            ServeQuery::Tiles { .. } => None,
        }
    }

    /// Deterministic cache key (also the eviction-log key). Contains no
    /// commas, so keys survive the comma-joined `x-evicted` header.
    pub fn cache_key(&self) -> String {
        match self {
            ServeQuery::Plans { city, isp, tag } => {
                format!("plans/{city}/{}/{tag}", isp.slug())
            }
            ServeQuery::BlockGroup { city, isp, bg } => {
                format!("bg/{city}/{}/{bg}", isp.slug())
            }
            ServeQuery::Tiles { city } => format!("tiles/{city}"),
        }
    }

    /// The telemetry tag attributed to this query's lookup event.
    pub fn telemetry_tag(&self) -> u64 {
        match self {
            ServeQuery::Plans { tag, .. } => *tag,
            ServeQuery::BlockGroup { bg, .. } => *bg,
            ServeQuery::Tiles { .. } => 0,
        }
    }
}

/// A wire-form defect found while parsing a query or answer line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed serve wire line: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// Extracts `"key":<value>` from a JSON-lite line; values are either
/// quoted strings (no escapes) or bare tokens terminated by `,` / `}`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}'])?;
        Some(&rest[..end])
    }
}

fn num_field(line: &str, key: &str) -> Result<u64, WireError> {
    field(line, key)
        .ok_or_else(|| wire_err(format!("missing field {key:?}")))?
        .parse()
        .map_err(|_| wire_err(format!("non-numeric field {key:?}")))
}

fn f64_field(line: &str, key: &str) -> Result<f64, WireError> {
    field(line, key)
        .ok_or_else(|| wire_err(format!("missing field {key:?}")))?
        .parse()
        .map_err(|_| wire_err(format!("non-numeric field {key:?}")))
}

fn str_field(line: &str, key: &str) -> Result<String, WireError> {
    field(line, key)
        .map(str::to_string)
        .ok_or_else(|| wire_err(format!("missing field {key:?}")))
}

fn isp_field(line: &str) -> Result<Isp, WireError> {
    let slug = str_field(line, "isp")?;
    Isp::from_slug(&slug).ok_or_else(|| wire_err(format!("unknown isp slug {slug:?}")))
}

/// Serializes one query to its single-line wire form.
pub fn query_to_line(q: &ServeQuery) -> String {
    match q {
        ServeQuery::Plans { city, isp, tag } => format!(
            "{{\"q\":\"plans\",\"city\":\"{city}\",\"isp\":\"{}\",\"tag\":{tag}}}",
            isp.slug()
        ),
        ServeQuery::BlockGroup { city, isp, bg } => format!(
            "{{\"q\":\"block_group\",\"city\":\"{city}\",\"isp\":\"{}\",\"bg\":{bg}}}",
            isp.slug()
        ),
        ServeQuery::Tiles { city } => format!("{{\"q\":\"tiles\",\"city\":\"{city}\"}}"),
    }
}

/// Parses one wire line back to a query; exact inverse of
/// [`query_to_line`] on every value the serializer emits.
pub fn parse_query_line(line: &str) -> Result<ServeQuery, WireError> {
    let kind = str_field(line, "q")?;
    match kind.as_str() {
        "plans" => Ok(ServeQuery::Plans {
            city: str_field(line, "city")?,
            isp: isp_field(line)?,
            tag: num_field(line, "tag")?,
        }),
        "block_group" => Ok(ServeQuery::BlockGroup {
            city: str_field(line, "city")?,
            isp: isp_field(line)?,
            bg: num_field(line, "bg")?,
        }),
        "tiles" => Ok(ServeQuery::Tiles {
            city: str_field(line, "city")?,
        }),
        other => Err(wire_err(format!("unknown query kind {other:?}"))),
    }
}

/// One typed answer from the plan store.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeAnswer {
    /// The plans offered at the queried address.
    Plans { plans: Vec<ScrapedPlan> },
    /// The address exists in the store but no plan serves it.
    NoService,
    /// Carriage-value percentiles over the queried block group.
    Percentiles {
        n: u64,
        p25: f64,
        p50: f64,
        p75: f64,
        p95: f64,
    },
    /// City-wide competition/diversity tile summary.
    Tiles {
        block_groups: u64,
        served: u64,
        avg_providers: f64,
        diversity: f64,
    },
    /// The queried key is not in the store at all.
    NotFound,
    /// The server refused the lookup under overload.
    Shed,
}

/// Packs plans into the dataset's `down/up/price;...` triple format.
fn pack_plans(plans: &[ScrapedPlan]) -> String {
    plans
        .iter()
        .map(|p| format!("{}/{}/{}", p.download_mbps, p.upload_mbps, p.price_usd))
        .collect::<Vec<_>>()
        .join(";")
}

fn unpack_plans(s: &str) -> Result<Vec<ScrapedPlan>, WireError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|triple| {
            let mut it = triple.split('/');
            let mut next = || {
                it.next()
                    .ok_or_else(|| wire_err(format!("short plan triple {triple:?}")))?
                    .parse::<f64>()
                    .map_err(|_| wire_err(format!("non-numeric plan triple {triple:?}")))
            };
            Ok(ScrapedPlan {
                download_mbps: next()?,
                upload_mbps: next()?,
                price_usd: next()?,
            })
        })
        .collect()
}

/// Serializes one answer to its single-line wire form.
pub fn answer_to_line(a: &ServeAnswer) -> String {
    match a {
        ServeAnswer::Plans { plans } => {
            format!("{{\"a\":\"plans\",\"plans\":\"{}\"}}", pack_plans(plans))
        }
        ServeAnswer::NoService => "{\"a\":\"no_service\"}".to_string(),
        ServeAnswer::Percentiles {
            n,
            p25,
            p50,
            p75,
            p95,
        } => format!(
            "{{\"a\":\"percentiles\",\"n\":{n},\"p25\":{p25},\"p50\":{p50},\"p75\":{p75},\"p95\":{p95}}}"
        ),
        ServeAnswer::Tiles {
            block_groups,
            served,
            avg_providers,
            diversity,
        } => format!(
            "{{\"a\":\"tiles\",\"block_groups\":{block_groups},\"served\":{served},\"avg_providers\":{avg_providers},\"diversity\":{diversity}}}"
        ),
        ServeAnswer::NotFound => "{\"a\":\"not_found\"}".to_string(),
        ServeAnswer::Shed => "{\"a\":\"shed\"}".to_string(),
    }
}

/// Parses one wire line back to an answer; exact inverse of
/// [`answer_to_line`] (f64 fields use `Display`'s shortest round-trip
/// form, so values survive byte-identically).
pub fn parse_answer_line(line: &str) -> Result<ServeAnswer, WireError> {
    let kind = str_field(line, "a")?;
    match kind.as_str() {
        "plans" => Ok(ServeAnswer::Plans {
            plans: unpack_plans(&str_field(line, "plans")?)?,
        }),
        "no_service" => Ok(ServeAnswer::NoService),
        "percentiles" => Ok(ServeAnswer::Percentiles {
            n: num_field(line, "n")?,
            p25: f64_field(line, "p25")?,
            p50: f64_field(line, "p50")?,
            p75: f64_field(line, "p75")?,
            p95: f64_field(line, "p95")?,
        }),
        "tiles" => Ok(ServeAnswer::Tiles {
            block_groups: num_field(line, "block_groups")?,
            served: num_field(line, "served")?,
            avg_providers: f64_field(line, "avg_providers")?,
            diversity: f64_field(line, "diversity")?,
        }),
        "not_found" => Ok(ServeAnswer::NotFound),
        "shed" => Ok(ServeAnswer::Shed),
        other => Err(wire_err(format!("unknown answer kind {other:?}"))),
    }
}

/// A request envelope: one query or an ordered batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    Single(ServeQuery),
    Batch(Vec<ServeQuery>),
}

impl ServeRequest {
    /// The queries in envelope order (a single request is a batch of 1).
    pub fn queries(&self) -> &[ServeQuery] {
        match self {
            ServeRequest::Single(q) => std::slice::from_ref(q),
            ServeRequest::Batch(qs) => qs,
        }
    }

    /// Lowers the envelope onto HTTP: `POST /lookup` carries one query
    /// line, `POST /batch` one line per query.
    pub fn to_http(&self) -> Request {
        match self {
            ServeRequest::Single(q) => Request::post("/lookup", query_to_line(q)),
            ServeRequest::Batch(qs) => {
                let body = qs.iter().map(query_to_line).collect::<Vec<_>>().join("\n");
                Request::post("/batch", body)
            }
        }
    }

    /// Lifts an HTTP request back to the typed envelope.
    pub fn from_http(req: &Request) -> Result<ServeRequest, WireError> {
        if req.method != Method::Post {
            return Err(wire_err("serve endpoints accept POST only"));
        }
        match req.path.as_str() {
            "/lookup" => Ok(ServeRequest::Single(parse_query_line(req.body.trim())?)),
            "/batch" => Ok(ServeRequest::Batch(
                req.body
                    .lines()
                    .map(parse_query_line)
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            other => Err(wire_err(format!("unknown serve path {other:?}"))),
        }
    }
}

/// The response envelope mirroring [`ServeRequest`]: answers arrive in
/// query order, one per query.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    Single(ServeAnswer),
    Batch(Vec<ServeAnswer>),
}

impl ServeResponse {
    /// The answers in envelope order.
    pub fn answers(&self) -> &[ServeAnswer] {
        match self {
            ServeResponse::Single(a) => std::slice::from_ref(a),
            ServeResponse::Batch(answers) => answers,
        }
    }

    /// Lowers the envelope onto an HTTP 200 with one answer line per
    /// query.
    pub fn to_http(&self) -> Response {
        match self {
            ServeResponse::Single(a) => Response::ok(answer_to_line(a)),
            ServeResponse::Batch(answers) => {
                let body = answers
                    .iter()
                    .map(answer_to_line)
                    .collect::<Vec<_>>()
                    .join("\n");
                Response::ok(body)
            }
        }
    }

    /// Lifts an HTTP response back to the typed envelope; the request's
    /// shape decides single vs batch.
    pub fn from_http(resp: &Response, batch: bool) -> Result<ServeResponse, WireError> {
        if batch {
            Ok(ServeResponse::Batch(
                resp.body
                    .lines()
                    .map(parse_answer_line)
                    .collect::<Result<Vec<_>, _>>()?,
            ))
        } else {
            Ok(ServeResponse::Single(parse_answer_line(resp.body.trim())?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queries() -> Vec<ServeQuery> {
        vec![
            ServeQuery::Plans {
                city: "Billings".into(),
                isp: Isp::CenturyLink,
                tag: 90_210,
            },
            ServeQuery::BlockGroup {
                city: "Fargo".into(),
                isp: Isp::CenturyLink,
                bg: 17,
            },
            ServeQuery::Tiles {
                city: "Billings".into(),
            },
        ]
    }

    fn answers() -> Vec<ServeAnswer> {
        vec![
            ServeAnswer::Plans {
                plans: vec![ScrapedPlan {
                    download_mbps: 940.0,
                    upload_mbps: 880.5,
                    price_usd: 65.0,
                }],
            },
            ServeAnswer::NoService,
            ServeAnswer::Percentiles {
                n: 12,
                p25: 1.25,
                p50: 2.5,
                p75: 4.125,
                p95: 9.75,
            },
            ServeAnswer::Tiles {
                block_groups: 98,
                served: 96,
                avg_providers: 1.75,
                diversity: 0.4375,
            },
            ServeAnswer::NotFound,
            ServeAnswer::Shed,
        ]
    }

    #[test]
    fn query_lines_round_trip() {
        for q in queries() {
            let line = query_to_line(&q);
            assert_eq!(parse_query_line(&line).unwrap(), q, "{line}");
            assert!(line.contains(q.wire_name()));
        }
    }

    #[test]
    fn answer_lines_round_trip() {
        for a in answers() {
            let line = answer_to_line(&a);
            assert_eq!(parse_answer_line(&line).unwrap(), a, "{line}");
        }
    }

    #[test]
    fn envelopes_round_trip_through_http_wire() {
        let reqs = vec![
            ServeRequest::Single(queries().remove(0)),
            ServeRequest::Batch(queries()),
        ];
        for req in reqs {
            let http = req.to_http();
            let revived = Request::from_wire(&http.to_wire()).unwrap();
            assert_eq!(ServeRequest::from_http(&revived).unwrap(), req);
        }
        let resp = ServeResponse::Batch(answers());
        let http = resp.to_http();
        let revived = Response::from_wire(&http.to_wire()).unwrap();
        assert_eq!(ServeResponse::from_http(&revived, true).unwrap(), resp);
    }

    #[test]
    fn cache_keys_are_comma_free_and_unique() {
        let keys: Vec<String> = queries().iter().map(ServeQuery::cache_key).collect();
        for k in &keys {
            assert!(!k.contains(','), "{k}");
        }
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_query_line("{\"q\":\"warp\"}").is_err());
        assert!(parse_query_line("{\"q\":\"plans\",\"city\":\"X\"}").is_err());
        assert!(parse_answer_line("{\"a\":\"percentiles\",\"n\":no}").is_err());
    }
}
