//! The transport-facing adapter: a [`PlanService`] wraps one shard's
//! [`Router`] behind [`bbsim_net::Service`], so serve traffic rides the
//! same hermetic simulated network as the scraping campaigns.
//!
//! Cache observability crosses the wire in response headers instead of
//! shared state: `x-cache` carries one `h`/`m` flag per answered query
//! (envelope order) and `x-evicted` the comma-joined cache keys evicted
//! while answering. The engine parses both to emit `ServeLookupEnd` and
//! `CacheEvicted` telemetry without reaching into the service.

use crate::api::{ServeRequest, WireError};
use crate::router::Router;
use crate::store::PlanStore;
use bbsim_net::{Exchange, Request, Response, Service, SimDuration, SimIp, SimTime, Status};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Response header carrying per-query cache flags (`h,m,...`).
pub const CACHE_HEADER: &str = "x-cache";
/// Response header carrying evicted cache keys (comma-joined).
pub const EVICTED_HEADER: &str = "x-evicted";

/// Virtual processing costs of one lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCosts {
    /// Per-query cost when the answer cache hits.
    pub hit_ms: u64,
    /// Per-query cost when the indices must be walked.
    pub miss_ms: u64,
    /// Upper bound of the per-miss jitter drawn from the hermetic
    /// transport RNG (0 = deterministic cost).
    pub miss_jitter_ms: u64,
}

impl ServeCosts {
    pub fn paper_default() -> Self {
        Self {
            hit_ms: 1,
            miss_ms: 6,
            miss_jitter_ms: 2,
        }
    }
}

/// One shard's serving stack: router + cost model, mounted on a
/// transport endpoint.
#[derive(Debug)]
pub struct PlanService {
    router: Router,
    costs: ServeCosts,
}

impl PlanService {
    pub fn new(store: Arc<PlanStore>, cache_capacity: usize, costs: ServeCosts) -> Self {
        Self {
            router: Router::new(store, cache_capacity),
            costs,
        }
    }

    fn answer(&mut self, req: &Request, rng: &mut StdRng) -> (Response, SimDuration) {
        let request = match ServeRequest::from_http(req) {
            Ok(r) => r,
            Err(WireError(msg)) => {
                let mut resp = Response::ok(msg);
                resp.status = Status::BadRequest;
                return (resp, SimDuration::from_millis(1));
            }
        };
        let (response, hits) = self.router.handle(&request);
        let mut processing = 0u64;
        for &hit in &hits {
            processing += if hit {
                self.costs.hit_ms
            } else {
                self.costs.miss_ms + rng.gen_range(0..=self.costs.miss_jitter_ms)
            };
        }
        let flags = hits
            .iter()
            .map(|&h| if h { "h" } else { "m" })
            .collect::<Vec<_>>()
            .join(",");
        let mut http = response.to_http().with_header(CACHE_HEADER, flags);
        let evicted = self.router.drain_evicted();
        if !evicted.is_empty() {
            http = http.with_header(EVICTED_HEADER, evicted.join(","));
        }
        (http, SimDuration::from_millis(processing))
    }
}

impl Service for PlanService {
    fn handle(&mut self, _peer: SimIp, req: &Request, _now: SimTime, rng: &mut StdRng) -> Exchange {
        let (response, processing) = self.answer(req, rng);
        Exchange {
            response,
            processing,
        }
    }
}

/// Parses the `x-cache` header back to per-query flags (empty when the
/// header is absent, e.g. on an error response).
pub fn cache_flags(resp: &Response) -> Vec<bool> {
    resp.header(CACHE_HEADER)
        .map(|v| v.split(',').map(|f| f == "h").collect())
        .unwrap_or_default()
}

/// Parses the `x-evicted` header back to evicted cache keys.
pub fn evicted_keys(resp: &Response) -> Vec<String> {
    resp.header(EVICTED_HEADER)
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_default()
}
