//! The sharded in-memory plan store: per-`(city, ISP)` indices built
//! from curated per-city dataset artifacts.
//!
//! Each shard owns three read paths — address tag → offered plans,
//! block group → carriage-value percentiles, and (on the city's primary
//! shard) the city-wide competition/diversity tile summary. Index
//! structures are `BTreeMap`s keyed on integers so iteration order, and
//! therefore every derived artifact, is deterministic (divide-lint D2).

use crate::api::{ServeAnswer, ServeQuery};
use bbsim_dataset::artifact::CityArtifact;
use bbsim_isp::Isp;
use bqt::ScrapedPlan;
use std::collections::BTreeMap;

/// Carriage-value percentile summary over one block group's serviced
/// addresses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvSummary {
    /// Serviced addresses the percentiles are computed over.
    pub n: u64,
    pub p25: f64,
    pub p50: f64,
    pub p75: f64,
    pub p95: f64,
}

/// City-wide competition summary served by tile queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityTiles {
    /// Block groups with at least one curated address.
    pub block_groups: u64,
    /// Block groups where at least one ISP offers service.
    pub served: u64,
    /// Mean number of distinct serving ISPs per covered block group.
    pub avg_providers: f64,
    /// 1 − Herfindahl index over the ISPs' serviced-address shares:
    /// 0 = monopoly, approaching 1 = evenly split market.
    pub diversity: f64,
}

/// Linear-interpolated quantile over an ascending slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// One `(city, ISP)` slice of the store.
#[derive(Debug, Clone)]
pub struct ShardIndex {
    pub city: String,
    pub isp: Isp,
    /// Address tag → plans scraped there (empty = authoritative
    /// no-service).
    plans_by_tag: BTreeMap<u64, Vec<ScrapedPlan>>,
    /// Block-group index → carriage-value percentile summary.
    bg_percentiles: BTreeMap<u64, CvSummary>,
    /// City-wide tiles; populated on the city's primary (first) shard
    /// only, since tiles aggregate across every ISP of the city.
    tiles: Option<CityTiles>,
}

impl ShardIndex {
    /// The shard's endpoint name on the transport.
    pub fn endpoint(&self) -> String {
        format!("serve/{}/{}", self.city.to_lowercase(), self.isp.slug())
    }

    pub fn lookup_plans(&self, tag: u64) -> Option<&[ScrapedPlan]> {
        self.plans_by_tag.get(&tag).map(Vec::as_slice)
    }

    pub fn bg_summary(&self, bg: u64) -> Option<&CvSummary> {
        self.bg_percentiles.get(&bg)
    }

    pub fn tiles(&self) -> Option<&CityTiles> {
        self.tiles.as_ref()
    }

    /// Address tags indexed by this shard, ascending.
    pub fn tags(&self) -> impl Iterator<Item = u64> + '_ {
        self.plans_by_tag.keys().copied()
    }

    /// Block-group indices with a percentile summary, ascending.
    pub fn block_groups(&self) -> impl Iterator<Item = u64> + '_ {
        self.bg_percentiles.keys().copied()
    }

    pub fn len(&self) -> usize {
        self.plans_by_tag.len()
    }

    pub fn is_empty(&self) -> bool {
        self.plans_by_tag.is_empty()
    }
}

/// The full store: every shard, ordered by `(city, ISP column)` so shard
/// ids are a deterministic function of the artifact set.
#[derive(Debug, Clone, Default)]
pub struct PlanStore {
    shards: Vec<ShardIndex>,
}

impl PlanStore {
    /// Builds the store from curated per-city artifacts. Each city
    /// contributes one shard per ISP present in its records; the city's
    /// first shard additionally carries the cross-ISP tile summary.
    pub fn load(artifacts: &[CityArtifact]) -> PlanStore {
        let mut shards: Vec<ShardIndex> = Vec::new();
        let mut cities: Vec<&CityArtifact> = artifacts.iter().collect();
        cities.sort_by_key(|a| a.city.clone());
        for artifact in cities {
            let mut by_isp: BTreeMap<Isp, Vec<&bbsim_dataset::PlanRecord>> = BTreeMap::new();
            for record in &artifact.records {
                by_isp.entry(record.isp).or_default().push(record);
            }
            let tiles = Self::build_tiles(&by_isp);
            let mut first = true;
            for (isp, records) in by_isp {
                let mut plans_by_tag = BTreeMap::new();
                let mut cv_by_bg: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
                for r in records {
                    plans_by_tag.insert(r.address_tag, r.plans.clone());
                    if let Some(cv) = r.best_cv() {
                        cv_by_bg.entry(r.bg_index as u64).or_default().push(cv);
                    }
                }
                let bg_percentiles = cv_by_bg
                    .into_iter()
                    .map(|(bg, mut cvs)| {
                        cvs.sort_by(f64::total_cmp);
                        let summary = CvSummary {
                            n: cvs.len() as u64,
                            p25: quantile(&cvs, 0.25),
                            p50: quantile(&cvs, 0.50),
                            p75: quantile(&cvs, 0.75),
                            p95: quantile(&cvs, 0.95),
                        };
                        (bg, summary)
                    })
                    .collect();
                shards.push(ShardIndex {
                    city: artifact.city.clone(),
                    isp,
                    plans_by_tag,
                    bg_percentiles,
                    tiles: first.then_some(tiles),
                });
                first = false;
            }
        }
        PlanStore { shards }
    }

    fn build_tiles(by_isp: &BTreeMap<Isp, Vec<&bbsim_dataset::PlanRecord>>) -> CityTiles {
        // Coverage per block group: which ISPs serve at least one
        // address there, and each ISP's citywide serviced-address count
        // (the market-share base for the diversity index).
        let mut providers_by_bg: BTreeMap<u64, Vec<Isp>> = BTreeMap::new();
        let mut served_by_isp: BTreeMap<Isp, u64> = BTreeMap::new();
        for (isp, records) in by_isp {
            for r in records {
                let entry = providers_by_bg.entry(r.bg_index as u64).or_default();
                if !r.plans.is_empty() {
                    if !entry.contains(isp) {
                        entry.push(*isp);
                    }
                    *served_by_isp.entry(*isp).or_default() += 1;
                }
            }
        }
        let block_groups = providers_by_bg.len() as u64;
        let served = providers_by_bg.values().filter(|v| !v.is_empty()).count() as u64;
        let avg_providers = if block_groups == 0 {
            0.0
        } else {
            providers_by_bg.values().map(Vec::len).sum::<usize>() as f64 / block_groups as f64
        };
        let total: u64 = served_by_isp.values().sum();
        let diversity = if total == 0 {
            0.0
        } else {
            let herfindahl: f64 = served_by_isp
                .values()
                .map(|&n| {
                    let share = n as f64 / total as f64;
                    share * share
                })
                .sum();
            1.0 - herfindahl
        };
        CityTiles {
            block_groups,
            served,
            avg_providers,
            diversity,
        }
    }

    pub fn shards(&self) -> &[ShardIndex] {
        &self.shards
    }

    pub fn shard(&self, id: u32) -> Option<&ShardIndex> {
        self.shards.get(id as usize)
    }

    /// Shard id serving `(city, isp)`, if loaded.
    pub fn shard_for(&self, city: &str, isp: Isp) -> Option<u32> {
        self.shards
            .iter()
            .position(|s| s.city == city && s.isp == isp)
            .map(|i| i as u32)
    }

    /// Shard id a query routes to: its `(city, isp)` shard, or for
    /// city-wide queries the city's primary shard.
    pub fn route_shard(&self, query: &ServeQuery) -> Option<u32> {
        match query.shard_key() {
            Some((city, isp)) => self.shard_for(city, isp),
            None => match query {
                ServeQuery::Tiles { city } => self
                    .shards
                    .iter()
                    .position(|s| s.city == *city)
                    .map(|i| i as u32),
                ServeQuery::Plans { .. } | ServeQuery::BlockGroup { .. } => None,
            },
        }
    }

    /// Answers one query against the indices (no cache involved).
    pub fn answer(&self, query: &ServeQuery) -> ServeAnswer {
        match query {
            ServeQuery::Plans { city, isp, tag } => {
                match self
                    .shard_for(city, *isp)
                    .and_then(|id| self.shard(id))
                    .and_then(|s| s.lookup_plans(*tag))
                {
                    Some([]) => ServeAnswer::NoService,
                    Some(plans) => ServeAnswer::Plans {
                        plans: plans.to_vec(),
                    },
                    None => ServeAnswer::NotFound,
                }
            }
            ServeQuery::BlockGroup { city, isp, bg } => {
                match self
                    .shard_for(city, *isp)
                    .and_then(|id| self.shard(id))
                    .and_then(|s| s.bg_summary(*bg))
                {
                    Some(s) => ServeAnswer::Percentiles {
                        n: s.n,
                        p25: s.p25,
                        p50: s.p50,
                        p75: s.p75,
                        p95: s.p95,
                    },
                    None => ServeAnswer::NotFound,
                }
            }
            ServeQuery::Tiles { city } => {
                match self
                    .shards
                    .iter()
                    .find_map(|s| (s.city == *city).then(|| s.tiles()).flatten())
                {
                    Some(t) => ServeAnswer::Tiles {
                        block_groups: t.block_groups,
                        served: t.served,
                        avg_providers: t.avg_providers,
                        diversity: t.diversity,
                    },
                    None => ServeAnswer::NotFound,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_dataset::PlanRecord;
    use bbsim_geo::BlockGroupId;

    fn record(isp: Isp, tag: u64, bg: usize, plans: Vec<ScrapedPlan>) -> PlanRecord {
        PlanRecord {
            city: "Testville".into(),
            isp,
            address_tag: tag,
            block_group: BlockGroupId::new(30, 111, 1, bg as u8),
            bg_index: bg,
            plans,
        }
    }

    fn plan(down: f64, price: f64) -> ScrapedPlan {
        ScrapedPlan {
            download_mbps: down,
            upload_mbps: down / 10.0,
            price_usd: price,
        }
    }

    fn store() -> PlanStore {
        PlanStore::load(&[CityArtifact {
            city: "Testville".into(),
            records: vec![
                record(Isp::CenturyLink, 1, 0, vec![plan(100.0, 50.0)]),
                record(Isp::CenturyLink, 2, 0, vec![plan(200.0, 50.0)]),
                record(Isp::CenturyLink, 3, 1, vec![]),
                record(Isp::Spectrum, 9, 0, vec![plan(400.0, 80.0)]),
            ],
        }])
    }

    #[test]
    fn shards_split_by_isp_and_index_tags() {
        let store = store();
        assert_eq!(store.shards().len(), 2);
        let cl = store.shard_for("Testville", Isp::CenturyLink).unwrap();
        let shard = store.shard(cl).unwrap();
        assert_eq!(shard.len(), 3);
        assert_eq!(shard.lookup_plans(2).unwrap().len(), 1);
        assert_eq!(shard.lookup_plans(3).unwrap().len(), 0, "no-service tag");
        assert!(shard.lookup_plans(99).is_none());
    }

    #[test]
    fn percentiles_cover_only_serviced_addresses() {
        let store = store();
        match store.answer(&ServeQuery::BlockGroup {
            city: "Testville".into(),
            isp: Isp::CenturyLink,
            bg: 0,
        }) {
            ServeAnswer::Percentiles { n, p25, p95, .. } => {
                assert_eq!(n, 2);
                assert!(p25 >= 2.0 && p95 <= 4.0, "cv range [2, 4]: {p25} {p95}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Block group 1 holds only a no-service address: no summary.
        assert_eq!(
            store.answer(&ServeQuery::BlockGroup {
                city: "Testville".into(),
                isp: Isp::CenturyLink,
                bg: 1,
            }),
            ServeAnswer::NotFound
        );
    }

    #[test]
    fn tiles_live_on_the_primary_shard_and_summarize_competition() {
        let store = store();
        match store.answer(&ServeQuery::Tiles {
            city: "Testville".into(),
        }) {
            ServeAnswer::Tiles {
                block_groups,
                served,
                avg_providers,
                diversity,
            } => {
                assert_eq!(block_groups, 2);
                assert_eq!(served, 1);
                assert!((avg_providers - 1.0).abs() < 1e-9);
                // Shares 2/3 and 1/3: 1 − (4/9 + 1/9) = 4/9.
                assert!((diversity - 4.0 / 9.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Only the primary (first) shard carries tiles.
        assert!(store.shard(0).unwrap().tiles().is_some());
        assert!(store.shard(1).unwrap().tiles().is_none());
    }
}
