//! The plan-serving query layer: a deterministic, sharded, in-memory
//! store answering the questions the curated dataset was built to
//! answer — what plans an address can buy, how carriage value
//! distributes over a block group, how competitive a city's broadband
//! market is — fronted by a typed request API and exercised by a
//! seeded load generator on the virtual clock.
//!
//! Layering, bottom up:
//!
//! * [`store`] — per-`(city, ISP)` [`ShardIndex`]es loaded from
//!   curated [`CityArtifact`](bbsim_dataset::artifact::CityArtifact)s;
//! * [`api`] — the [`ServeQuery`]/[`ServeAnswer`] enums and the
//!   [`ServeRequest`]/[`ServeResponse`] envelopes, with a JSONL-stable
//!   wire form (divide-lint E1 pins serialization to the variant list);
//! * [`cache`] + [`router`] — the single entry point every request
//!   funnels through: LRU answer cache with deterministic eviction,
//!   batch-of-N processed exactly as N ordered singles;
//! * [`service`] — the [`bbsim_net::Service`] adapter mounting one
//!   shard's router on the simulated network;
//! * [`load`] + [`engine`] — the zipfian/burst/scan load generator and
//!   the multi-threaded campaign engine whose merged telemetry stream
//!   (and every artifact derived from it: `events.jsonl`,
//!   `health.prom`, folded profiles) is byte-identical across thread
//!   counts.

pub mod api;
pub mod cache;
pub mod engine;
pub mod load;
pub mod router;
pub mod service;
pub mod store;

pub use api::{
    answer_to_line, parse_answer_line, parse_query_line, query_to_line, ServeAnswer, ServeQuery,
    ServeRequest, ServeResponse, WireError,
};
pub use cache::LruCache;
pub use engine::{run, run_recorded, ServeOptions, ServeOutcome};
pub use load::{Arrival, LoadPhase, PhaseKind};
pub use router::Router;
pub use service::{cache_flags, evicted_keys, PlanService, ServeCosts};
pub use store::{CityTiles, CvSummary, PlanStore, ShardIndex};
