//! Engine-level invariants on a real (quick-curated) store: the SLO
//! alert story of the quick campaign and thread-count byte-identity of
//! the recorded stream.

use bbsim_census::city_by_name;
use bbsim_dataset::artifact::CityArtifact;
use bbsim_dataset::{curate_city, CurationOptions};
use bbsim_serve::{run_recorded, PlanStore, ServeOptions};
use bqt::JsonlRecorder;
use std::sync::Arc;

fn quick_store() -> Arc<PlanStore> {
    let artifacts: Vec<CityArtifact> = ["Billings", "Fargo"]
        .iter()
        .map(|name| {
            let city = city_by_name(name).expect("study city");
            CityArtifact::from_dataset(&curate_city(city, &CurationOptions::quick(77)))
        })
        .collect();
    Arc::new(PlanStore::load(&artifacts))
}

#[test]
fn quick_campaign_fires_and_resolves_p99_and_is_thread_invariant() {
    let store = quick_store();
    assert_eq!(store.shards().len(), 3, "Billings x2 ISPs + Fargo x1");

    let mut streams = Vec::new();
    let mut outcomes = Vec::new();
    for threads in [1usize, 2, 4] {
        let opts = ServeOptions::quick(4242).threads(threads);
        let mut jsonl = JsonlRecorder::stable(Vec::new());
        let outcome = run_recorded(&store, &opts, &mut jsonl);
        streams.push(jsonl.into_inner());
        outcomes.push(outcome);
    }
    assert_eq!(streams[0], streams[1], "threads 1 vs 2");
    assert_eq!(streams[0], streams[2], "threads 1 vs 4");

    let outcome = &outcomes[0];
    assert!(outcome.lookups() > 50_000, "lookups: {}", outcome.lookups());
    assert!(outcome.summary.serve_sheds > 0, "scan must shed");
    assert!(
        outcome.summary.serve_cache_hits > 0,
        "steady phase must hit the cache"
    );
    let p99 = outcome
        .health
        .alerts
        .iter()
        .find(|a| a.rule == "p99_latency")
        .expect("scan must breach the latency SLO");
    assert!(
        p99.resolved_at.is_some(),
        "recovery phase must resolve the alert: {p99:?}"
    );
}
