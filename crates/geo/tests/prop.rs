//! Property tests over city-grid construction and spatial weights.

use bbsim_geo::{Adjacency, BoundingBox, CityGrid, Contiguity, LatLon, SpatialWeights};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any grown city is connected, has the requested size, unique GEOIDs,
    /// and symmetric adjacency.
    #[test]
    fn grown_cities_are_well_formed(
        n in 1usize..400,
        seed in any::<u64>(),
        state in 1u8..=99,
        county in 1u16..=999,
    ) {
        let g = CityGrid::grow(LatLon::new(35.0, -100.0), n, state, county, seed);
        prop_assert_eq!(g.len(), n);

        // Unique ids.
        let mut ids: Vec<_> = g.ids().to_vec();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);

        // Connectivity via rook adjacency.
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for j in g.rook_neighbors(i) {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));

        // Adjacency symmetry and row-standardized weights.
        let adj = Adjacency::from_grid(&g, Contiguity::Rook);
        for i in 0..n {
            for &j in adj.neighbors(i) {
                prop_assert!(adj.neighbors(j).contains(&i));
            }
        }
        let w = SpatialWeights::row_standardized(&adj);
        for i in 0..n {
            let s: f64 = w.row(i).iter().map(|&(_, v)| v).sum();
            if !adj.neighbors(i).is_empty() {
                prop_assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Radial position is always normalized and zero at the origin cell.
    #[test]
    fn radial_position_is_normalized(n in 1usize..200, seed in any::<u64>()) {
        let g = CityGrid::grow(LatLon::new(0.0, 0.0), n, 1, 1, seed);
        prop_assert_eq!(g.radial_position(0), 0.0);
        for i in 0..g.len() {
            let r = g.radial_position(i);
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }

    /// Haversine distance is a symmetric, non-negative function with
    /// identity at zero; centroids stay inside a sane bounding box.
    #[test]
    fn distances_behave(
        lat1 in -80.0f64..80.0, lon1 in -170.0f64..170.0,
        lat2 in -80.0f64..80.0, lon2 in -170.0f64..170.0,
    ) {
        let a = LatLon::new(lat1, lon1);
        let b = LatLon::new(lat2, lon2);
        let d = a.distance_km(&b);
        prop_assert!(d >= 0.0);
        prop_assert!((d - b.distance_km(&a)).abs() < 1e-9);
        prop_assert!(a.distance_km(&a) < 1e-9);
        // No two points on Earth are farther than half the circumference.
        prop_assert!(d <= 20_040.0);
    }

    /// A covering bounding box contains all its points and its own centre.
    #[test]
    fn bounding_boxes_cover(points in proptest::collection::vec((-80.0f64..80.0, -170.0f64..170.0), 1..40)) {
        let pts: Vec<LatLon> = points.iter().map(|&(la, lo)| LatLon::new(la, lo)).collect();
        let bb = BoundingBox::covering(pts.iter().copied()).expect("non-empty");
        for p in &pts {
            prop_assert!(bb.contains(p));
        }
        prop_assert!(bb.contains(&bb.center()));
    }
}
