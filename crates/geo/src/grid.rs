//! Synthetic city layouts: connected blobs of block-group cells on a lattice.
//!
//! Each study city is modelled as a set of unit cells (one per census block
//! group) grown from the city centre by a seeded random accretion process.
//! The result is an irregular but connected and reproducible footprint, which
//! gives contiguity graphs (and thus Moran's I) realistic structure: interior
//! cells have 4 rook neighbours, boundary cells fewer.

use crate::ids::BlockGroupId;
use crate::point::LatLon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Index of a cell (block group) within a [`CityGrid`]; dense `0..len()`.
pub type CellIndex = usize;

/// Edge length of one block-group cell in kilometres.
///
/// Block groups hold 600–3000 people; in a mid-density US city that is
/// roughly a square kilometre.
pub const CELL_KM: f64 = 1.0;

/// A city rendered as a connected set of lattice cells, one per block group.
#[derive(Debug, Clone)]
pub struct CityGrid {
    center: LatLon,
    /// Lattice coordinates of each cell, indexed by `CellIndex`.
    cells: Vec<(i32, i32)>,
    /// Reverse lookup from lattice coordinate to cell index.
    by_coord: HashMap<(i32, i32), CellIndex>,
    /// Block-group id of each cell.
    ids: Vec<BlockGroupId>,
}

impl CityGrid {
    /// Grows a connected blob of `n_cells` cells around `center`.
    ///
    /// Growth is random accretion: starting from the origin cell, repeatedly
    /// pick a random frontier cell (an empty lattice site adjacent to the
    /// blob) with a bias toward sites closer to the origin, producing
    /// compact-but-irregular city shapes. Deterministic in `seed`.
    ///
    /// Block-group GEOIDs are assigned within `state`/`county`, tracts of
    /// up to 4 block groups each.
    pub fn grow(center: LatLon, n_cells: usize, state: u8, county: u16, seed: u64) -> Self {
        assert!(n_cells >= 1, "a city needs at least one block group");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cells: Vec<(i32, i32)> = Vec::with_capacity(n_cells);
        let mut by_coord: HashMap<(i32, i32), CellIndex> = HashMap::with_capacity(n_cells);
        let mut frontier: Vec<(i32, i32)> = Vec::new();

        let add = |c: (i32, i32),
                   cells: &mut Vec<(i32, i32)>,
                   by_coord: &mut HashMap<(i32, i32), CellIndex>,
                   frontier: &mut Vec<(i32, i32)>| {
            let idx = cells.len();
            cells.push(c);
            by_coord.insert(c, idx);
            for d in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                let nb = (c.0 + d.0, c.1 + d.1);
                if !by_coord.contains_key(&nb) && !frontier.contains(&nb) {
                    frontier.push(nb);
                }
            }
        };

        add((0, 0), &mut cells, &mut by_coord, &mut frontier);
        while cells.len() < n_cells {
            // Bias toward compactness: sample a few frontier candidates and
            // take the one closest to the origin.
            let k = 3.min(frontier.len());
            let mut best: Option<(usize, i64)> = None;
            for _ in 0..k {
                let i = rng.gen_range(0..frontier.len());
                let (x, y) = frontier[i];
                let d2 = (x as i64).pow(2) + (y as i64).pow(2);
                if best.is_none_or(|(_, bd)| d2 < bd) {
                    best = Some((i, d2));
                }
            }
            // lint:allow(T2): the frontier is refilled every iteration while cells remain
            let (i, _) = best.expect("frontier never empties while growing");
            let c = frontier.swap_remove(i);
            add(c, &mut cells, &mut by_coord, &mut frontier);
            frontier.retain(|f| !by_coord.contains_key(f));
        }

        // Assign GEOIDs: consecutive cells share tracts of up to 4 groups.
        let ids = (0..cells.len())
            .map(|i| BlockGroupId::new(state, county, (i / 4 + 1) as u32, (i % 4 + 1) as u8))
            .collect();

        CityGrid {
            center,
            cells,
            by_coord,
            ids,
        }
    }

    /// Number of cells (block groups) in the city.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// City centre used as the lattice origin.
    pub fn center(&self) -> LatLon {
        self.center
    }

    /// Block-group id of cell `i`.
    pub fn id(&self, i: CellIndex) -> BlockGroupId {
        self.ids[i]
    }

    /// All block-group ids, indexed by cell.
    pub fn ids(&self) -> &[BlockGroupId] {
        &self.ids
    }

    /// Looks up the cell index for a block-group id (linear in city size).
    pub fn index_of(&self, id: BlockGroupId) -> Option<CellIndex> {
        self.ids.iter().position(|&x| x == id)
    }

    /// Lattice coordinate of cell `i`.
    pub fn coord(&self, i: CellIndex) -> (i32, i32) {
        self.cells[i]
    }

    /// Geographic centroid of cell `i`.
    pub fn centroid(&self, i: CellIndex) -> LatLon {
        let (x, y) = self.cells[i];
        self.center
            .offset_km(x as f64 * CELL_KM, y as f64 * CELL_KM)
    }

    /// Rook (edge-sharing) neighbours of cell `i`.
    pub fn rook_neighbors(&self, i: CellIndex) -> Vec<CellIndex> {
        let (x, y) = self.cells[i];
        [(1, 0), (-1, 0), (0, 1), (0, -1)]
            .iter()
            .filter_map(|d| self.by_coord.get(&(x + d.0, y + d.1)).copied())
            .collect()
    }

    /// Queen (edge- or corner-sharing) neighbours of cell `i`.
    pub fn queen_neighbors(&self, i: CellIndex) -> Vec<CellIndex> {
        let (x, y) = self.cells[i];
        let mut out = Vec::with_capacity(8);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                if let Some(&j) = self.by_coord.get(&(x + dx, y + dy)) {
                    out.push(j);
                }
            }
        }
        out
    }

    /// Normalized radial position of cell `i` in `[0, 1]`: 0 at the city
    /// centre, 1 at the farthest cell. Used by the world model to place
    /// income gradients and infrastructure.
    pub fn radial_position(&self, i: CellIndex) -> f64 {
        let max_d2 = self
            .cells
            .iter()
            .map(|&(x, y)| (x as f64).powi(2) + (y as f64).powi(2))
            .fold(0.0, f64::max);
        if max_d2 == 0.0 {
            return 0.0;
        }
        let (x, y) = self.cells[i];
        (((x as f64).powi(2) + (y as f64).powi(2)) / max_d2).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nola() -> CityGrid {
        CityGrid::grow(LatLon::new(29.95, -90.07), 439, 22, 71, 7)
    }

    #[test]
    fn grow_produces_requested_cell_count() {
        assert_eq!(nola().len(), 439);
    }

    #[test]
    fn grow_is_deterministic_in_seed() {
        let a = CityGrid::grow(LatLon::new(29.95, -90.07), 100, 22, 71, 42);
        let b = CityGrid::grow(LatLon::new(29.95, -90.07), 100, 22, 71, 42);
        assert_eq!(a.cells, b.cells);
        let c = CityGrid::grow(LatLon::new(29.95, -90.07), 100, 22, 71, 43);
        assert_ne!(a.cells, c.cells);
    }

    #[test]
    fn blob_is_connected_via_rook_adjacency() {
        let g = nola();
        let mut seen = vec![false; g.len()];
        let mut stack = vec![0];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for j in g.rook_neighbors(i) {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "grid must be a single component");
    }

    #[test]
    fn ids_are_unique() {
        let g = nola();
        let mut ids: Vec<_> = g.ids().to_vec();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), g.len());
    }

    #[test]
    fn index_of_inverts_id() {
        let g = nola();
        for i in [0, 1, 57, 438] {
            assert_eq!(g.index_of(g.id(i)), Some(i));
        }
    }

    #[test]
    fn queen_superset_of_rook() {
        let g = nola();
        for i in 0..g.len() {
            let rook = g.rook_neighbors(i);
            let queen = g.queen_neighbors(i);
            for r in &rook {
                assert!(queen.contains(r));
            }
            assert!(queen.len() >= rook.len());
            assert!(queen.len() <= 8);
        }
    }

    #[test]
    fn centroids_are_near_center() {
        let g = nola();
        let c = g.center();
        for i in 0..g.len() {
            // 439 compact cells should stay within ~40 km of downtown.
            assert!(g.centroid(i).distance_km(&c) < 40.0);
        }
    }

    #[test]
    fn radial_position_is_normalized() {
        let g = nola();
        let mut saw_one = false;
        for i in 0..g.len() {
            let r = g.radial_position(i);
            assert!((0.0..=1.0).contains(&r));
            if (r - 1.0).abs() < 1e-12 {
                saw_one = true;
            }
        }
        assert_eq!(g.radial_position(0), 0.0, "origin cell is the centre");
        assert!(saw_one, "the farthest cell has radial position 1");
    }

    #[test]
    fn single_cell_city_is_valid() {
        let g = CityGrid::grow(LatLon::new(0.0, 0.0), 1, 1, 1, 0);
        assert_eq!(g.len(), 1);
        assert!(g.rook_neighbors(0).is_empty());
        assert_eq!(g.radial_position(0), 0.0);
    }
}
