//! FIPS-like hierarchical identifiers for census geography.
//!
//! Real US census geography is keyed by FIPS codes: a 2-digit state, 3-digit
//! county, 6-digit tract and 1-digit block group, concatenated into a
//! 12-character block-group GEOID. We mirror that structure so the synthetic
//! dataset round-trips through the same string keys a real ACS join would
//! use.

use std::fmt;
use std::str::FromStr;

/// Two-digit state FIPS code (1..=99).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateCode(pub u8);

/// Three-digit county FIPS code within a state (1..=999).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountyCode(pub u16);

/// Six-digit census-tract code within a county.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TractCode(pub u32);

/// Fully-qualified census block-group identifier.
///
/// Displays as the 12-character GEOID used by the Census Bureau, e.g.
/// `220710017001` = state 22, county 071, tract 001700, block group 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockGroupId {
    pub state: StateCode,
    pub county: CountyCode,
    pub tract: TractCode,
    /// Single-digit block-group number within the tract (0..=9).
    pub block_group: u8,
}

impl BlockGroupId {
    /// Builds an id, panicking if any component is out of its FIPS range.
    pub fn new(state: u8, county: u16, tract: u32, block_group: u8) -> Self {
        assert!(
            (1..=99).contains(&state),
            "state FIPS out of range: {state}"
        );
        assert!(
            (1..=999).contains(&county),
            "county FIPS out of range: {county}"
        );
        assert!(tract <= 999_999, "tract code out of range: {tract}");
        assert!(block_group <= 9, "block group out of range: {block_group}");
        Self {
            state: StateCode(state),
            county: CountyCode(county),
            tract: TractCode(tract),
            block_group,
        }
    }

    /// The 11-character tract-level GEOID prefix (state + county + tract).
    pub fn tract_geoid(&self) -> String {
        format!("{:02}{:03}{:06}", self.state.0, self.county.0, self.tract.0)
    }

    /// Encodes the id into a single sortable integer (useful as a map key).
    pub fn as_u64(&self) -> u64 {
        self.state.0 as u64 * 10_000_000_000
            + self.county.0 as u64 * 10_000_000
            + self.tract.0 as u64 * 10
            + self.block_group as u64
    }
}

impl fmt::Display for BlockGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02}{:03}{:06}{}",
            self.state.0, self.county.0, self.tract.0, self.block_group
        )
    }
}

/// Error returned when parsing a GEOID string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseGeoidError {
    /// The string was not exactly 12 ASCII digits.
    BadLength(usize),
    /// A component was not numeric.
    NotNumeric,
    /// A component was outside its FIPS range.
    OutOfRange(&'static str),
}

impl fmt::Display for ParseGeoidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGeoidError::BadLength(n) => {
                write!(f, "GEOID must be 12 digits, got {n} characters")
            }
            ParseGeoidError::NotNumeric => write!(f, "GEOID contains non-digit characters"),
            ParseGeoidError::OutOfRange(part) => write!(f, "GEOID component out of range: {part}"),
        }
    }
}

impl std::error::Error for ParseGeoidError {}

impl FromStr for BlockGroupId {
    type Err = ParseGeoidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 12 {
            return Err(ParseGeoidError::BadLength(s.len()));
        }
        if !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseGeoidError::NotNumeric);
        }
        let state: u8 = s[0..2].parse().map_err(|_| ParseGeoidError::NotNumeric)?;
        let county: u16 = s[2..5].parse().map_err(|_| ParseGeoidError::NotNumeric)?;
        let tract: u32 = s[5..11].parse().map_err(|_| ParseGeoidError::NotNumeric)?;
        let bg: u8 = s[11..12].parse().map_err(|_| ParseGeoidError::NotNumeric)?;
        if state < 1 {
            return Err(ParseGeoidError::OutOfRange("state"));
        }
        if county < 1 {
            return Err(ParseGeoidError::OutOfRange("county"));
        }
        Ok(BlockGroupId {
            state: StateCode(state),
            county: CountyCode(county),
            tract: TractCode(tract),
            block_group: bg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_zero_pads_every_component() {
        let id = BlockGroupId::new(22, 71, 1700, 1);
        assert_eq!(id.to_string(), "220710017001");
    }

    #[test]
    fn roundtrip_display_parse() {
        let id = BlockGroupId::new(6, 37, 980_012, 9);
        let s = id.to_string();
        assert_eq!(s.parse::<BlockGroupId>().unwrap(), id);
    }

    #[test]
    fn parse_rejects_wrong_length() {
        assert_eq!(
            "12345".parse::<BlockGroupId>(),
            Err(ParseGeoidError::BadLength(5))
        );
    }

    #[test]
    fn parse_rejects_non_numeric() {
        assert_eq!(
            "22071001700X".parse::<BlockGroupId>(),
            Err(ParseGeoidError::NotNumeric)
        );
    }

    #[test]
    fn parse_rejects_zero_state() {
        assert_eq!(
            "000710017001".parse::<BlockGroupId>(),
            Err(ParseGeoidError::OutOfRange("state"))
        );
    }

    #[test]
    fn tract_geoid_is_prefix_of_full_geoid() {
        let id = BlockGroupId::new(48, 453, 2314, 3);
        assert!(id.to_string().starts_with(&id.tract_geoid()));
        assert_eq!(id.tract_geoid().len(), 11);
    }

    #[test]
    fn as_u64_is_order_preserving() {
        let a = BlockGroupId::new(22, 71, 1700, 1);
        let b = BlockGroupId::new(22, 71, 1700, 2);
        let c = BlockGroupId::new(22, 72, 0, 0);
        assert!(a.as_u64() < b.as_u64());
        assert!(b.as_u64() < c.as_u64());
        assert_eq!(a < b, a.as_u64() < b.as_u64());
    }

    #[test]
    #[should_panic(expected = "block group out of range")]
    fn new_rejects_large_block_group() {
        BlockGroupId::new(22, 71, 1700, 12);
    }
}
