//! Geographic substrate for the Decoding-the-Divide reproduction.
//!
//! The paper analyzes broadband plans at the granularity of US census block
//! groups inside cities. This crate provides:
//!
//! * hierarchical, FIPS-like identifiers for states, counties, tracts and
//!   block groups ([`ids`]);
//! * latitude/longitude points with great-circle distance ([`point`]);
//! * synthetic city layouts: connected blobs of block-group cells grown on a
//!   lattice, so each city has an irregular but reproducible footprint
//!   ([`grid`]);
//! * contiguity graphs (rook/queen) and row-standardized spatial weights, the
//!   inputs to Moran's I spatial autocorrelation ([`adjacency`]).
//!
//! Everything is deterministic: any randomized construction takes an explicit
//! seed, never ambient entropy.

pub mod adjacency;
pub mod grid;
pub mod ids;
pub mod point;

pub use adjacency::{Adjacency, Contiguity, SpatialWeights};
pub use grid::{CellIndex, CityGrid};
pub use ids::{BlockGroupId, CountyCode, StateCode, TractCode};
pub use point::{BoundingBox, LatLon};
