//! Latitude/longitude points and great-circle distance.

/// A point on the Earth's surface in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatLon {
    pub lat: f64,
    pub lon: f64,
}

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

impl LatLon {
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Returns the point offset by `dx_km` east and `dy_km` north, using a
    /// local equirectangular approximation (fine for city-scale offsets).
    pub fn offset_km(&self, dx_km: f64, dy_km: f64) -> LatLon {
        let dlat = dy_km / EARTH_RADIUS_KM;
        let dlon = dx_km / (EARTH_RADIUS_KM * self.lat.to_radians().cos());
        LatLon {
            lat: (self.lat + dlat.to_degrees()).clamp(-90.0, 90.0),
            lon: self.lon + dlon.to_degrees(),
        }
    }
}

/// Axis-aligned bounding box over lat/lon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    pub min: LatLon,
    pub max: LatLon,
}

impl BoundingBox {
    /// The smallest box covering all `points`. Returns `None` for an empty
    /// iterator.
    pub fn covering<I: IntoIterator<Item = LatLon>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox {
            min: first,
            max: first,
        };
        for p in it {
            bb.min.lat = bb.min.lat.min(p.lat);
            bb.min.lon = bb.min.lon.min(p.lon);
            bb.max.lat = bb.max.lat.max(p.lat);
            bb.max.lon = bb.max.lon.max(p.lon);
        }
        Some(bb)
    }

    pub fn contains(&self, p: &LatLon) -> bool {
        p.lat >= self.min.lat
            && p.lat <= self.max.lat
            && p.lon >= self.min.lon
            && p.lon <= self.max.lon
    }

    /// Geometric centre of the box.
    pub fn center(&self) -> LatLon {
        LatLon {
            lat: (self.min.lat + self.max.lat) / 2.0,
            lon: (self.min.lon + self.max.lon) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_to_self_is_zero() {
        let p = LatLon::new(29.95, -90.07);
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = LatLon::new(29.95, -90.07); // New Orleans
        let b = LatLon::new(35.47, -97.52); // Oklahoma City
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn known_distance_new_orleans_to_okc() {
        // ~940 km as the crow flies.
        let a = LatLon::new(29.95, -90.07);
        let b = LatLon::new(35.47, -97.52);
        let d = a.distance_km(&b);
        assert!((900.0..980.0).contains(&d), "got {d}");
    }

    #[test]
    fn offset_km_roundtrip_distance() {
        let p = LatLon::new(40.0, -100.0);
        let q = p.offset_km(3.0, 4.0);
        let d = p.distance_km(&q);
        assert!((d - 5.0).abs() < 0.05, "expected ~5 km, got {d}");
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let pts = vec![
            LatLon::new(1.0, 1.0),
            LatLon::new(-2.0, 5.0),
            LatLon::new(3.0, -4.0),
        ];
        let bb = BoundingBox::covering(pts.clone()).unwrap();
        for p in &pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.min.lat, -2.0);
        assert_eq!(bb.max.lon, 5.0);
    }

    #[test]
    fn bounding_box_empty_is_none() {
        assert!(BoundingBox::covering(std::iter::empty()).is_none());
    }

    #[test]
    fn bounding_box_center_is_midpoint() {
        let bb = BoundingBox {
            min: LatLon::new(0.0, 0.0),
            max: LatLon::new(10.0, 20.0),
        };
        let c = bb.center();
        assert_eq!(c.lat, 5.0);
        assert_eq!(c.lon, 10.0);
    }
}
