//! Contiguity graphs and spatial weights for autocorrelation analysis.
//!
//! Moran's I (computed in `bbsim-stats`) needs a spatial weights matrix W.
//! Following standard practice (and the paper's use of Moran's I over city
//! block groups), we build W from cell contiguity and row-standardize it so
//! every row sums to one.

use crate::grid::{CellIndex, CityGrid};

/// Which lattice neighbours count as contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contiguity {
    /// Edge-sharing neighbours only (up to 4).
    Rook,
    /// Edge- or corner-sharing neighbours (up to 8).
    Queen,
}

/// Unweighted adjacency lists over the cells of a city.
#[derive(Debug, Clone)]
pub struct Adjacency {
    neighbors: Vec<Vec<CellIndex>>,
}

impl Adjacency {
    /// Builds contiguity adjacency from a city grid.
    pub fn from_grid(grid: &CityGrid, contiguity: Contiguity) -> Self {
        let neighbors = (0..grid.len())
            .map(|i| match contiguity {
                Contiguity::Rook => grid.rook_neighbors(i),
                Contiguity::Queen => grid.queen_neighbors(i),
            })
            .collect();
        Self { neighbors }
    }

    /// Builds adjacency directly from neighbour lists (for tests or
    /// non-lattice geographies). Asserts symmetry.
    pub fn from_lists(neighbors: Vec<Vec<CellIndex>>) -> Self {
        for (i, ns) in neighbors.iter().enumerate() {
            for &j in ns {
                assert!(j < neighbors.len(), "neighbor index out of range");
                assert!(
                    neighbors[j].contains(&i),
                    "adjacency must be symmetric: {i} -> {j} but not {j} -> {i}"
                );
            }
        }
        Self { neighbors }
    }

    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    pub fn neighbors(&self, i: CellIndex) -> &[CellIndex] {
        &self.neighbors[i]
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }
}

/// Row-standardized sparse spatial weights.
///
/// Row `i` lists `(j, w_ij)` with `sum_j w_ij == 1` for any cell with at
/// least one neighbour. Isolated cells have empty rows (standard convention:
/// they contribute nothing to Moran's I numerator).
#[derive(Debug, Clone)]
pub struct SpatialWeights {
    rows: Vec<Vec<(CellIndex, f64)>>,
}

impl SpatialWeights {
    /// Row-standardizes an adjacency structure.
    pub fn row_standardized(adj: &Adjacency) -> Self {
        let rows = (0..adj.len())
            .map(|i| {
                let ns = adj.neighbors(i);
                if ns.is_empty() {
                    Vec::new()
                } else {
                    let w = 1.0 / ns.len() as f64;
                    ns.iter().map(|&j| (j, w)).collect()
                }
            })
            .collect();
        Self { rows }
    }

    /// Builds weights with explicit values; rows need not be standardized.
    pub fn from_rows(rows: Vec<Vec<(CellIndex, f64)>>) -> Self {
        for ns in &rows {
            for &(j, w) in ns {
                assert!(j < rows.len(), "weight column out of range");
                assert!(
                    w.is_finite() && w >= 0.0,
                    "weights must be finite and non-negative"
                );
            }
        }
        Self { rows }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sparse row `i` as `(column, weight)` pairs.
    pub fn row(&self, i: CellIndex) -> &[(CellIndex, f64)] {
        &self.rows[i]
    }

    /// All rows; the plain-data form consumed by `bbsim-stats::moran`.
    pub fn rows(&self) -> &[Vec<(CellIndex, f64)>] {
        &self.rows
    }

    /// Sum of all weights (equals the number of non-isolated cells for
    /// row-standardized weights).
    pub fn total_weight(&self) -> f64 {
        self.rows.iter().flatten().map(|&(_, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::LatLon;

    fn grid() -> CityGrid {
        CityGrid::grow(LatLon::new(29.95, -90.07), 120, 22, 71, 3)
    }

    #[test]
    fn rook_adjacency_is_symmetric() {
        let g = grid();
        let adj = Adjacency::from_grid(&g, Contiguity::Rook);
        for i in 0..adj.len() {
            for &j in adj.neighbors(i) {
                assert!(adj.neighbors(j).contains(&i));
            }
        }
    }

    #[test]
    fn queen_has_at_least_as_many_edges_as_rook() {
        let g = grid();
        let rook = Adjacency::from_grid(&g, Contiguity::Rook);
        let queen = Adjacency::from_grid(&g, Contiguity::Queen);
        assert!(queen.edge_count() >= rook.edge_count());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_lists_rejects_asymmetry() {
        Adjacency::from_lists(vec![vec![1], vec![]]);
    }

    #[test]
    fn row_standardized_rows_sum_to_one() {
        let g = grid();
        let adj = Adjacency::from_grid(&g, Contiguity::Rook);
        let w = SpatialWeights::row_standardized(&adj);
        for i in 0..w.len() {
            let s: f64 = w.row(i).iter().map(|&(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn total_weight_equals_cell_count_when_connected() {
        let g = grid();
        let adj = Adjacency::from_grid(&g, Contiguity::Rook);
        let w = SpatialWeights::row_standardized(&adj);
        assert!((w.total_weight() - g.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn isolated_cell_gets_empty_row() {
        let adj = Adjacency::from_lists(vec![vec![1], vec![0], vec![]]);
        let w = SpatialWeights::row_standardized(&adj);
        assert!(w.row(2).is_empty());
        assert!((w.total_weight() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_rows_rejects_negative_weight() {
        SpatialWeights::from_rows(vec![vec![(0, -1.0)]]);
    }
}

impl SpatialWeights {
    /// K-nearest-neighbour weights by centroid distance, row-standardized.
    ///
    /// A standard alternative to contiguity weights for irregular
    /// geographies; used by the Table-3 robustness checks. Each cell gets
    /// exactly `k` neighbours (fewer only in degenerate, tiny cities).
    pub fn knn(grid: &crate::grid::CityGrid, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let n = grid.len();
        let centroids: Vec<crate::point::LatLon> = (0..n).map(|i| grid.centroid(i)).collect();
        let rows = (0..n)
            .map(|i| {
                let mut dists: Vec<(usize, f64)> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| (j, centroids[i].distance_km(&centroids[j])))
                    .collect();
                dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
                dists.truncate(k);
                let w = 1.0 / dists.len().max(1) as f64;
                dists.into_iter().map(|(j, _)| (j, w)).collect()
            })
            .collect();
        Self { rows }
    }

    /// Distance-band weights: cells within `band_km` of each other are
    /// neighbours (row-standardized). Cells with no neighbour in the band
    /// get an empty row.
    pub fn distance_band(grid: &crate::grid::CityGrid, band_km: f64) -> Self {
        assert!(band_km > 0.0, "band must be positive");
        let n = grid.len();
        let centroids: Vec<crate::point::LatLon> = (0..n).map(|i| grid.centroid(i)).collect();
        let rows = (0..n)
            .map(|i| {
                let ns: Vec<usize> = (0..n)
                    .filter(|&j| j != i && centroids[i].distance_km(&centroids[j]) <= band_km)
                    .collect();
                if ns.is_empty() {
                    Vec::new()
                } else {
                    let w = 1.0 / ns.len() as f64;
                    ns.into_iter().map(|j| (j, w)).collect()
                }
            })
            .collect();
        Self { rows }
    }
}

#[cfg(test)]
mod distance_weight_tests {
    use super::*;
    use crate::grid::CityGrid;
    use crate::point::LatLon;

    fn grid() -> CityGrid {
        CityGrid::grow(LatLon::new(29.95, -90.07), 80, 22, 71, 5)
    }

    #[test]
    fn knn_rows_have_exactly_k_neighbors() {
        let g = grid();
        let w = SpatialWeights::knn(&g, 4);
        for i in 0..w.len() {
            assert_eq!(w.row(i).len(), 4, "cell {i}");
            let s: f64 = w.row(i).iter().map(|&(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_neighbors_are_the_nearest() {
        let g = grid();
        let w = SpatialWeights::knn(&g, 1);
        // The single nearest neighbour of a cell is at lattice distance 1
        // (the grid is connected, so someone is adjacent).
        for i in 0..g.len() {
            let (x, y) = g.coord(i);
            let &(j, _) = &w.row(i)[0];
            let (nx, ny) = g.coord(j);
            let d = (x - nx).abs() + (y - ny).abs();
            assert_eq!(d, 1, "cell {i}'s nearest neighbour is adjacent");
        }
    }

    #[test]
    fn distance_band_includes_rook_neighbors() {
        let g = grid();
        // 1.5 km band covers lattice distance 1 (cells are 1 km apart).
        let w = SpatialWeights::distance_band(&g, 1.5);
        for i in 0..g.len() {
            let cols: Vec<usize> = w.row(i).iter().map(|&(j, _)| j).collect();
            for j in g.rook_neighbors(i) {
                assert!(cols.contains(&j), "cell {i} missing rook neighbour {j}");
            }
        }
    }

    #[test]
    fn tight_band_yields_isolates_and_wide_band_connects_all() {
        let g = grid();
        let tight = SpatialWeights::distance_band(&g, 0.1);
        assert!((0..g.len()).all(|i| tight.row(i).is_empty()));
        let wide = SpatialWeights::distance_band(&g, 1000.0);
        for i in 0..g.len() {
            assert_eq!(wide.row(i).len(), g.len() - 1);
        }
    }

    #[test]
    fn morans_i_direction_is_stable_across_weight_choices() {
        // A clustered field is detected as clustered under contiguity, knn
        // and distance-band weights alike.
        let g = grid();
        let values: Vec<f64> = (0..g.len())
            .map(|i| if g.coord(i).0 < 0 { 1.0 } else { 9.0 })
            .collect();
        let contiguity =
            SpatialWeights::row_standardized(&Adjacency::from_grid(&g, Contiguity::Rook));
        let knn = SpatialWeights::knn(&g, 4);
        let band = SpatialWeights::distance_band(&g, 1.5);
        for (name, w) in [("rook", contiguity), ("knn", knn), ("band", band)] {
            let r = bbsim_stats::morans_i(&values, w.rows()).unwrap();
            assert!(r.i > 0.4, "{name}: I = {}", r.i);
        }
    }
}
