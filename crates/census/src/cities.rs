//! The 30 study cities, transcribed from the paper's Table 2.
//!
//! ISP presence uses the paper's column numbering:
//! 1 = AT&T, 2 = Verizon, 3 = CenturyLink, 4 = Frontier,
//! 5 = Spectrum, 6 = Cox, 7 = Xfinity.

use bbsim_geo::{CityGrid, LatLon};

/// Static description of one study city (one row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityProfile {
    pub name: &'static str,
    pub state: &'static str,
    /// State FIPS code (real values, so GEOIDs look authentic).
    pub state_fips: u8,
    /// County FIPS code of the city's core county.
    pub county_fips: u16,
    /// Downtown coordinates.
    pub lat: f64,
    pub lon: f64,
    /// First three digits of the city's zip codes.
    pub zip_prefix: u16,
    /// Census block groups covered (Table 2).
    pub block_groups: usize,
    /// Street addresses queried, in thousands (Table 2).
    pub street_addresses_k: u32,
    /// Population density in thousands per square mile (Table 2).
    pub density_k: f64,
    /// Median household income in thousands of dollars (Table 2).
    pub median_income_k: f64,
    /// Paper ISP column numbers (1..=7) active in this city.
    pub major_isps: &'static [u8],
}

impl CityProfile {
    /// True if the paper's ISP column `n` serves this city.
    pub fn has_isp(&self, n: u8) -> bool {
        self.major_isps.contains(&n)
    }

    /// Downtown location.
    pub fn center(&self) -> LatLon {
        LatLon::new(self.lat, self.lon)
    }

    /// Total street addresses (not thousands).
    pub fn street_addresses(&self) -> usize {
        self.street_addresses_k as usize * 1000
    }

    /// Grows this city's reproducible block-group layout.
    pub fn grid(&self) -> CityGrid {
        CityGrid::grow(
            self.center(),
            self.block_groups,
            self.state_fips,
            self.county_fips,
            city_seed(self.name),
        )
    }
}

/// Deterministic per-city seed: FNV-1a over the city name, so every crate
/// derives the same world without sharing state.
pub fn city_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Looks a city up by name (case-sensitive, as written in Table 2).
pub fn city_by_name(name: &str) -> Option<&'static CityProfile> {
    ALL_CITIES.iter().find(|c| c.name == name)
}

/// Table 2, row for row.
pub const ALL_CITIES: &[CityProfile] = &[
    CityProfile {
        name: "Albuquerque",
        state: "NM",
        state_fips: 35,
        county_fips: 1,
        lat: 35.0844,
        lon: -106.6504,
        zip_prefix: 871,
        block_groups: 387,
        street_addresses_k: 14,
        density_k: 1.8,
        median_income_k: 53.0,
        major_isps: &[3],
    },
    CityProfile {
        name: "Atlanta",
        state: "GA",
        state_fips: 13,
        county_fips: 121,
        lat: 33.7490,
        lon: -84.3880,
        zip_prefix: 303,
        block_groups: 389,
        street_addresses_k: 12,
        density_k: 1.2,
        median_income_k: 65.0,
        major_isps: &[1, 7],
    },
    CityProfile {
        name: "Austin",
        state: "TX",
        state_fips: 48,
        county_fips: 453,
        lat: 30.2672,
        lon: -97.7431,
        zip_prefix: 787,
        block_groups: 487,
        street_addresses_k: 25,
        density_k: 1.7,
        median_income_k: 74.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "Baltimore",
        state: "MD",
        state_fips: 24,
        county_fips: 510,
        lat: 39.2904,
        lon: -76.6122,
        zip_prefix: 212,
        block_groups: 1188,
        street_addresses_k: 42,
        density_k: 1.7,
        median_income_k: 81.0,
        major_isps: &[2, 7],
    },
    CityProfile {
        name: "Billings",
        state: "MT",
        state_fips: 30,
        county_fips: 111,
        lat: 45.7833,
        lon: -108.5007,
        zip_prefix: 591,
        block_groups: 98,
        street_addresses_k: 3,
        density_k: 1.1,
        median_income_k: 61.0,
        major_isps: &[3, 5],
    },
    CityProfile {
        name: "Birmingham",
        state: "AL",
        state_fips: 1,
        county_fips: 73,
        lat: 33.5186,
        lon: -86.8104,
        zip_prefix: 352,
        block_groups: 354,
        street_addresses_k: 24,
        density_k: 0.716,
        median_income_k: 47.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "Boston",
        state: "MA",
        state_fips: 25,
        county_fips: 25,
        lat: 42.3601,
        lon: -71.0589,
        zip_prefix: 21,
        block_groups: 373,
        street_addresses_k: 17,
        density_k: 8.4,
        median_income_k: 72.0,
        major_isps: &[2, 7],
    },
    CityProfile {
        name: "Charlotte",
        state: "NC",
        state_fips: 37,
        county_fips: 119,
        lat: 35.2271,
        lon: -80.8431,
        zip_prefix: 282,
        block_groups: 472,
        street_addresses_k: 21,
        density_k: 2.0,
        median_income_k: 73.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "Chicago",
        state: "IL",
        state_fips: 17,
        county_fips: 31,
        lat: 41.8781,
        lon: -87.6298,
        zip_prefix: 606,
        block_groups: 1933,
        street_addresses_k: 86,
        density_k: 3.8,
        median_income_k: 64.0,
        major_isps: &[1, 7],
    },
    CityProfile {
        name: "Cleveland",
        state: "OH",
        state_fips: 39,
        county_fips: 35,
        lat: 41.4993,
        lon: -81.6944,
        zip_prefix: 441,
        block_groups: 754,
        street_addresses_k: 35,
        density_k: 4.8,
        median_income_k: 31.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "Columbus",
        state: "OH",
        state_fips: 39,
        county_fips: 49,
        lat: 39.9612,
        lon: -82.9988,
        zip_prefix: 432,
        block_groups: 662,
        street_addresses_k: 20,
        density_k: 1.9,
        median_income_k: 58.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "Durham",
        state: "NC",
        state_fips: 37,
        county_fips: 63,
        lat: 35.9940,
        lon: -78.8986,
        zip_prefix: 277,
        block_groups: 138,
        street_addresses_k: 5,
        density_k: 1.0,
        median_income_k: 59.0,
        major_isps: &[4, 5],
    },
    CityProfile {
        name: "Fargo",
        state: "ND",
        state_fips: 38,
        county_fips: 17,
        lat: 46.8772,
        lon: -96.7898,
        zip_prefix: 581,
        block_groups: 67,
        street_addresses_k: 5,
        density_k: 1.5,
        median_income_k: 62.0,
        major_isps: &[3],
    },
    CityProfile {
        name: "Fort Wayne",
        state: "IN",
        state_fips: 18,
        county_fips: 3,
        lat: 41.0793,
        lon: -85.1394,
        zip_prefix: 468,
        block_groups: 209,
        street_addresses_k: 11,
        density_k: 0.9,
        median_income_k: 54.0,
        major_isps: &[4, 7],
    },
    CityProfile {
        name: "Kansas City",
        state: "MO",
        state_fips: 29,
        county_fips: 95,
        lat: 39.0997,
        lon: -94.5786,
        zip_prefix: 641,
        block_groups: 305,
        street_addresses_k: 15,
        density_k: 1.2,
        median_income_k: 51.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "Los Angeles",
        state: "CA",
        state_fips: 6,
        county_fips: 37,
        lat: 34.0522,
        lon: -118.2437,
        zip_prefix: 900,
        block_groups: 1787,
        street_addresses_k: 90,
        density_k: 8.5,
        median_income_k: 67.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "Las Vegas",
        state: "NV",
        state_fips: 32,
        county_fips: 3,
        lat: 36.1699,
        lon: -115.1398,
        zip_prefix: 891,
        block_groups: 881,
        street_addresses_k: 38,
        density_k: 1.0,
        median_income_k: 65.0,
        major_isps: &[3, 6],
    },
    CityProfile {
        name: "Louisville",
        state: "KY",
        state_fips: 21,
        county_fips: 111,
        lat: 38.2527,
        lon: -85.7585,
        zip_prefix: 402,
        block_groups: 505,
        street_addresses_k: 41,
        density_k: 1.6,
        median_income_k: 56.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "Milwaukee",
        state: "WI",
        state_fips: 55,
        county_fips: 79,
        lat: 43.0389,
        lon: -87.9065,
        zip_prefix: 532,
        block_groups: 560,
        street_addresses_k: 27,
        density_k: 2.9,
        median_income_k: 50.0,
        major_isps: &[1, 5],
    },
    CityProfile {
        name: "New Orleans",
        state: "LA",
        state_fips: 22,
        county_fips: 71,
        lat: 29.9511,
        lon: -90.0715,
        zip_prefix: 701,
        block_groups: 439,
        street_addresses_k: 67,
        density_k: 2.9,
        median_income_k: 41.0,
        major_isps: &[1, 6],
    },
    CityProfile {
        name: "New York City",
        state: "NY",
        state_fips: 36,
        county_fips: 61,
        lat: 40.7128,
        lon: -74.0060,
        zip_prefix: 100,
        block_groups: 1567,
        street_addresses_k: 51,
        density_k: 41.7,
        median_income_k: 96.0,
        major_isps: &[2, 5],
    },
    CityProfile {
        name: "Oklahoma City",
        state: "OK",
        state_fips: 40,
        county_fips: 109,
        lat: 35.4676,
        lon: -97.5164,
        zip_prefix: 731,
        block_groups: 493,
        street_addresses_k: 20,
        density_k: 1.3,
        median_income_k: 50.0,
        major_isps: &[1, 6],
    },
    CityProfile {
        name: "Omaha",
        state: "NE",
        state_fips: 31,
        county_fips: 55,
        lat: 41.2565,
        lon: -95.9345,
        zip_prefix: 681,
        block_groups: 455,
        street_addresses_k: 28,
        density_k: 1.7,
        median_income_k: 62.0,
        major_isps: &[3, 6],
    },
    CityProfile {
        name: "Philadelphia",
        state: "PA",
        state_fips: 42,
        county_fips: 101,
        lat: 39.9526,
        lon: -75.1652,
        zip_prefix: 191,
        block_groups: 981,
        street_addresses_k: 32,
        density_k: 8.0,
        median_income_k: 46.0,
        major_isps: &[2, 7],
    },
    CityProfile {
        name: "Phoenix",
        state: "AZ",
        state_fips: 4,
        county_fips: 13,
        lat: 33.4484,
        lon: -112.0740,
        zip_prefix: 850,
        block_groups: 802,
        street_addresses_k: 32,
        density_k: 1.9,
        median_income_k: 64.0,
        major_isps: &[3, 6],
    },
    CityProfile {
        name: "Santa Barbara",
        state: "CA",
        state_fips: 6,
        county_fips: 83,
        lat: 34.4208,
        lon: -119.6982,
        zip_prefix: 931,
        block_groups: 211,
        street_addresses_k: 6,
        density_k: 2.0,
        median_income_k: 79.0,
        major_isps: &[4, 6],
    },
    CityProfile {
        name: "Seattle",
        state: "WA",
        state_fips: 53,
        county_fips: 33,
        lat: 47.6062,
        lon: -122.3321,
        zip_prefix: 981,
        block_groups: 634,
        street_addresses_k: 28,
        density_k: 2.1,
        median_income_k: 101.0,
        major_isps: &[3],
    },
    CityProfile {
        name: "Tampa",
        state: "FL",
        state_fips: 12,
        county_fips: 57,
        lat: 27.9506,
        lon: -82.4572,
        zip_prefix: 336,
        block_groups: 536,
        street_addresses_k: 25,
        density_k: 1.5,
        median_income_k: 57.0,
        major_isps: &[4, 5],
    },
    CityProfile {
        name: "Virginia Beach",
        state: "VA",
        state_fips: 51,
        county_fips: 810,
        lat: 36.8529,
        lon: -75.9780,
        zip_prefix: 234,
        block_groups: 112,
        street_addresses_k: 4,
        density_k: 1.8,
        median_income_k: 80.0,
        major_isps: &[2, 6],
    },
    CityProfile {
        name: "Wichita",
        state: "KS",
        state_fips: 20,
        county_fips: 173,
        lat: 37.6872,
        lon: -97.3301,
        zip_prefix: 672,
        block_groups: 304,
        street_addresses_k: 13,
        density_k: 1.3,
        median_income_k: 50.0,
        major_isps: &[1, 6],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_cities() {
        assert_eq!(ALL_CITIES.len(), 30);
    }

    #[test]
    fn totals_match_table_2() {
        let bg: usize = ALL_CITIES.iter().map(|c| c.block_groups).sum();
        let addr: u32 = ALL_CITIES.iter().map(|c| c.street_addresses_k).sum();
        assert_eq!(bg, 18_083); // "18k" in the paper
        assert_eq!(addr, 837); // 837k street addresses
    }

    #[test]
    fn isp_column_totals_match_table_2() {
        // Paper bottom row: 14, 5, 7, 4, 13, 8, 6.
        let expected = [14, 5, 7, 4, 13, 8, 6];
        for (i, &want) in expected.iter().enumerate() {
            let n = ALL_CITIES.iter().filter(|c| c.has_isp(i as u8 + 1)).count();
            assert_eq!(n, want, "ISP column {} count", i + 1);
        }
    }

    #[test]
    fn no_city_has_more_than_two_major_isps() {
        for c in ALL_CITIES {
            assert!(
                (1..=2).contains(&c.major_isps.len()),
                "{} has {} ISPs",
                c.name,
                c.major_isps.len()
            );
        }
    }

    #[test]
    fn duopolies_pair_a_dsl_fiber_isp_with_a_cable_isp() {
        // Columns 1-4 are DSL/fiber, 5-7 cable; the paper observes that
        // same-type ISPs never compete.
        for c in ALL_CITIES {
            if c.major_isps.len() == 2 {
                let dsl = c.major_isps.iter().filter(|&&n| n <= 4).count();
                let cable = c.major_isps.iter().filter(|&&n| n >= 5).count();
                assert_eq!((dsl, cable), (1, 1), "{}: {:?}", c.name, c.major_isps);
            }
        }
    }

    #[test]
    fn city_names_are_unique_and_resolvable() {
        for c in ALL_CITIES {
            assert_eq!(city_by_name(c.name).unwrap().name, c.name);
        }
        assert!(city_by_name("Springfield").is_none());
    }

    #[test]
    fn city_seed_is_stable_and_distinct() {
        assert_eq!(city_seed("New Orleans"), city_seed("New Orleans"));
        let mut seeds: Vec<u64> = ALL_CITIES.iter().map(|c| city_seed(c.name)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 30);
    }

    #[test]
    fn grid_matches_block_group_count() {
        let c = city_by_name("Billings").unwrap();
        let g = c.grid();
        assert_eq!(g.len(), 98);
        assert_eq!(g.id(0).state.0, 30);
    }

    #[test]
    fn density_and_income_ranges_match_paper_claims() {
        // §4.1: densities from ~1k to 42k, median income $31k to $101k.
        let min_inc = ALL_CITIES
            .iter()
            .map(|c| c.median_income_k)
            .fold(f64::MAX, f64::min);
        let max_inc = ALL_CITIES
            .iter()
            .map(|c| c.median_income_k)
            .fold(f64::MIN, f64::max);
        assert_eq!(min_inc, 31.0);
        assert_eq!(max_inc, 101.0);
        let max_den = ALL_CITIES
            .iter()
            .map(|c| c.density_k)
            .fold(f64::MIN, f64::max);
        assert_eq!(max_den, 41.7);
    }
}
