//! Synthetic block-group income fields.
//!
//! US urban income is spatially clustered: rich and poor neighbourhoods form
//! contiguous patches, not salt-and-pepper noise. The paper's §5.5 analysis
//! (fiber follows income) only has teeth if the synthetic income field shows
//! the same structure, so we generate it in three steps:
//!
//! 1. **directional gradient** — a random city orientation makes one side of
//!    town systematically richer, the dominant pattern in US metros;
//! 2. **lognormal noise** — block-group level dispersion around the city
//!    median;
//! 3. **neighbour smoothing** — a few rounds of local averaging on the city
//!    grid, which turns the noise into contiguous patches (positive Moran's
//!    I) without erasing the gradient.
//!
//! Finally the field is rescaled so its median equals the city's Table-2
//! median household income.

use bbsim_geo::CityGrid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A per-block-group income field aligned with a [`CityGrid`]'s cells.
#[derive(Debug, Clone)]
pub struct IncomeField {
    /// Median household income per block group, in thousands of dollars.
    incomes_k: Vec<f64>,
    /// City median (the Table-2 value the field is calibrated to).
    city_median_k: f64,
}

impl IncomeField {
    /// Generates the field for `grid`, calibrated to `city_median_k`,
    /// deterministically from `seed`.
    pub fn generate(grid: &CityGrid, city_median_k: f64, seed: u64) -> Self {
        assert!(city_median_k > 0.0, "median income must be positive");
        let n = grid.len();
        // Domain-separate the seed so the income stream never aliases other
        // per-city streams derived from the same base seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1C0_3E5);
        Self::generate_impl(grid, city_median_k, &mut rng, n)
    }

    fn generate_impl(grid: &CityGrid, city_median_k: f64, rng: &mut StdRng, n: usize) -> Self {
        // 1. Directional gradient across the city footprint.
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let (dx, dy) = (theta.cos(), theta.sin());
        let projections: Vec<f64> = (0..n)
            .map(|i| {
                let (x, y) = grid.coord(i);
                x as f64 * dx + y as f64 * dy
            })
            .collect();
        let pmin = projections.iter().cloned().fold(f64::MAX, f64::min);
        let pmax = projections.iter().cloned().fold(f64::MIN, f64::max);
        let span = (pmax - pmin).max(1e-9);

        // Gradient strength: the rich side sits ~1.9x above the poor side.
        let mut field: Vec<f64> = (0..n)
            .map(|i| {
                let t = (projections[i] - pmin) / span; // 0..1 across town
                let gradient = 0.65 + 0.85 * t;
                let noise: f64 = {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (0.35 * z).exp() // lognormal multiplier
                };
                gradient * noise
            })
            .collect();

        // 3. Neighbour smoothing to create contiguous income patches.
        for _ in 0..3 {
            let prev = field.clone();
            for i in 0..n {
                let ns = grid.rook_neighbors(i);
                if ns.is_empty() {
                    continue;
                }
                let nb_mean: f64 = ns.iter().map(|&j| prev[j]).sum::<f64>() / ns.len() as f64;
                field[i] = 0.5 * prev[i] + 0.5 * nb_mean;
            }
        }

        // Rescale so the field's median matches the city median.
        let mut sorted = field.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let med = sorted[n / 2];
        let scale = city_median_k / med;
        let incomes_k = field.into_iter().map(|v| v * scale).collect();

        Self {
            incomes_k,
            city_median_k,
        }
    }

    pub fn len(&self) -> usize {
        self.incomes_k.len()
    }

    pub fn is_empty(&self) -> bool {
        self.incomes_k.is_empty()
    }

    /// Income of block group `i`, in thousands of dollars.
    pub fn income_k(&self, i: usize) -> f64 {
        self.incomes_k[i]
    }

    /// All incomes, cell-aligned with the grid.
    pub fn incomes_k(&self) -> &[f64] {
        &self.incomes_k
    }

    /// The city median the field was calibrated to.
    pub fn city_median_k(&self) -> f64 {
        self.city_median_k
    }

    /// True if block group `i` is at or above the city median — the paper's
    /// "high income" class.
    pub fn is_high_income(&self, i: usize) -> bool {
        self.incomes_k[i] >= self.city_median_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_geo::{Adjacency, Contiguity, LatLon, SpatialWeights};

    fn test_grid() -> CityGrid {
        CityGrid::grow(LatLon::new(29.95, -90.07), 439, 22, 71, 7)
    }

    #[test]
    fn field_is_calibrated_to_city_median() {
        let g = test_grid();
        let f = IncomeField::generate(&g, 41.0, 1);
        let mut v = f.incomes_k().to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = v[v.len() / 2];
        assert!((med - 41.0).abs() < 1e-9, "median = {med}");
    }

    #[test]
    fn incomes_are_positive_and_plausible() {
        let g = test_grid();
        let f = IncomeField::generate(&g, 64.0, 2);
        for i in 0..f.len() {
            let inc = f.income_k(i);
            assert!(inc > 5.0 && inc < 500.0, "bg {i} income {inc}k");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = test_grid();
        let a = IncomeField::generate(&g, 41.0, 5);
        let b = IncomeField::generate(&g, 41.0, 5);
        assert_eq!(a.incomes_k(), b.incomes_k());
        let c = IncomeField::generate(&g, 41.0, 6);
        assert_ne!(a.incomes_k(), c.incomes_k());
    }

    #[test]
    fn field_is_spatially_clustered() {
        // The generated income surface must itself show positive spatial
        // autocorrelation, or the downstream fiber-follows-income analysis
        // would be built on sand.
        let g = test_grid();
        let f = IncomeField::generate(&g, 41.0, 3);
        let w = SpatialWeights::row_standardized(&Adjacency::from_grid(&g, Contiguity::Rook));
        let r = bbsim_stats::morans_i(f.incomes_k(), w.rows()).unwrap();
        assert!(r.i > 0.3, "income Moran's I = {}", r.i);
    }

    #[test]
    fn high_income_split_is_roughly_half() {
        let g = test_grid();
        let f = IncomeField::generate(&g, 41.0, 4);
        let high = (0..f.len()).filter(|&i| f.is_high_income(i)).count();
        let frac = high as f64 / f.len() as f64;
        assert!((0.35..=0.65).contains(&frac), "high-income fraction {frac}");
    }

    #[test]
    fn spread_is_substantial() {
        // Real cities have block groups both far below and far above the
        // median.
        let g = test_grid();
        let f = IncomeField::generate(&g, 50.0, 8);
        let min = f.incomes_k().iter().cloned().fold(f64::MAX, f64::min);
        let max = f.incomes_k().iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 35.0, "min {min}");
        assert!(max > 70.0, "max {max}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_median_rejected() {
        let g = CityGrid::grow(LatLon::new(0.0, 0.0), 4, 1, 1, 0);
        IncomeField::generate(&g, 0.0, 0);
    }
}
