//! Census substrate: study cities and synthetic demographics.
//!
//! The paper studies 30 US cities (Table 2), each characterized by its
//! block-group count, Zillow street-address volume, population density,
//! median household income and the major ISPs active there. [`cities`]
//! encodes that table verbatim as the registry every other crate keys off.
//!
//! The paper joins scraped plans against ACS 5-year block-group median
//! incomes. ACS microdata is not available offline, so [`income`] generates
//! a synthetic income field per city: block-group incomes that are lognormal
//! around the city's Table-2 median and spatially smoothed, reproducing the
//! well-documented spatial clustering of income that the paper's §5.5
//! analysis keys on. [`acs`] packages the result as a joinable dataset with
//! the paper's low/high split at the city median.

pub mod acs;
pub mod cities;
pub mod income;

pub use acs::{AcsDataset, BlockGroupDemographics, IncomeBand};
pub use cities::{city_by_name, city_seed, CityProfile, ALL_CITIES};
pub use income::IncomeField;
