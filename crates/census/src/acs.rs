//! The synthetic ACS 5-year dataset: joinable block-group demographics.
//!
//! Mirrors how the paper merges scraped plans with the American Community
//! Survey: one row per block group, keyed by GEOID, carrying median
//! household income, population and density, plus the city-median income
//! split (§5.5) into low/high bands.

use crate::cities::CityProfile;
use crate::income::IncomeField;
use bbsim_geo::{BlockGroupId, CityGrid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The paper's income classification, split at the city median.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncomeBand {
    /// Below the city's median household income.
    Low,
    /// At or above the city's median household income.
    High,
}

/// One ACS row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockGroupDemographics {
    pub id: BlockGroupId,
    /// Median household income in thousands of dollars.
    pub median_income_k: f64,
    /// Residents (block groups hold 600–3000 people).
    pub population: u32,
    /// Population density in thousands per square mile.
    pub density_k: f64,
    pub income_band: IncomeBand,
}

/// The per-city ACS table.
#[derive(Debug, Clone)]
pub struct AcsDataset {
    rows: Vec<BlockGroupDemographics>,
    by_id: HashMap<BlockGroupId, usize>,
    city_median_income_k: f64,
}

impl AcsDataset {
    /// Builds the dataset for one city from its grid and income field.
    ///
    /// Population per block group is drawn uniformly from the Census
    /// Bureau's 600–3000 design range; density scales the city-level figure
    /// by a centre-heavy radial profile.
    pub fn build(city: &CityProfile, grid: &CityGrid, income: &IncomeField, seed: u64) -> Self {
        assert_eq!(grid.len(), income.len(), "grid and income field must align");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAC5_DA7A);
        let rows: Vec<BlockGroupDemographics> = (0..grid.len())
            .map(|i| {
                let population = rng.gen_range(600..=3000);
                // Density peaks downtown at ~2x the city average and falls
                // to ~0.5x at the fringe.
                let radial = grid.radial_position(i);
                let density_k = city.density_k * (2.0 - 1.5 * radial);
                BlockGroupDemographics {
                    id: grid.id(i),
                    median_income_k: income.income_k(i),
                    population,
                    density_k,
                    income_band: if income.is_high_income(i) {
                        IncomeBand::High
                    } else {
                        IncomeBand::Low
                    },
                }
            })
            .collect();
        let by_id = rows.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
        Self {
            rows,
            by_id,
            city_median_income_k: income.city_median_k(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, cell-aligned with the source grid.
    pub fn rows(&self) -> &[BlockGroupDemographics] {
        &self.rows
    }

    /// Joins on GEOID, like the paper's plan/ACS merge.
    pub fn get(&self, id: BlockGroupId) -> Option<&BlockGroupDemographics> {
        self.by_id.get(&id).map(|&i| &self.rows[i])
    }

    /// The city median income used for the band split.
    pub fn city_median_income_k(&self) -> f64 {
        self.city_median_income_k
    }

    /// Total population across the city's block groups.
    pub fn total_population(&self) -> u64 {
        self.rows.iter().map(|r| r.population as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::{city_by_name, city_seed};

    fn dataset() -> AcsDataset {
        let city = city_by_name("New Orleans").unwrap();
        let grid = city.grid();
        let income = IncomeField::generate(&grid, city.median_income_k, city_seed(city.name));
        AcsDataset::build(city, &grid, &income, city_seed(city.name))
    }

    #[test]
    fn one_row_per_block_group() {
        let ds = dataset();
        assert_eq!(ds.len(), 439);
    }

    #[test]
    fn join_by_geoid_works() {
        let ds = dataset();
        for r in ds.rows().iter().take(10) {
            assert_eq!(ds.get(r.id).unwrap().id, r.id);
        }
        let absent = BlockGroupId::new(99, 999, 999_999, 9);
        assert!(ds.get(absent).is_none());
    }

    #[test]
    fn populations_are_in_census_design_range() {
        let ds = dataset();
        for r in ds.rows() {
            assert!((600..=3000).contains(&r.population), "{}", r.population);
        }
    }

    #[test]
    fn income_band_matches_median_split() {
        let ds = dataset();
        let med = ds.city_median_income_k();
        for r in ds.rows() {
            match r.income_band {
                IncomeBand::High => assert!(r.median_income_k >= med),
                IncomeBand::Low => assert!(r.median_income_k < med),
            }
        }
    }

    #[test]
    fn densities_are_positive_and_center_heavy() {
        let city = city_by_name("New Orleans").unwrap();
        let grid = city.grid();
        let income = IncomeField::generate(&grid, city.median_income_k, 1);
        let ds = AcsDataset::build(city, &grid, &income, 1);
        assert!(ds.rows().iter().all(|r| r.density_k > 0.0));
        // The centre cell (index 0) outranks the average.
        let avg: f64 = ds.rows().iter().map(|r| r.density_k).sum::<f64>() / ds.len() as f64;
        assert!(ds.rows()[0].density_k > avg);
    }

    #[test]
    fn deterministic_build() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.rows().len(), b.rows().len());
        for (x, y) in a.rows().iter().zip(b.rows()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn total_population_is_plausible_for_city_size() {
        let ds = dataset();
        let pop = ds.total_population();
        // 439 groups x 600..3000 people.
        assert!(pop > 439 * 600 && pop < 439 * 3000);
    }
}
