//! Property tests over the synthetic demographics.

use bbsim_census::{city_seed, IncomeField, ALL_CITIES};
use bbsim_geo::{CityGrid, LatLon};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any city size, seed and target median, the generated income
    /// field is positive, calibrated to the target median, and splits into
    /// a sane high/low balance.
    #[test]
    fn income_fields_are_calibrated_and_positive(
        n in 30usize..400,
        seed in any::<u64>(),
        median_k in 20.0f64..150.0,
    ) {
        let grid = CityGrid::grow(LatLon::new(40.0, -100.0), n, 10, 10, seed);
        let field = IncomeField::generate(&grid, median_k, seed);
        prop_assert_eq!(field.len(), n);
        for i in 0..n {
            prop_assert!(field.income_k(i) > 0.0);
        }
        // The sorted middle element equals the calibration target.
        let mut v = field.incomes_k().to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite incomes"));
        prop_assert!((v[n / 2] - median_k).abs() < 1e-6);
        // High/low split is between 25% and 75% on any reasonable city.
        let high = (0..n).filter(|&i| field.is_high_income(i)).count();
        let frac = high as f64 / n as f64;
        prop_assert!((0.25..=0.75).contains(&frac), "high fraction {frac}");
    }

    /// City seeds are stable and the registry lookup is total.
    #[test]
    fn city_seed_is_pure(name in "[A-Za-z ]{1,30}") {
        prop_assert_eq!(city_seed(&name), city_seed(&name));
    }
}

/// The ACS build is cell-aligned and join-complete for every study city
/// (checked exhaustively over the smaller half of the registry).
#[test]
fn acs_join_is_total_for_study_cities() {
    use bbsim_census::AcsDataset;
    for city in ALL_CITIES.iter().filter(|c| c.block_groups <= 400) {
        let grid = city.grid();
        let income = IncomeField::generate(&grid, city.median_income_k, city_seed(city.name));
        let acs = AcsDataset::build(city, &grid, &income, city_seed(city.name));
        assert_eq!(acs.len(), grid.len(), "{}", city.name);
        for i in 0..grid.len() {
            let row = acs.get(grid.id(i)).expect("every grid cell joins");
            assert_eq!(row.id, grid.id(i));
        }
    }
}
