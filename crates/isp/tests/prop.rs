//! Property tests over the ISP world model.

use bbsim_isp::{catalog, Isp, Plan, Tech, ALL_ISPS};
use proptest::prelude::*;

fn arb_isp() -> impl Strategy<Value = Isp> {
    (0usize..ALL_ISPS.len()).prop_map(|i| ALL_ISPS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Carriage values are always positive and finite, for every plan of
    /// every ISP and any subsidy level.
    #[test]
    fn carriage_values_are_finite_under_subsidy(isp in arb_isp(), discount in 0.0f64..200.0) {
        for p in catalog(isp) {
            let s = p.with_subsidy(discount);
            prop_assert!(s.price_usd >= 5.0, "price floor");
            prop_assert!(s.carriage_value().is_finite());
            prop_assert!(s.carriage_value() >= p.carriage_value());
            prop_assert_eq!(s.download_mbps, p.download_mbps);
        }
    }

    /// Subsidies are monotone: a bigger discount never yields a worse deal.
    #[test]
    fn subsidies_are_monotone(
        down in 1.0f64..2000.0,
        price in 10.0f64..150.0,
        d1 in 0.0f64..100.0,
        d2 in 0.0f64..100.0,
    ) {
        let p = Plan::new(down, down / 10.0, price, Tech::Cable);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(p.with_subsidy(hi).carriage_value() >= p.with_subsidy(lo).carriage_value());
    }

    /// Column numbering and slugs are total bijections over the seven ISPs.
    #[test]
    fn isp_identifiers_roundtrip(isp in arb_isp()) {
        prop_assert_eq!(Isp::from_column(isp.column()), Some(isp));
        prop_assert_eq!(Isp::from_slug(isp.slug()), Some(isp));
    }

    /// Upload-based carriage value never exceeds download-based for any
    /// catalog plan (uploads are never faster than downloads).
    #[test]
    fn upload_cv_bounded_by_download_cv(isp in arb_isp()) {
        for p in catalog(isp) {
            prop_assert!(p.upload_mbps <= p.download_mbps, "{isp} {p:?}");
            prop_assert!(p.upload_carriage_value() <= p.carriage_value());
        }
    }
}

/// Deployment-level property, checked across the full city list rather
/// than proptest (the world is deterministic per city): fiber shares and
/// coverages always land in their documented ranges at every epoch.
#[test]
fn deployments_respect_documented_ranges_across_epochs() {
    use bbsim_census::{city_seed, IncomeField, ALL_CITIES};
    use bbsim_isp::Deployment;

    for city in ALL_CITIES.iter().filter(|c| c.block_groups < 500) {
        let grid = city.grid();
        let income = IncomeField::generate(&grid, city.median_income_k, city_seed(city.name));
        for &n in city.major_isps {
            let isp = Isp::from_column(n).expect("valid column");
            let mut prev_fiber = 0.0;
            for epoch in [0u32, 3, 6] {
                let d = Deployment::generate_at(isp, city, &grid, &income, epoch);
                let cov = d.coverage();
                let share = d.fiber_share();
                if isp.is_cable() {
                    assert!(cov > 0.95, "{} {isp}: coverage {cov}", city.name);
                    assert_eq!(share, 0.0);
                } else {
                    assert!(
                        (0.6..=0.95).contains(&cov),
                        "{} {isp}: coverage {cov}",
                        city.name
                    );
                    assert!(share <= 0.85 + 1e-9, "{} {isp}: share {share}", city.name);
                    assert!(
                        share >= prev_fiber - 1e-9,
                        "{} {isp}: fiber shrank {prev_fiber} -> {share}",
                        city.name
                    );
                    prev_fiber = share;
                }
            }
        }
    }
}
