//! ISP world model: the generative ground truth that the BAT servers serve
//! and BQT measures.
//!
//! The real ground truth — where each ISP deployed fiber, which plans it
//! offers at which address, and how it prices against local competition —
//! is proprietary. This crate rebuilds it generatively, with knobs set from
//! the paper's own background section (§2) and evaluation:
//!
//! * [`isp`] — the seven major ISPs and their technology category;
//! * [`plans`] — Table-1 plan catalogs: the fixed per-ISP plan menus whose
//!   per-address subsets produce every carriage value in the paper;
//! * [`deployment`] — who gets fiber: income-biased, spatially smoothed
//!   block-group assignment (the mechanism behind §5.3 and §5.5);
//! * [`pricing`] — cable tier geography and competition response: promo
//!   tiers are spatially clustered, and the competitive high-cv tier appears
//!   exactly where a fiber rival deployed (§5.4);
//! * [`world`] — the assembled per-city world: one call builds grid, income
//!   field, demographics, address inventory and per-ISP offerings.
//!
//! Nothing downstream of the BAT servers may read this crate's internals:
//! the analysis pipeline sees only what BQT scraped off the wire.

pub mod deployment;
pub mod form477;
pub mod isp;
pub mod plans;
pub mod pricing;
pub mod world;

pub use deployment::{Deployment, TechAtBlockGroup};
pub use form477::{Form477Report, Form477Row};
pub use isp::{Isp, Technology, ALL_ISPS};
pub use plans::{catalog, Plan, Tech};
pub use pricing::{CablePricing, CableTier};
pub use world::{CityWorld, OfferedPlans};
