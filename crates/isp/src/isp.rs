//! The seven major ISPs of the study.

use std::fmt;

/// Access-technology category (§2: same-type ISPs never compete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// DSL and/or fiber to the home (AT&T, Verizon, CenturyLink, Frontier).
    DslFiber,
    /// Hybrid fiber-coax cable (Xfinity, Spectrum, Cox).
    Cable,
}

/// One of the seven major wireline broadband ISPs the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isp {
    Att,
    Verizon,
    CenturyLink,
    Frontier,
    Spectrum,
    Cox,
    Xfinity,
}

/// All seven, in the paper's Table-2 column order.
pub const ALL_ISPS: [Isp; 7] = [
    Isp::Att,
    Isp::Verizon,
    Isp::CenturyLink,
    Isp::Frontier,
    Isp::Spectrum,
    Isp::Cox,
    Isp::Xfinity,
];

impl Isp {
    /// The paper's Table-2 column number (1..=7).
    pub fn column(self) -> u8 {
        match self {
            Isp::Att => 1,
            Isp::Verizon => 2,
            Isp::CenturyLink => 3,
            Isp::Frontier => 4,
            Isp::Spectrum => 5,
            Isp::Cox => 6,
            Isp::Xfinity => 7,
        }
    }

    /// Inverse of [`Isp::column`].
    pub fn from_column(n: u8) -> Option<Isp> {
        ALL_ISPS.into_iter().find(|i| i.column() == n)
    }

    pub fn technology(self) -> Technology {
        match self {
            Isp::Att | Isp::Verizon | Isp::CenturyLink | Isp::Frontier => Technology::DslFiber,
            Isp::Spectrum | Isp::Cox | Isp::Xfinity => Technology::Cable,
        }
    }

    pub fn is_cable(self) -> bool {
        self.technology() == Technology::Cable
    }

    /// Display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            Isp::Att => "AT&T",
            Isp::Verizon => "Verizon",
            Isp::CenturyLink => "CenturyLink",
            Isp::Frontier => "Frontier",
            Isp::Spectrum => "Spectrum",
            Isp::Cox => "Cox",
            Isp::Xfinity => "Xfinity",
        }
    }

    /// Stable lowercase slug used for endpoint names and file stems.
    pub fn slug(self) -> &'static str {
        match self {
            Isp::Att => "att",
            Isp::Verizon => "verizon",
            Isp::CenturyLink => "centurylink",
            Isp::Frontier => "frontier",
            Isp::Spectrum => "spectrum",
            Isp::Cox => "cox",
            Isp::Xfinity => "xfinity",
        }
    }

    /// Parses a slug back to the ISP.
    pub fn from_slug(s: &str) -> Option<Isp> {
        ALL_ISPS.into_iter().find(|i| i.slug() == s)
    }
}

impl fmt::Display for Isp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_numbering_matches_table_2_order() {
        for (i, isp) in ALL_ISPS.iter().enumerate() {
            assert_eq!(isp.column() as usize, i + 1);
            assert_eq!(Isp::from_column(isp.column()), Some(*isp));
        }
        assert_eq!(Isp::from_column(0), None);
        assert_eq!(Isp::from_column(8), None);
    }

    #[test]
    fn technology_split_is_four_dsl_three_cable() {
        let dsl = ALL_ISPS
            .iter()
            .filter(|i| i.technology() == Technology::DslFiber)
            .count();
        let cable = ALL_ISPS.iter().filter(|i| i.is_cable()).count();
        assert_eq!((dsl, cable), (4, 3));
    }

    #[test]
    fn slugs_roundtrip() {
        for isp in ALL_ISPS {
            assert_eq!(Isp::from_slug(isp.slug()), Some(isp));
        }
        assert_eq!(Isp::from_slug("compuserve"), None);
    }

    #[test]
    fn names_match_paper_spelling() {
        assert_eq!(Isp::Att.to_string(), "AT&T");
        assert_eq!(Isp::CenturyLink.to_string(), "CenturyLink");
    }
}
