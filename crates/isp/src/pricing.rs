//! Cable tier geography and competitive pricing.
//!
//! Cable plants use the same technology city-wide, yet the paper finds their
//! *plans* spatially clustered (§5.3) and systematically better where fiber
//! competes (§5.4). This module implements the mechanism:
//!
//! * each block group gets a **standard tier level** — how far up the
//!   standard plan ladder the local offers go — drawn from city-specific
//!   weights over a smoothed noise field (clustered, city-diverse);
//! * a city-dependent, spatially clustered fraction of block groups carries
//!   the **promo tier** (Cox's 28.6 Mbps/$ gig promo in Fig. 5);
//! * block groups where a rival fields fiber get the **competitive tier**,
//!   the ~30%-better-cv offer behind Fig. 8;
//! * the bottom income decile carries an **ACP-subsidized** variant — the
//!   long carriage-value tail the paper prunes from Fig. 8.
//!
//! Xfinity is special-cased to be location-invariant (§4.1): every block
//! group gets the full standard ladder, no promo, no competitive response.

use crate::deployment::{ranks, smoothed_noise};
use crate::isp::Isp;
use crate::plans::{catalog, Plan};
use bbsim_census::{city_seed, CityProfile, IncomeField};
use bbsim_geo::CityGrid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pricing tier a cable ISP applies in one block group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CableTier {
    /// Standard ladder up to the given level (index into the standard plan
    /// list, inclusive).
    Standard(u8),
    /// Standard ladder plus the clustered promo plan.
    Promo(u8),
    /// Standard ladder plus the competitive high-cv plan (fiber rival
    /// present).
    Competitive(u8),
}

impl CableTier {
    /// The standard-ladder level regardless of tier flavour.
    pub fn level(self) -> u8 {
        match self {
            CableTier::Standard(l) | CableTier::Promo(l) | CableTier::Competitive(l) => l,
        }
    }
}

/// Splits a cable catalog into (standard ladder, competitive plan, promo
/// plan). By convention the last two catalog entries are the competitive and
/// promo plans; Xfinity's whole catalog is standard.
pub fn split_catalog(
    isp: Isp,
) -> (
    &'static [Plan],
    Option<&'static Plan>,
    Option<&'static Plan>,
) {
    let plans = catalog(isp);
    assert!(isp.is_cable(), "split_catalog is cable-only");
    if isp == Isp::Xfinity {
        return (plans, None, None);
    }
    let n = plans.len();
    (&plans[..n - 2], Some(&plans[n - 2]), Some(&plans[n - 1]))
}

/// Per-block-group cable pricing decisions for one (ISP, city).
#[derive(Debug, Clone)]
pub struct CablePricing {
    isp: Isp,
    tiers: Vec<CableTier>,
    /// Block groups whose offers carry the ACP-subsidized variant.
    acp: Vec<bool>,
}

impl CablePricing {
    /// Generates pricing for `isp` in `city`.
    ///
    /// `rival_fiber` is the fiber mask of the co-located DSL/fiber ISP
    /// (false everywhere when the cable ISP is a monopoly).
    pub fn generate(
        isp: Isp,
        city: &CityProfile,
        grid: &CityGrid,
        income: &IncomeField,
        rival_fiber: &[bool],
    ) -> Self {
        Self::generate_at(isp, city, grid, income, rival_fiber, 0)
    }

    /// Pricing as of `epoch` months in: promo campaigns are re-rolled every
    /// month (the "occasional discounts" of §4.3), while the standard tier
    /// geography and the competitive response track the evolving rival
    /// deployment.
    pub fn generate_at(
        isp: Isp,
        city: &CityProfile,
        grid: &CityGrid,
        income: &IncomeField,
        rival_fiber: &[bool],
        epoch: u32,
    ) -> Self {
        assert!(isp.is_cable(), "CablePricing is cable-only");
        assert_eq!(
            grid.len(),
            rival_fiber.len(),
            "rival mask must align with grid"
        );
        let n = grid.len();
        let seed = city_seed(city.name) ^ (isp.column() as u64) << 48;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9C1CE);

        if isp == Isp::Xfinity {
            // Location-invariant: full ladder everywhere, nothing else.
            let top = (catalog(isp).len() - 1) as u8;
            return Self {
                isp,
                tiers: vec![CableTier::Standard(top); n],
                acp: vec![false; n],
            };
        }

        let (standard, _, _) = split_catalog(isp);
        let n_levels = standard.len();

        // City-specific level weights. Spectrum's inter-city diversity knob
        // is larger than Cox's, which is what makes Spectrum the most
        // diverse ISP in Fig. 6 and AT&T-style providers the least.
        let diversity = match isp {
            Isp::Spectrum => 2.6,
            _ => 0.9,
        };
        let raw: Vec<f64> = (0..n_levels)
            .map(|_| (rng.gen_range(-1.0..1.0f64) * diversity).exp())
            .collect();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();

        // Assign levels from a smoothed noise field by weighted quantile:
        // contiguous noise patches become contiguous tier patches. Spectrum
        // plant upgrades are patchier than Cox's (the paper measures its
        // Moran's I at 0.23, the lowest of the cable ISPs).
        let tier_rounds = 1;
        let _ = isp; // both cable ISPs share the patch scale
        let noise = smoothed_noise(grid, tier_rounds, &mut rng);
        let noise_rank = ranks(&noise);
        let mut cum = Vec::with_capacity(n_levels);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(acc);
        }
        let level_of = |r: f64| -> u8 {
            cum.iter()
                .position(|&c| r <= c + 1e-12)
                .unwrap_or(n_levels - 1) as u8
        };

        // Promo blob: city-dependent clustered fraction, re-rolled each
        // epoch from its own stream.
        let mut promo_rng = StdRng::seed_from_u64(seed ^ 0x980140 ^ ((epoch as u64) << 8));
        let rng = &mut promo_rng;
        let promo_frac = match isp {
            Isp::Spectrum => rng.gen_range(0.03..0.40),
            _ => rng.gen_range(0.05..0.25),
        };
        let promo_noise = smoothed_noise(grid, tier_rounds, rng);
        let promo_rank = ranks(&promo_noise);

        let tiers: Vec<CableTier> = (0..n)
            .map(|i| {
                let level = level_of(noise_rank[i]);
                if promo_rank[i] >= 1.0 - promo_frac {
                    CableTier::Promo(level)
                } else if rival_fiber[i] {
                    CableTier::Competitive(level)
                } else {
                    CableTier::Standard(level)
                }
            })
            .collect();

        // ACP-subsidized offers in the bottom income decile.
        let inc_rank = ranks(income.incomes_k());
        let acp = (0..n).map(|i| inc_rank[i] < 0.08).collect();

        Self { isp, tiers, acp }
    }

    pub fn isp(&self) -> Isp {
        self.isp
    }

    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    pub fn tier(&self, bg: usize) -> CableTier {
        self.tiers[bg]
    }

    pub fn tiers(&self) -> &[CableTier] {
        &self.tiers
    }

    /// Whether block group `bg` carries the ACP-subsidized variant.
    pub fn has_acp(&self, bg: usize) -> bool {
        self.acp[bg]
    }

    /// The concrete plan list offered in block group `bg`.
    pub fn plans_in(&self, bg: usize) -> Vec<Plan> {
        let (standard, competitive, promo) = split_catalog(self.isp);
        let tier = self.tiers[bg];
        let level = tier.level() as usize;
        let mut out: Vec<Plan> = standard[..=level.min(standard.len() - 1)].to_vec();
        match tier {
            CableTier::Promo(_) => {
                if let Some(p) = promo {
                    out.push(*p);
                }
            }
            CableTier::Competitive(_) => {
                if let Some(p) = competitive {
                    out.push(*p);
                }
            }
            CableTier::Standard(_) => {}
        }
        if self.acp[bg] {
            // The best offer also appears in its subsidized form.
            let best = *out
                .iter()
                // lint:allow(T2): carriage values are finite and the ladder was just built non-empty
                .max_by(|a, b| a.carriage_value().partial_cmp(&b.carriage_value()).unwrap())
                // lint:allow(T2): the ladder was just built non-empty above
                .expect("ladder is non-empty");
            out.push(best.with_subsidy(30.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;

    fn setup(isp: Isp, city_name: &str, rival_fiber_frac: f64) -> (CablePricing, CityGrid) {
        let city = city_by_name(city_name).unwrap();
        let grid = city.grid();
        let income = IncomeField::generate(&grid, city.median_income_k, city_seed(city.name));
        // Synthetic rival mask: first `frac` of cells.
        let k = (grid.len() as f64 * rival_fiber_frac) as usize;
        let mask: Vec<bool> = (0..grid.len()).map(|i| i < k).collect();
        let pricing = CablePricing::generate(isp, city, &grid, &income, &mask);
        (pricing, grid)
    }

    #[test]
    fn xfinity_is_location_invariant() {
        let (p, grid) = setup(Isp::Xfinity, "Atlanta", 0.4);
        let first = p.plans_in(0);
        for bg in 0..grid.len() {
            assert_eq!(p.plans_in(bg), first);
            assert!(!p.has_acp(bg));
        }
        assert_eq!(first.len(), 3);
    }

    #[test]
    fn competitive_tier_appears_exactly_where_rival_fiber_is() {
        let (p, grid) = setup(Isp::Cox, "New Orleans", 0.35);
        for bg in 0..grid.len() {
            let competitive = matches!(p.tier(bg), CableTier::Competitive(_));
            let promo = matches!(p.tier(bg), CableTier::Promo(_));
            if bg < (grid.len() as f64 * 0.35) as usize {
                assert!(
                    competitive || promo,
                    "bg {bg} should respond to rival fiber"
                );
            } else {
                assert!(!competitive, "bg {bg} has no rival fiber");
            }
        }
    }

    #[test]
    fn competitive_best_cv_beats_standard_best_cv_by_about_30_percent() {
        let (p, grid) = setup(Isp::Cox, "New Orleans", 0.5);
        let best_cv = |bg: usize| {
            p.plans_in(bg)
                .iter()
                .map(|pl| pl.carriage_value())
                .fold(f64::MIN, f64::max)
        };
        let mut comp = Vec::new();
        let mut std_ = Vec::new();
        for bg in 0..grid.len() {
            match p.tier(bg) {
                CableTier::Competitive(_) if !p.has_acp(bg) => comp.push(best_cv(bg)),
                CableTier::Standard(_) if !p.has_acp(bg) => std_.push(best_cv(bg)),
                _ => {}
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let mc = med(&mut comp);
        let ms = med(&mut std_);
        let boost = mc / ms;
        assert!(
            (1.15..1.55).contains(&boost),
            "boost {boost} ({mc} vs {ms})"
        );
    }

    #[test]
    fn acp_block_groups_get_a_high_cv_tail() {
        let (p, grid) = setup(Isp::Cox, "New Orleans", 0.0);
        let mut acp_count = 0;
        for bg in 0..grid.len() {
            if p.has_acp(bg) {
                acp_count += 1;
                let best = p
                    .plans_in(bg)
                    .iter()
                    .map(|pl| pl.carriage_value())
                    .fold(f64::MIN, f64::max);
                assert!(
                    best > 28.7,
                    "ACP best cv {best} should exceed the promo peak"
                );
            }
        }
        let frac = acp_count as f64 / grid.len() as f64;
        assert!((0.02..0.15).contains(&frac), "ACP fraction {frac}");
    }

    #[test]
    fn promo_fraction_varies_by_city() {
        let frac = |city: &str| {
            let (p, grid) = setup(Isp::Cox, city, 0.0);
            (0..grid.len())
                .filter(|&bg| matches!(p.tier(bg), CableTier::Promo(_)))
                .count() as f64
                / grid.len() as f64
        };
        let fracs: Vec<f64> = [
            "New Orleans",
            "Oklahoma City",
            "Wichita",
            "Omaha",
            "Phoenix",
        ]
        .iter()
        .map(|c| frac(c))
        .collect();
        let min = fracs.iter().cloned().fold(f64::MAX, f64::min);
        let max = fracs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.03, "promo fractions {fracs:?}");
        assert!(fracs.iter().all(|f| (0.03..0.45).contains(f)), "{fracs:?}");
    }

    #[test]
    fn tiers_are_spatially_clustered() {
        use bbsim_geo::{Adjacency, Contiguity, SpatialWeights};
        let (p, grid) = setup(Isp::Cox, "Phoenix", 0.3);
        let values: Vec<f64> = (0..grid.len())
            .map(|bg| {
                p.plans_in(bg)
                    .iter()
                    .map(|pl| pl.carriage_value())
                    .fold(f64::MIN, f64::max)
            })
            .collect();
        let w = SpatialWeights::row_standardized(&Adjacency::from_grid(&grid, Contiguity::Rook));
        let r = bbsim_stats::morans_i(&values, w.rows()).unwrap();
        assert!(r.i > 0.1, "Moran's I = {}", r.i);
    }

    #[test]
    fn plan_ladders_respect_levels() {
        let (p, grid) = setup(Isp::Cox, "Wichita", 0.0);
        let (standard, ..) = split_catalog(Isp::Cox);
        for bg in 0..grid.len() {
            let plans = p.plans_in(bg);
            let level = p.tier(bg).level() as usize;
            let ladder_len = plans
                .iter()
                .filter(|pl| standard.iter().any(|s| s == *pl))
                .count();
            assert_eq!(ladder_len, level + 1, "bg {bg}");
        }
    }

    #[test]
    fn pricing_is_deterministic() {
        let (a, _) = setup(Isp::Cox, "New Orleans", 0.3);
        let (b, _) = setup(Isp::Cox, "New Orleans", 0.3);
        assert_eq!(a.tiers(), b.tiers());
    }

    #[test]
    #[should_panic(expected = "cable-only")]
    fn dsl_isp_rejected() {
        let city = city_by_name("New Orleans").unwrap();
        let grid = city.grid();
        let income = IncomeField::generate(&grid, 41.0, 1);
        let mask = vec![false; grid.len()];
        CablePricing::generate(Isp::Att, city, &grid, &income, &mask);
    }
}
