//! The assembled per-city ground truth.
//!
//! [`CityWorld::build`] derives everything about one study city from its
//! Table-2 row and the city seed: geography, demographics, the address
//! inventory, each active ISP's deployment, and cable pricing (including the
//! competitive response to the co-located fiber deployment). Its
//! [`CityWorld::plans_at`] is the oracle the simulated BAT servers answer
//! from.
//!
//! Downstream measurement and analysis code must treat this type as the
//! *hidden* state of the world: only the BAT servers may query it.

use crate::deployment::{smoothed_noise, Deployment, TechAtBlockGroup};
use crate::isp::Isp;
use crate::plans::{catalog, Plan, Tech};
use crate::pricing::CablePricing;
use bbsim_address::{AddressDb, AddressRecord, NoiseProfile};
use bbsim_census::{city_seed, AcsDataset, CityProfile, IncomeField};
use bbsim_geo::CityGrid;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fraction of addresses inside a fiber block group that can actually get
/// fiber (drop not yet built for the rest — they fall back to DSL).
const FIBER_TAKE_RATE: f64 = 0.88;

/// The plans an ISP offers at one address, as ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferedPlans {
    pub isp: Isp,
    pub plans: Vec<Plan>,
}

impl OfferedPlans {
    /// Best (maximum) carriage value among the offered plans, the paper's
    /// per-address summary metric.
    pub fn best_carriage_value(&self) -> Option<f64> {
        self.plans
            .iter()
            .map(Plan::carriage_value)
            .fold(None, |acc, cv| Some(acc.map_or(cv, |a: f64| a.max(cv))))
    }
}

/// One city's complete hidden state.
pub struct CityWorld {
    city: &'static CityProfile,
    grid: CityGrid,
    income: IncomeField,
    acs: AcsDataset,
    addresses: AddressDb,
    deployments: Vec<(Isp, Deployment)>,
    cable_pricing: Vec<(Isp, CablePricing)>,
    /// Per-(ISP-slot, block group) DSL line quality in [0, 1]; indexes
    /// align with `deployments`.
    dsl_quality: Vec<Vec<f64>>,
}

impl CityWorld {
    /// Builds the world for `city`, fully determined by the city seed.
    pub fn build(city: &'static CityProfile) -> Self {
        Self::build_at(city, 0)
    }

    /// Builds the world as of `epoch` months after the first snapshot:
    /// fiber deployments have grown, promo campaigns have rotated, and
    /// cable's competitive tier follows the expanded rival footprint. Used
    /// by the §4.3 staleness experiment.
    pub fn build_at(city: &'static CityProfile, epoch: u32) -> Self {
        let seed = city_seed(city.name);
        let grid = city.grid();
        let income = IncomeField::generate(&grid, city.median_income_k, seed);
        let acs = AcsDataset::build(city, &grid, &income, seed);
        let addresses = AddressDb::generate(city, &grid, &NoiseProfile::zillow_like());

        let isps: Vec<Isp> = city
            .major_isps
            .iter()
            // lint:allow(T2): major_isps holds Table 2 columns validated at profile build
            .map(|&n| Isp::from_column(n).expect("Table 2 column in 1..=7"))
            .collect();

        let deployments: Vec<(Isp, Deployment)> = isps
            .iter()
            .map(|&isp| {
                (
                    isp,
                    Deployment::generate_at(isp, city, &grid, &income, epoch),
                )
            })
            .collect();

        // The cable ISP prices against the co-located fiber deployment.
        let rival_fiber: Vec<bool> = deployments
            .iter()
            .find(|(i, _)| !i.is_cable())
            .map(|(_, d)| d.fiber_mask())
            .unwrap_or_else(|| vec![false; grid.len()]);
        let cable_pricing: Vec<(Isp, CablePricing)> = deployments
            .iter()
            .filter(|(i, _)| i.is_cable())
            .map(|&(isp, _)| {
                (
                    isp,
                    CablePricing::generate_at(isp, city, &grid, &income, &rival_fiber, epoch),
                )
            })
            .collect();

        // Per-ISP DSL line quality fields (loop length proxy), spatially
        // smoothed like real copper plant quality.
        let dsl_quality: Vec<Vec<f64>> = deployments
            .iter()
            .map(|(isp, _)| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xD51 ^ ((isp.column() as u64) << 32));
                smoothed_noise(&grid, 2, &mut rng)
            })
            .collect();

        Self {
            city,
            grid,
            income,
            acs,
            addresses,
            deployments,
            cable_pricing,
            dsl_quality,
        }
    }

    pub fn city(&self) -> &'static CityProfile {
        self.city
    }

    pub fn grid(&self) -> &CityGrid {
        &self.grid
    }

    pub fn income(&self) -> &IncomeField {
        &self.income
    }

    pub fn acs(&self) -> &AcsDataset {
        &self.acs
    }

    pub fn addresses(&self) -> &AddressDb {
        &self.addresses
    }

    /// The major ISPs active in this city.
    pub fn isps(&self) -> Vec<Isp> {
        self.deployments.iter().map(|&(i, _)| i).collect()
    }

    /// This city's deployment for `isp`, if active here.
    pub fn deployment(&self, isp: Isp) -> Option<&Deployment> {
        self.deployments
            .iter()
            .find(|(i, _)| *i == isp)
            .map(|(_, d)| d)
    }

    /// This city's cable pricing for `isp`, if it is an active cable ISP.
    pub fn cable_pricing(&self, isp: Isp) -> Option<&CablePricing> {
        self.cable_pricing
            .iter()
            .find(|(i, _)| *i == isp)
            .map(|(_, p)| p)
    }

    /// Stable per-address hash used for sub-block-group assignment.
    fn addr_hash(&self, isp: Isp, addr: &AddressRecord) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (isp.column() as u64);
        for b in [addr.id as u64, addr.bg_index as u64] {
            h ^= b;
            h = h.wrapping_mul(0x1000_0000_01b3);
            h ^= h >> 29;
        }
        h
    }

    /// Ground truth: the plans `isp` offers at `addr` (empty when not
    /// served). Only the BAT servers should call this.
    pub fn plans_at(&self, isp: Isp, addr: &AddressRecord) -> OfferedPlans {
        let Some(slot) = self.deployments.iter().position(|(i, _)| *i == isp) else {
            return OfferedPlans {
                isp,
                plans: Vec::new(),
            };
        };
        let deployment = &self.deployments[slot].1;
        let bg = addr.bg_index;
        let plans = match deployment.tech(bg) {
            TechAtBlockGroup::NotServed => Vec::new(),
            TechAtBlockGroup::Cable => self
                .cable_pricing(isp)
                // lint:allow(T2): Cable tech at a block group implies a cable pricing table
                .expect("cable ISP has pricing")
                .plans_in(bg),
            TechAtBlockGroup::Fiber => {
                // Most addresses in a fiber block group get the fiber menu;
                // the remainder fall back to the local DSL ladder (this is
                // the within-block variability behind Fig. 4's long tail).
                let h = self.addr_hash(isp, addr);
                let fiber_served = (h % 10_000) as f64 / 10_000.0 < FIBER_TAKE_RATE;
                if fiber_served {
                    catalog(isp)
                        .iter()
                        .filter(|p| p.tech == Tech::Fiber)
                        .copied()
                        .collect()
                } else {
                    self.dsl_ladder(isp, slot, bg)
                }
            }
            TechAtBlockGroup::Dsl => self.dsl_ladder(isp, slot, bg),
        };
        OfferedPlans { isp, plans }
    }

    /// The DSL plans available in a block group: the ladder up to the local
    /// line-quality ceiling, showing at most the top three tiers (ISPs
    /// advertise a short menu).
    fn dsl_ladder(&self, isp: Isp, slot: usize, bg: usize) -> Vec<Plan> {
        let dsl: Vec<Plan> = catalog(isp)
            .iter()
            .filter(|p| p.tech == Tech::Dsl)
            .copied()
            .collect();
        debug_assert!(!dsl.is_empty(), "DSL/fiber ISPs always have DSL tiers");
        let q = self.dsl_quality[slot][bg];
        let max_idx = ((q * dsl.len() as f64).floor() as usize).min(dsl.len() - 1);
        let lo = max_idx.saturating_sub(2);
        dsl[lo..=max_idx].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;

    fn nola() -> CityWorld {
        CityWorld::build(city_by_name("New Orleans").unwrap())
    }

    #[test]
    fn world_has_both_table_2_isps() {
        let w = nola();
        assert_eq!(w.isps(), vec![Isp::Att, Isp::Cox]);
        assert!(w.deployment(Isp::Att).is_some());
        assert!(w.cable_pricing(Isp::Cox).is_some());
        assert!(w.deployment(Isp::Verizon).is_none());
    }

    #[test]
    fn unserved_isp_offers_nothing() {
        let w = nola();
        let addr = &w.addresses().records()[0];
        assert!(w.plans_at(Isp::Verizon, addr).plans.is_empty());
    }

    #[test]
    fn cable_offers_are_identical_within_a_block_group() {
        let w = nola();
        let bg = 5;
        let ids = w.addresses().in_block_group(bg);
        assert!(ids.len() >= 2);
        let first = w.plans_at(Isp::Cox, &w.addresses().records()[ids[0]]);
        for &i in &ids[1..] {
            assert_eq!(w.plans_at(Isp::Cox, &w.addresses().records()[i]), first);
        }
    }

    #[test]
    fn fiber_block_groups_mix_fiber_and_dsl_addresses() {
        let w = nola();
        let dep = w.deployment(Isp::Att).unwrap();
        let fiber_bg = (0..w.grid().len())
            .find(|&bg| {
                dep.tech(bg) == TechAtBlockGroup::Fiber
                    && w.addresses().in_block_group(bg).len() >= 30
            })
            .expect("some populous fiber block group");
        let mut fiber_addrs = 0;
        let mut dsl_addrs = 0;
        for &i in w.addresses().in_block_group(fiber_bg) {
            let plans = w.plans_at(Isp::Att, &w.addresses().records()[i]).plans;
            assert!(!plans.is_empty());
            if plans.iter().any(|p| p.tech == Tech::Fiber) {
                fiber_addrs += 1;
            } else {
                dsl_addrs += 1;
            }
        }
        assert!(
            fiber_addrs > dsl_addrs,
            "fiber should dominate: {fiber_addrs} vs {dsl_addrs}"
        );
        assert!(dsl_addrs > 0, "some addresses fall back to DSL");
    }

    #[test]
    fn dsl_block_groups_offer_only_dsl() {
        let w = nola();
        let dep = w.deployment(Isp::Att).unwrap();
        let dsl_bg = (0..w.grid().len())
            .find(|&bg| {
                dep.tech(bg) == TechAtBlockGroup::Dsl
                    && !w.addresses().in_block_group(bg).is_empty()
            })
            .expect("some DSL block group");
        for &i in w.addresses().in_block_group(dsl_bg).iter().take(10) {
            let plans = w.plans_at(Isp::Att, &w.addresses().records()[i]).plans;
            assert!(!plans.is_empty());
            assert!(plans.iter().all(|p| p.tech == Tech::Dsl));
            assert!(plans.len() <= 3, "short advertised menu");
        }
    }

    #[test]
    fn best_carriage_value_matches_manual_max() {
        let w = nola();
        let addr = &w.addresses().records()[10];
        let offered = w.plans_at(Isp::Cox, addr);
        if let Some(best) = offered.best_carriage_value() {
            let manual = offered
                .plans
                .iter()
                .map(Plan::carriage_value)
                .fold(f64::MIN, f64::max);
            assert_eq!(best, manual);
        }
    }

    #[test]
    fn plans_at_is_deterministic() {
        let a = nola();
        let b = nola();
        for i in [0usize, 100, 5000] {
            let ra = &a.addresses().records()[i];
            let rb = &b.addresses().records()[i];
            assert_eq!(a.plans_at(Isp::Att, ra), b.plans_at(Isp::Att, rb));
            assert_eq!(a.plans_at(Isp::Cox, ra), b.plans_at(Isp::Cox, rb));
        }
    }

    #[test]
    fn empty_offered_plans_has_no_best_cv() {
        let offered = OfferedPlans {
            isp: Isp::Verizon,
            plans: Vec::new(),
        };
        assert_eq!(offered.best_carriage_value(), None);
    }

    #[test]
    fn monopoly_city_builds_without_a_cable_rival() {
        let w = CityWorld::build(city_by_name("Seattle").unwrap());
        assert_eq!(w.isps(), vec![Isp::CenturyLink]);
        let addr = &w.addresses().records()[0];
        // CenturyLink serves or not, but never panics without cable pricing.
        let _ = w.plans_at(Isp::CenturyLink, addr);
    }
}
