//! Per-ISP plan catalogs (the paper's Table 1).
//!
//! Each ISP offers a fixed menu of plans nationally; any given address sees
//! only a subset (§5.1). The catalogs below reproduce Table 1's plan counts
//! and speed/price envelopes. Where Table 1's carriage-value extremes are
//! arithmetically inconsistent with its own speed/price ranges (they stem
//! from promos the table doesn't itemize), we keep the speed/price ranges
//! and let carriage values follow from them; EXPERIMENTS.md records the
//! deltas.

use crate::isp::Isp;

/// Access technology of a single plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tech {
    Dsl,
    Fiber,
    Cable,
}

/// One broadband plan: the unit every analysis is built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    pub download_mbps: f64,
    pub upload_mbps: f64,
    pub price_usd: f64,
    pub tech: Tech,
}

impl Plan {
    pub const fn new(download_mbps: f64, upload_mbps: f64, price_usd: f64, tech: Tech) -> Self {
        Self {
            download_mbps,
            upload_mbps,
            price_usd,
            tech,
        }
    }

    /// Carriage value: download Mbps carried per dollar per month (§1).
    pub fn carriage_value(&self) -> f64 {
        self.download_mbps / self.price_usd
    }

    /// Carriage value computed from upload speed (the paper verified its
    /// results also hold on this variant).
    pub fn upload_carriage_value(&self) -> f64 {
        self.upload_mbps / self.price_usd
    }

    /// The same plan with an ACP-style monthly subsidy applied (price floor
    /// $5 so cv stays finite).
    pub fn with_subsidy(&self, discount_usd: f64) -> Plan {
        Plan {
            price_usd: (self.price_usd - discount_usd).max(5.0),
            ..*self
        }
    }
}

/// AT&T: 8 DSL tiers + 3 fiber tiers = 11 plans (Table 1).
const ATT: &[Plan] = &[
    Plan::new(0.768, 0.768, 55.0, Tech::Dsl),
    Plan::new(1.5, 1.0, 55.0, Tech::Dsl),
    Plan::new(3.0, 1.0, 55.0, Tech::Dsl),
    Plan::new(6.0, 1.0, 55.0, Tech::Dsl),
    Plan::new(12.0, 1.5, 55.0, Tech::Dsl),
    Plan::new(25.0, 5.0, 55.0, Tech::Dsl),
    Plan::new(50.0, 10.0, 55.0, Tech::Dsl),
    Plan::new(100.0, 20.0, 55.0, Tech::Dsl),
    Plan::new(300.0, 300.0, 55.0, Tech::Fiber),
    Plan::new(500.0, 500.0, 65.0, Tech::Fiber),
    Plan::new(1000.0, 1000.0, 80.0, Tech::Fiber),
];

/// Verizon: 1 DSL + 3 Fios tiers = 4 plans.
const VERIZON: &[Plan] = &[
    Plan::new(3.1, 1.0, 50.0, Tech::Dsl),
    Plan::new(300.0, 300.0, 50.0, Tech::Fiber),
    Plan::new(500.0, 500.0, 70.0, Tech::Fiber),
    Plan::new(1000.0, 880.0, 90.0, Tech::Fiber),
];

/// CenturyLink: 6 DSL tiers + 2 fiber tiers = 8 plans.
const CENTURYLINK: &[Plan] = &[
    Plan::new(1.5, 0.5, 50.0, Tech::Dsl),
    Plan::new(3.0, 0.75, 50.0, Tech::Dsl),
    Plan::new(10.0, 1.0, 50.0, Tech::Dsl),
    Plan::new(25.0, 3.0, 50.0, Tech::Dsl),
    Plan::new(80.0, 10.0, 50.0, Tech::Dsl),
    Plan::new(140.0, 20.0, 50.0, Tech::Dsl),
    Plan::new(200.0, 200.0, 50.0, Tech::Fiber),
    Plan::new(940.0, 940.0, 65.0, Tech::Fiber),
];

/// Frontier: the paper's striking 2-plan menu: legacy DSL or 2-gig fiber.
const FRONTIER: &[Plan] = &[
    Plan::new(0.2, 0.2, 50.0, Tech::Dsl),
    Plan::new(2000.0, 2000.0, 100.0, Tech::Fiber),
];

/// Spectrum: 5 cable tiers. The standard ladder ascends in carriage value
/// into distinct integer buckets (11, 13, 14), which is what lets its tier
/// geography vary city to city — Spectrum is the paper's most inter-city
/// diverse ISP (Fig. 6).
const SPECTRUM: &[Plan] = &[
    Plan::new(220.0, 10.0, 20.0, Tech::Cable),
    Plan::new(500.0, 20.0, 40.0, Tech::Cable),
    Plan::new(600.0, 35.0, 44.0, Tech::Cable),
    Plan::new(1000.0, 35.0, 70.0, Tech::Cable),
    Plan::new(900.0, 35.0, 62.0, Tech::Cable),
];

/// Cox: 6 cable tiers. The 950/65 tier is the competitive offer that shows
/// up where fiber rivals deploy; 1000/35 is the clustered promo tier.
const COX: &[Plan] = &[
    Plan::new(200.0, 5.0, 20.0, Tech::Cable),
    Plan::new(250.0, 10.0, 22.0, Tech::Cable),
    Plan::new(300.0, 10.0, 25.0, Tech::Cable),
    Plan::new(500.0, 20.0, 40.0, Tech::Cable),
    Plan::new(950.0, 35.0, 65.0, Tech::Cable),
    Plan::new(1000.0, 35.0, 35.0, Tech::Cable),
];

/// Xfinity: 3 tiers, invariant to location (§4.1 — the paper verified this
/// and then stopped collecting Xfinity data).
const XFINITY: &[Plan] = &[
    Plan::new(75.0, 10.0, 20.0, Tech::Cable),
    Plan::new(300.0, 10.0, 40.0, Tech::Cable),
    Plan::new(1200.0, 35.0, 80.0, Tech::Cable),
];

/// The full national plan menu for an ISP.
pub fn catalog(isp: Isp) -> &'static [Plan] {
    match isp {
        Isp::Att => ATT,
        Isp::Verizon => VERIZON,
        Isp::CenturyLink => CENTURYLINK,
        Isp::Frontier => FRONTIER,
        Isp::Spectrum => SPECTRUM,
        Isp::Cox => COX,
        Isp::Xfinity => XFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isp::ALL_ISPS;

    #[test]
    fn catalog_sizes_match_table_1() {
        assert_eq!(catalog(Isp::Att).len(), 11);
        assert_eq!(catalog(Isp::Verizon).len(), 4);
        assert_eq!(catalog(Isp::CenturyLink).len(), 8);
        assert_eq!(catalog(Isp::Frontier).len(), 2);
        assert_eq!(catalog(Isp::Spectrum).len(), 5);
        assert_eq!(catalog(Isp::Cox).len(), 6);
        assert_eq!(catalog(Isp::Xfinity).len(), 3);
    }

    #[test]
    fn carriage_value_definition() {
        // The paper's example: 100 Mbps at $50 is 2 Mbps/$.
        let p = Plan::new(100.0, 10.0, 50.0, Tech::Cable);
        assert_eq!(p.carriage_value(), 2.0);
    }

    #[test]
    fn att_new_orleans_example_carriage_values() {
        // §5.1's worked example: (1000, $80), (500, $65), (300, $55) give
        // cv 12.5, 7.7, 5.5.
        let fiber: Vec<&Plan> = catalog(Isp::Att)
            .iter()
            .filter(|p| p.tech == Tech::Fiber)
            .collect();
        let cvs: Vec<f64> = fiber.iter().map(|p| p.carriage_value()).collect();
        assert!((cvs[2] - 12.5).abs() < 0.01);
        assert!((cvs[1] - 7.69).abs() < 0.01);
        assert!((cvs[0] - 5.45).abs() < 0.01);
    }

    #[test]
    fn max_carriage_value_across_all_isps_is_cox_28_6() {
        // Table 1 footnote: the maximum observed cv across all ISPs and
        // cities is 28.6 (Cox's promo gig tier).
        let mut best = (Isp::Att, 0.0);
        for isp in ALL_ISPS {
            for p in catalog(isp) {
                if p.carriage_value() > best.1 {
                    best = (isp, p.carriage_value());
                }
            }
        }
        assert_eq!(best.0, Isp::Cox);
        assert!((best.1 - 28.571).abs() < 0.01);
    }

    #[test]
    fn dsl_fiber_isps_have_both_techs_and_cable_isps_only_cable() {
        for isp in ALL_ISPS {
            let techs: std::collections::HashSet<_> = catalog(isp).iter().map(|p| p.tech).collect();
            if isp.is_cable() {
                assert_eq!(techs.len(), 1);
                assert!(techs.contains(&Tech::Cable));
            } else {
                assert!(techs.contains(&Tech::Dsl), "{isp}");
                assert!(techs.contains(&Tech::Fiber), "{isp}");
            }
        }
    }

    #[test]
    fn price_ranges_match_table_1_envelopes() {
        let range = |isp: Isp| {
            let prices: Vec<f64> = catalog(isp).iter().map(|p| p.price_usd).collect();
            (
                prices.iter().cloned().fold(f64::MAX, f64::min),
                prices.iter().cloned().fold(f64::MIN, f64::max),
            )
        };
        assert_eq!(range(Isp::Att), (55.0, 80.0));
        assert_eq!(range(Isp::Frontier), (50.0, 100.0));
        assert_eq!(range(Isp::Spectrum), (20.0, 70.0));
    }

    #[test]
    fn cable_upload_speeds_are_5_to_35() {
        // Table 1: cable uploads cap at 35 Mbps.
        for isp in [Isp::Spectrum, Isp::Cox, Isp::Xfinity] {
            for p in catalog(isp) {
                assert!((5.0..=35.0).contains(&p.upload_mbps), "{isp} {p:?}");
            }
        }
    }

    #[test]
    fn subsidy_floors_price() {
        let p = Plan::new(200.0, 5.0, 20.0, Tech::Cable);
        let s = p.with_subsidy(30.0);
        assert_eq!(s.price_usd, 5.0);
        assert_eq!(s.download_mbps, 200.0);
        assert!(s.carriage_value() > p.carriage_value());
    }

    #[test]
    fn fiber_tiers_beat_dsl_tiers_within_each_dsl_fiber_isp() {
        for isp in [Isp::Att, Isp::Verizon, Isp::CenturyLink, Isp::Frontier] {
            let best_dsl = catalog(isp)
                .iter()
                .filter(|p| p.tech == Tech::Dsl)
                .map(|p| p.carriage_value())
                .fold(f64::MIN, f64::max);
            let best_fiber = catalog(isp)
                .iter()
                .filter(|p| p.tech == Tech::Fiber)
                .map(|p| p.carriage_value())
                .fold(f64::MIN, f64::max);
            assert!(best_fiber > best_dsl * 3.0, "{isp}");
        }
    }
}
