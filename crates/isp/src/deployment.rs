//! Block-group-level infrastructure deployment.
//!
//! Who gets fiber is the paper's central causal lever: fiber raises the
//! local carriage value directly (§5.3) and indirectly through cable's
//! competitive response (§5.4), and it lands preferentially in high-income
//! block groups (§5.5). This module assigns per-block-group technology with
//! exactly those mechanics:
//!
//! * **coverage** — DSL/fiber ISPs serve a core-biased subset of the city's
//!   block groups; cable ISPs serve essentially all of it (§2);
//! * **fiber share** — a city-dependent fraction of the served groups get
//!   fiber, the rest legacy DSL;
//! * **income bias** — fiber lands on the block groups with the highest
//!   blend of income rank and spatially-smoothed noise. Frontier gets a
//!   near-zero income weight: the paper found it to be the outlier whose
//!   deployment does not follow income (Fig. 9b);
//! * **spatial smoothing** — both the coverage and fiber scores are
//!   neighbour-averaged, so deployments form contiguous patches and the
//!   measured Moran's I lands in the paper's 0.3–0.5 band (Table 3).

use crate::isp::{Isp, Technology};
use bbsim_census::{city_seed, CityProfile, IncomeField};
use bbsim_geo::CityGrid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The technology an ISP fields in one block group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechAtBlockGroup {
    /// The ISP does not serve this block group at all.
    NotServed,
    Dsl,
    Fiber,
    Cable,
}

/// A smoothed uniform-noise field on the city grid: iid draws averaged with
/// neighbours for `rounds` rounds, yielding spatially correlated values.
pub(crate) fn smoothed_noise(grid: &CityGrid, rounds: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut field: Vec<f64> = (0..grid.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    for _ in 0..rounds {
        let prev = field.clone();
        for i in 0..grid.len() {
            let ns = grid.rook_neighbors(i);
            if ns.is_empty() {
                continue;
            }
            let nb: f64 = ns.iter().map(|&j| prev[j]).sum::<f64>() / ns.len() as f64;
            field[i] = 0.45 * prev[i] + 0.55 * nb;
        }
    }
    field
}

/// Converts raw values to percentile ranks in `[0, 1]`.
pub(crate) fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    // lint:allow(T2): model scores are finite by construction, so partial_cmp is total
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN"));
    let mut out = vec![0.0; n];
    for (rank, &i) in order.iter().enumerate() {
        out[i] = if n > 1 {
            rank as f64 / (n - 1) as f64
        } else {
            0.5
        };
    }
    out
}

/// One ISP's deployment over a city's block groups.
#[derive(Debug, Clone)]
pub struct Deployment {
    isp: Isp,
    tech: Vec<TechAtBlockGroup>,
}

/// How strongly each DSL/fiber ISP's fiber deployment follows income.
fn income_weight(isp: Isp) -> f64 {
    match isp {
        // Calibrated so the Fig-9b high-minus-low fiber gap lands near the
        // paper's ~15-20 percentage points, not at a caricature.
        Isp::Att => 0.30,
        Isp::Verizon => 0.32,
        Isp::CenturyLink => 0.28,
        // Frontier is the paper's outlier: fiber does not track income.
        Isp::Frontier => 0.02,
        _ => 0.0,
    }
}

impl Deployment {
    /// Generates the deployment of `isp` in `city`. Deterministic in the
    /// city seed and the ISP identity.
    pub fn generate(isp: Isp, city: &CityProfile, grid: &CityGrid, income: &IncomeField) -> Self {
        Self::generate_at(isp, city, grid, income, 0)
    }

    /// Generates the deployment as of `epoch` (months since the study's
    /// first snapshot). The paper's §4.3 notes ISPs are actively deploying
    /// fiber; we model that as ~2.5 percentage points of additional fiber
    /// share per month, rolled out down the same desirability ranking —
    /// so deployments only ever grow (fiber is never un-trenched).
    pub fn generate_at(
        isp: Isp,
        city: &CityProfile,
        grid: &CityGrid,
        income: &IncomeField,
        epoch: u32,
    ) -> Self {
        assert_eq!(grid.len(), income.len(), "grid and income field must align");
        let seed = city_seed(city.name) ^ (isp.column() as u64) << 40;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD3D_107);
        let n = grid.len();

        let tech = match isp.technology() {
            Technology::Cable => {
                // Cable serves (almost) the whole city: §2 "cable-based ISPs
                // dominate in terms of coverage".
                let noise = smoothed_noise(grid, 2, &mut rng);
                let coverage = rng.gen_range(0.96..1.0);
                let cut = cutoff(&noise, coverage);
                (0..n)
                    .map(|i| {
                        if noise[i] <= cut {
                            TechAtBlockGroup::Cable
                        } else {
                            TechAtBlockGroup::NotServed
                        }
                    })
                    .collect()
            }
            Technology::DslFiber => {
                // Coverage: a core-biased, smoothed subset of block groups.
                let noise_cov = smoothed_noise(grid, 2, &mut rng);
                let radial: Vec<f64> = (0..n).map(|i| 1.0 - grid.radial_position(i)).collect();
                let cov_score: Vec<f64> = (0..n)
                    .map(|i| 0.5 * radial[i] + 0.5 * noise_cov[i])
                    .collect();
                let coverage = rng.gen_range(0.70..0.92);
                let cov_cut = cutoff_top(&cov_score, coverage);

                // Fiber: income-rank blended with smoothed noise, taken from
                // the top of the served set.
                let alpha = income_weight(isp);
                let inc_rank = ranks(income.incomes_k());
                let noise_fib = smoothed_noise(grid, 2, &mut rng);
                let noise_rank = ranks(&noise_fib);
                let fib_score: Vec<f64> = (0..n)
                    .map(|i| alpha * inc_rank[i] + (1.0 - alpha) * noise_rank[i])
                    .collect();
                let fiber_share = (rng.gen_range(0.28..0.62) + epoch as f64 * 0.025).min(0.85);

                let served: Vec<bool> = (0..n).map(|i| cov_score[i] >= cov_cut).collect();
                let served_scores: Vec<f64> = (0..n)
                    .filter(|&i| served[i])
                    .map(|i| fib_score[i])
                    .collect();
                let fib_cut = cutoff_top(&served_scores, fiber_share);

                (0..n)
                    .map(|i| {
                        if !served[i] {
                            TechAtBlockGroup::NotServed
                        } else if fib_score[i] >= fib_cut {
                            TechAtBlockGroup::Fiber
                        } else {
                            TechAtBlockGroup::Dsl
                        }
                    })
                    .collect()
            }
        };

        Self { isp, tech }
    }

    pub fn isp(&self) -> Isp {
        self.isp
    }

    pub fn len(&self) -> usize {
        self.tech.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tech.is_empty()
    }

    /// Technology fielded in block group `bg`.
    pub fn tech(&self, bg: usize) -> TechAtBlockGroup {
        self.tech[bg]
    }

    /// All per-block-group technologies, cell-aligned with the grid.
    pub fn techs(&self) -> &[TechAtBlockGroup] {
        &self.tech
    }

    /// Fraction of the city's block groups the ISP serves at all.
    pub fn coverage(&self) -> f64 {
        let served = self
            .tech
            .iter()
            .filter(|&&t| t != TechAtBlockGroup::NotServed)
            .count();
        served as f64 / self.tech.len() as f64
    }

    /// Fiber block groups as a fraction of served block groups (0 for
    /// cable ISPs).
    pub fn fiber_share(&self) -> f64 {
        let served = self
            .tech
            .iter()
            .filter(|&&t| t != TechAtBlockGroup::NotServed)
            .count();
        if served == 0 {
            return 0.0;
        }
        let fiber = self
            .tech
            .iter()
            .filter(|&&t| t == TechAtBlockGroup::Fiber)
            .count();
        fiber as f64 / served as f64
    }

    /// Boolean fiber mask (true where this ISP fields fiber), used by cable
    /// rivals' pricing.
    pub fn fiber_mask(&self) -> Vec<bool> {
        self.tech
            .iter()
            .map(|&t| t == TechAtBlockGroup::Fiber)
            .collect()
    }
}

/// Value below which `fraction` of the (ascending) values fall.
fn cutoff(values: &[f64], fraction: f64) -> f64 {
    let mut v = values.to_vec();
    // lint:allow(T2): model scores are finite by construction, so partial_cmp is total
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = ((v.len() as f64 * fraction).ceil() as usize)
        .min(v.len())
        .max(1)
        - 1;
    v[idx]
}

/// Value above which `fraction` of the values lie (threshold for taking the
/// top `fraction`).
fn cutoff_top(values: &[f64], fraction: f64) -> f64 {
    if values.is_empty() {
        return f64::MAX;
    }
    let mut v = values.to_vec();
    // lint:allow(T2): model scores are finite by construction, so partial_cmp is total
    v.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    let idx = ((v.len() as f64 * fraction).ceil() as usize)
        .min(v.len())
        .max(1)
        - 1;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;

    fn world(isp: Isp, city_name: &str) -> (Deployment, CityGrid, IncomeField) {
        let city = city_by_name(city_name).unwrap();
        let grid = city.grid();
        let income = IncomeField::generate(&grid, city.median_income_k, city_seed(city.name));
        let dep = Deployment::generate(isp, city, &grid, &income);
        (dep, grid, income)
    }

    #[test]
    fn cable_serves_nearly_everything() {
        let (dep, ..) = world(Isp::Cox, "New Orleans");
        assert!(dep.coverage() > 0.95, "coverage {}", dep.coverage());
        assert_eq!(dep.fiber_share(), 0.0);
    }

    #[test]
    fn dsl_fiber_isp_has_partial_coverage_and_mixed_tech() {
        let (dep, ..) = world(Isp::Att, "New Orleans");
        let cov = dep.coverage();
        assert!((0.6..0.95).contains(&cov), "coverage {cov}");
        let share = dep.fiber_share();
        assert!((0.2..0.7).contains(&share), "fiber share {share}");
    }

    #[test]
    fn cable_beats_dsl_fiber_coverage_in_every_shared_city() {
        // §5.3: "we do not find a case where the DSL/fiber-based providers
        // offer better coverage ... than the cable-based providers."
        for city in bbsim_census::ALL_CITIES {
            let isps: Vec<Isp> = city
                .major_isps
                .iter()
                .map(|&n| Isp::from_column(n).unwrap())
                .collect();
            let cable = isps.iter().copied().find(|i| i.is_cable());
            let dslf = isps.iter().copied().find(|i| !i.is_cable());
            if let (Some(c), Some(d)) = (cable, dslf) {
                let grid = city.grid();
                let income =
                    IncomeField::generate(&grid, city.median_income_k, city_seed(city.name));
                let dc = Deployment::generate(c, city, &grid, &income);
                let dd = Deployment::generate(d, city, &grid, &income);
                assert!(
                    dc.coverage() > dd.coverage(),
                    "{}: cable {} vs dsl/fiber {}",
                    city.name,
                    dc.coverage(),
                    dd.coverage()
                );
            }
        }
    }

    #[test]
    fn fiber_follows_income_for_att() {
        let (dep, _, income) = world(Isp::Att, "New Orleans");
        let mut fiber_income = Vec::new();
        let mut dsl_income = Vec::new();
        for i in 0..dep.len() {
            match dep.tech(i) {
                TechAtBlockGroup::Fiber => fiber_income.push(income.income_k(i)),
                TechAtBlockGroup::Dsl => dsl_income.push(income.income_k(i)),
                _ => {}
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // The calibrated income weight produces a moderate but systematic
        // premium (the paper's gap is ~16 percentage points, not a cliff).
        assert!(
            mean(&fiber_income) > mean(&dsl_income) * 1.03,
            "fiber {} vs dsl {}",
            mean(&fiber_income),
            mean(&dsl_income)
        );
    }

    #[test]
    fn frontier_fiber_does_not_follow_income() {
        // Fig 9b: Frontier is the outlier. Its fiber/DSL income gap should
        // be small relative to AT&T's.
        let gap = |isp: Isp, city: &str| {
            let (dep, _, income) = world(isp, city);
            let mut fiber = Vec::new();
            let mut dsl = Vec::new();
            for i in 0..dep.len() {
                match dep.tech(i) {
                    TechAtBlockGroup::Fiber => fiber.push(income.income_k(i)),
                    TechAtBlockGroup::Dsl => dsl.push(income.income_k(i)),
                    _ => {}
                }
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            mean(&fiber) - mean(&dsl)
        };
        // Average over each ISP's cities so single-city noise cannot flip
        // the comparison.
        let frontier_gap = (gap(Isp::Frontier, "Tampa")
            + gap(Isp::Frontier, "Durham")
            + gap(Isp::Frontier, "Fort Wayne")
            + gap(Isp::Frontier, "Santa Barbara"))
            / 4.0;
        let att_gap = (gap(Isp::Att, "New Orleans")
            + gap(Isp::Att, "Chicago")
            + gap(Isp::Att, "Austin")
            + gap(Isp::Att, "Wichita"))
            / 4.0;
        assert!(
            frontier_gap.abs() < att_gap,
            "frontier {frontier_gap} vs att {att_gap}"
        );
    }

    #[test]
    fn deployment_is_spatially_clustered() {
        use bbsim_geo::{Adjacency, Contiguity, SpatialWeights};
        let (dep, grid, _) = world(Isp::Att, "Chicago");
        // Encode tech as a numeric field: fiber 2, dsl 1, none 0.
        let values: Vec<f64> = dep
            .techs()
            .iter()
            .map(|t| match t {
                TechAtBlockGroup::Fiber => 2.0,
                TechAtBlockGroup::Dsl => 1.0,
                _ => 0.0,
            })
            .collect();
        let w = SpatialWeights::row_standardized(&Adjacency::from_grid(&grid, Contiguity::Rook));
        let r = bbsim_stats::morans_i(&values, w.rows()).unwrap();
        assert!(r.i > 0.25, "Moran's I = {}", r.i);
    }

    #[test]
    fn deployment_is_deterministic() {
        let (a, ..) = world(Isp::Att, "New Orleans");
        let (b, ..) = world(Isp::Att, "New Orleans");
        assert_eq!(a.techs(), b.techs());
    }

    #[test]
    fn fiber_share_varies_across_cities() {
        // Inter-city variation (Fig 5): shares must not collapse to one
        // value.
        let shares: Vec<f64> = [
            "New Orleans",
            "Wichita",
            "Oklahoma City",
            "Chicago",
            "Austin",
        ]
        .iter()
        .map(|c| world(Isp::Att, c).0.fiber_share())
        .collect();
        let min = shares.iter().cloned().fold(f64::MAX, f64::min);
        let max = shares.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.08, "shares {shares:?}");
    }

    #[test]
    fn ranks_are_uniform() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(ranks(&values), vec![1.0, 0.0, 0.5, 0.25, 0.75]);
    }

    #[test]
    fn cutoff_top_selects_requested_fraction() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cut = cutoff_top(&values, 0.3);
        let kept = values.iter().filter(|&&v| v >= cut).count();
        assert_eq!(kept, 30);
    }
}
