//! ISP self-reported availability data (FCC Form 477 style).
//!
//! The paper's background and recommendations lean on a known defect of
//! regulator-collected availability data: ISPs self-report a whole census
//! block as served if *any* location in it is serviceable, at the *maximum
//! advertised* speed tier — systematically overstating both coverage and
//! speed (Major et al. IMC '20; the paper's recommendation 2 calls for
//! third-party audits). This module generates each ISP's self-report from
//! the same hidden world the BATs serve, so the audit experiment can
//! measure the overstatement exactly.

use crate::isp::Isp;
use crate::plans::{catalog, Tech};
use crate::world::CityWorld;
use bbsim_geo::BlockGroupId;

/// One self-reported row: what the ISP files for one block group.
#[derive(Debug, Clone, PartialEq)]
pub struct Form477Row {
    pub isp: Isp,
    pub block_group: BlockGroupId,
    pub bg_index: usize,
    /// Self-reported maximum advertised download speed (Mbps).
    pub max_download_mbps: f64,
    /// Self-reported maximum advertised upload speed (Mbps).
    pub max_upload_mbps: f64,
    /// Reported technology code (fiber beats DSL when any address has it).
    pub technology: Tech,
}

/// An ISP's complete self-report for one city.
#[derive(Debug, Clone)]
pub struct Form477Report {
    pub isp: Isp,
    pub city: String,
    pub rows: Vec<Form477Row>,
}

impl Form477Report {
    /// Files the report the way ISPs actually file: a block group is
    /// claimed served if *any* address in it can get service, and the
    /// speed claimed is the ISP's maximum advertised tier there — even if
    /// most addresses only qualify for far less.
    pub fn file(world: &CityWorld, isp: Isp) -> Self {
        let grid = world.grid();
        let db = world.addresses();
        let mut rows = Vec::new();
        for bg in 0..grid.len() {
            let mut best_down: f64 = 0.0;
            let mut best_up: f64 = 0.0;
            let mut any_served = false;
            let mut any_fiber = false;
            for &i in db.in_block_group(bg) {
                let offered = world.plans_at(isp, &db.records()[i]);
                if offered.plans.is_empty() {
                    continue;
                }
                any_served = true;
                for p in &offered.plans {
                    best_down = best_down.max(p.download_mbps);
                    best_up = best_up.max(p.upload_mbps);
                    any_fiber |= p.tech == Tech::Fiber;
                }
            }
            if !any_served {
                continue;
            }
            // The filing inflates to the ISP's top advertised tier for the
            // reported technology, not the best actually-available plan.
            let tech = if any_fiber {
                Tech::Fiber
            } else if isp.is_cable() {
                Tech::Cable
            } else {
                Tech::Dsl
            };
            let advertised_max = catalog(isp)
                .iter()
                .filter(|p| p.tech == tech)
                .map(|p| p.download_mbps)
                .fold(best_down, f64::max);
            rows.push(Form477Row {
                isp,
                block_group: grid.id(bg),
                bg_index: bg,
                max_download_mbps: advertised_max,
                max_upload_mbps: best_up,
                technology: tech,
            });
        }
        Form477Report {
            isp,
            city: world.city().name.to_string(),
            rows,
        }
    }

    /// Fraction of the city's block groups the filing claims as served.
    pub fn claimed_coverage(&self, total_block_groups: usize) -> f64 {
        self.rows.len() as f64 / total_block_groups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_census::city_by_name;

    fn world() -> CityWorld {
        CityWorld::build(city_by_name("Billings").expect("study city"))
    }

    #[test]
    fn filing_covers_every_served_block_group() {
        let w = world();
        let report = Form477Report::file(&w, Isp::Spectrum);
        // Cable serves ~the whole city.
        assert!(report.claimed_coverage(w.grid().len()) > 0.9);
    }

    #[test]
    fn claims_inflate_to_the_top_advertised_tier() {
        let w = world();
        let report = Form477Report::file(&w, Isp::CenturyLink);
        let top_fiber = catalog(Isp::CenturyLink)
            .iter()
            .filter(|p| p.tech == Tech::Fiber)
            .map(|p| p.download_mbps)
            .fold(f64::MIN, f64::max);
        let fiber_rows: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.technology == Tech::Fiber)
            .collect();
        assert!(!fiber_rows.is_empty());
        for r in fiber_rows {
            assert_eq!(r.max_download_mbps, top_fiber, "bg {}", r.bg_index);
        }
    }

    #[test]
    fn dsl_only_groups_report_dsl_technology() {
        let w = world();
        let report = Form477Report::file(&w, Isp::CenturyLink);
        assert!(report.rows.iter().any(|r| r.technology == Tech::Dsl));
        assert!(report.rows.iter().all(|r| r.technology != Tech::Cable));
    }

    #[test]
    fn unserved_block_groups_are_absent() {
        let w = world();
        let report = Form477Report::file(&w, Isp::CenturyLink);
        let dep = w.deployment(Isp::CenturyLink).expect("active ISP");
        for r in &report.rows {
            assert_ne!(
                dep.tech(r.bg_index),
                crate::deployment::TechAtBlockGroup::NotServed
            );
        }
    }

    #[test]
    fn filings_are_deterministic() {
        let a = Form477Report::file(&world(), Isp::Spectrum);
        let b = Form477Report::file(&world(), Isp::Spectrum);
        assert_eq!(a.rows, b.rows);
    }
}
