//! `bqt::shard` — multi-core campaigns with byte-identical replay.
//!
//! A campaign is already keyed by city×ISP: the world model, the IP pool's
//! derived assignment and the BAT state machines are all functions of
//! `(seed, endpoint, address, time)`. This module exploits that to split
//! one campaign into a fixed set of **shards** — each with its own virtual
//! clock (every shard's event loop starts at `SimTime::ZERO`), its own
//! hermetic RNG stream (the shard seed), its own transport/IP-pool/journal
//! environment, and its own telemetry `seq` namespace — and execute those
//! shards on real OS threads.
//!
//! ## The merge invariant
//!
//! The shard *partition* is part of the campaign's identity and never
//! depends on the thread count: `threads` only says how many OS threads
//! pull whole shards off a work queue. Because a shard shares no mutable
//! state with its siblings, its event stream is a pure function of
//! `(spec, environment)`; and because the merged stream orders events by
//! `(at, seq)` through the same [`WatermarkHeap`] the monitor uses — with
//! `seq` namespaced as `shard_id << SHARD_SEQ_BITS | counter` — the merged
//! campaign output is **byte-identical for every thread count**. The
//! differential suite in `tests/shard.rs` enforces exactly that for
//! `threads ∈ {1, 2, 4, 8}`.
//!
//! ## Crash + resume
//!
//! Every shard journals to its own segment (the caller's
//! [`ShardEnv::journal`]); a `crash_at` campaign crashes each shard at the
//! same instant *of its own clock*, which models one global virtual crash
//! time. Resuming — with any thread count — replays each segment
//! independently and re-merges, so the recovered output is byte-identical
//! to an uninterrupted run's.

use crate::campaign::CampaignOutcome;
use crate::client::BqtConfig;
use crate::driver::QueryJob;
use crate::journal::{Journal, JournalError};
use crate::monitor::{CampaignSection, MonitorPolicy, WatermarkHeap};
use crate::orchestrator::{Orchestrator, OrchestratorReport, ResumeStats};
use crate::telemetry::{Event, Recorder};
use bbsim_net::{mix64, IpPool, SimTime, Transport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Domain separator for derived per-shard seeds.
const SHARD_SALT: u64 = 0x5_4A2D;

/// Bits of the `seq` word reserved for the per-shard counter; the shard id
/// occupies the bits above. Namespacing (rather than a shared counter)
/// makes cross-shard `seq` interleaving structurally impossible — the
/// latent nondeterminism a shared atomic counter would reintroduce under
/// concurrency.
pub const SHARD_SEQ_BITS: u32 = 40;

/// The `seq` for `counter`-th event of shard `shard`.
pub fn shard_seq(shard: u32, counter: u64) -> u64 {
    debug_assert!(counter < 1 << SHARD_SEQ_BITS, "shard emitted 2^40 events");
    ((shard as u64) << SHARD_SEQ_BITS) | counter
}

/// The shard id a namespaced `seq` belongs to.
pub fn seq_shard(seq: u64) -> u32 {
    (seq >> SHARD_SEQ_BITS) as u32
}

/// The per-shard counter inside a namespaced `seq`.
pub fn seq_counter(seq: u64) -> u64 {
    seq & ((1 << SHARD_SEQ_BITS) - 1)
}

/// One shard of a campaign: a label, a seed, and the jobs it owns.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Dense shard index (`0..plan.len()`), the high bits of every `seq`
    /// this shard emits and the tie-break of the merge order.
    pub id: u32,
    /// Human-readable shard name (e.g. the ISP slug); labels the shard's
    /// health section and journal segment.
    pub label: String,
    /// The shard's own seed — the orchestrator template runs with this
    /// seed, so every shard draws from a disjoint hermetic RNG stream.
    pub seed: u64,
    /// Per-shard workflow configuration; `None` inherits the campaign's.
    pub config: Option<BqtConfig>,
    /// The jobs this shard executes, in order.
    pub jobs: Vec<QueryJob>,
}

/// A fixed, thread-count-independent partition of a campaign's jobs.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    pub shards: Vec<ShardSpec>,
}

impl ShardPlan {
    /// A plan from explicit shards. Ids are reassigned to the dense
    /// `0..n` order the merge relies on.
    pub fn new(mut shards: Vec<ShardSpec>) -> Self {
        for (i, s) in shards.iter_mut().enumerate() {
            s.id = i as u32;
        }
        Self { shards }
    }

    /// Partitions by endpoint (city×ISP), shards ordered by first
    /// appearance in `jobs` — the natural sharding: endpoints share no
    /// BAT state, so each shard owns a whole simulated server.
    pub fn by_endpoint(seed: u64, jobs: &[QueryJob]) -> Self {
        let mut groups: Vec<(String, Vec<QueryJob>)> = Vec::new();
        for job in jobs {
            match groups.iter_mut().find(|(ep, _)| *ep == job.endpoint) {
                Some((_, group)) => group.push(job.clone()),
                None => groups.push((job.endpoint.clone(), vec![job.clone()])),
            }
        }
        Self::new(
            groups
                .into_iter()
                .enumerate()
                .map(|(i, (endpoint, jobs))| ShardSpec {
                    id: i as u32,
                    label: endpoint,
                    seed: mix64(seed ^ SHARD_SALT, &[i as u64]),
                    config: None,
                    jobs,
                })
                .collect(),
        )
    }

    /// Stripes jobs across `n_shards` round-robin by position — for
    /// sharding a single-endpoint campaign. The stripe assignment depends
    /// only on the job index, never on execution order.
    pub fn round_robin(seed: u64, jobs: &[QueryJob], n_shards: usize) -> Self {
        let n = n_shards.clamp(1, jobs.len().max(1));
        let mut groups: Vec<Vec<QueryJob>> = vec![Vec::new(); n];
        for (i, job) in jobs.iter().enumerate() {
            groups[i % n].push(job.clone());
        }
        Self::new(
            groups
                .into_iter()
                .enumerate()
                .map(|(i, jobs)| ShardSpec {
                    id: i as u32,
                    label: format!("shard-{i:02}"),
                    seed: mix64(seed ^ SHARD_SALT, &[i as u64]),
                    config: None,
                    jobs,
                })
                .collect(),
        )
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// The private world one shard runs in. Built by the caller's environment
/// factory *on the worker thread*, so nothing is shared across shards:
/// per-shard transports are draw-for-draw equivalent to a shared hermetic
/// one (draws key on `(seed, endpoint, ip, time)`, not call order), and
/// per-shard pools assign IPs by `(seed, tag, attempt)` key.
pub struct ShardEnv {
    pub transport: Transport,
    pub pool: IpPool,
    /// The shard's journal segment, if the campaign is crash-recoverable.
    pub journal: Option<Journal>,
}

/// One event with its shard-namespaced merge sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqEvent {
    pub seq: u64,
    pub event: Event,
}

/// A recorder that collects a shard's stream, assigning each event its
/// namespaced `seq` in emission order.
pub struct ShardRecorder {
    shard: u32,
    next: u64,
    events: Vec<SeqEvent>,
}

impl ShardRecorder {
    pub fn new(shard: u32) -> Self {
        Self {
            shard,
            next: 0,
            events: Vec::new(),
        }
    }

    pub fn into_events(self) -> Vec<SeqEvent> {
        self.events
    }
}

impl Recorder for ShardRecorder {
    fn record(&mut self, event: &Event) {
        let seq = shard_seq(self.shard, self.next);
        self.next += 1;
        self.events.push(SeqEvent {
            seq,
            event: event.clone(),
        });
    }
}

/// What one shard produced.
pub struct ShardRun {
    pub id: u32,
    pub label: String,
    /// The shard's completed report; `None` when the simulated crash fired
    /// first (the shard's journal segment holds what survived).
    pub report: Option<Box<OrchestratorReport>>,
    /// The shard's full event stream with namespaced `seq`s, in emission
    /// order.
    pub events: Vec<SeqEvent>,
    /// The shard's environment, handed back for inspection (journal bytes,
    /// transport request counts).
    pub env: ShardEnv,
}

impl ShardRun {
    pub fn crashed(&self) -> bool {
        self.report.is_none()
    }
}

/// A sharded campaign's merged result.
pub struct ShardedOutcome {
    /// Per-shard results, in shard-id order.
    pub shards: Vec<ShardRun>,
    /// The merged campaign stream: every shard's events in `(at, seq)`
    /// order — the canonical order `events.jsonl` serializes.
    pub events: Vec<Event>,
}

impl ShardedOutcome {
    /// True when any shard hit the simulated crash.
    pub fn crashed(&self) -> bool {
        self.shards.iter().any(ShardRun::crashed)
    }

    /// `(label, report)` for every completed shard, in shard order.
    pub fn reports(&self) -> impl Iterator<Item = (&str, &OrchestratorReport)> {
        self.shards
            .iter()
            .filter_map(|s| s.report.as_deref().map(|r| (s.label.as_str(), r)))
    }

    /// Journal bookkeeping summed over shards.
    pub fn resume(&self) -> ResumeStats {
        let mut sum = ResumeStats::default();
        for (_, report) in self.reports() {
            sum.replayed_attempts += report.resume().replayed_attempts;
            sum.live_attempts += report.resume().live_attempts;
        }
        sum
    }

    /// Health sections for monitored shards, in shard order — ready for
    /// [`render_prometheus`](crate::monitor::render_prometheus) /
    /// [`render_folded`](crate::monitor::render_folded).
    pub fn health_sections(&self) -> Vec<CampaignSection<'_>> {
        self.shards
            .iter()
            .filter_map(|s| {
                s.report
                    .as_deref()
                    .and_then(|r| r.health_section(s.label.as_str()))
            })
            .collect()
    }
}

/// Merges shard streams into the canonical `(at, seq)` order through the
/// watermark heap the monitor uses.
pub fn merge_events(shards: &[ShardRun]) -> Vec<Event> {
    merge_seq_streams(shards.iter().map(|s| s.events.as_slice()))
}

/// Merges any set of `seq`-stamped streams into `(at, seq)` order. The
/// result is a function of the event *set* alone: any partition of the
/// same events into streams merges identically (the property
/// `tests/properties.rs` fuzzes).
pub fn merge_seq_streams<'a>(streams: impl IntoIterator<Item = &'a [SeqEvent]>) -> Vec<Event> {
    let mut heap: WatermarkHeap<Event> = WatermarkHeap::new();
    let mut n = 0usize;
    for stream in streams {
        for se in stream {
            heap.push(se.event.at.as_millis(), se.seq, se.event.clone());
            n += 1;
        }
    }
    // The streams are complete: flush the watermark to the end of time.
    heap.advance(u64::MAX);
    let mut out = Vec::with_capacity(n);
    while let Some((_, _, event)) = heap.pop_ready() {
        out.push(event);
    }
    out
}

/// The clonable slice of a [`Campaign`](crate::Campaign) a shard runs
/// under: everything but the per-run borrows (journal, recorders).
pub(crate) struct ShardTemplate<'t> {
    pub orch: &'t Orchestrator,
    pub config: &'t BqtConfig,
    pub monitor: Option<&'t MonitorPolicy>,
    pub crash_at: Option<SimTime>,
}

/// Runs every shard of `plan` on up to `threads` OS threads.
///
/// Threads pull whole shards off a deterministic work queue; results land
/// in per-shard slots, so the returned order (and everything derived from
/// it) is shard order regardless of scheduling. The first journal error
/// from any shard surfaces as the run's error.
pub(crate) fn execute(
    template: &ShardTemplate<'_>,
    plan: &ShardPlan,
    threads: usize,
    make_env: &(dyn Fn(&ShardSpec) -> Result<ShardEnv, JournalError> + Sync),
) -> Result<Vec<ShardRun>, JournalError> {
    let threads = threads.clamp(1, plan.shards.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<ShardRun, JournalError>>>> =
        plan.shards.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = plan.shards.get(i) else {
                    break;
                };
                let result = run_one(template, spec, make_env);
                // A sibling panic can poison the slot; the payload is
                // still ours to write.
                let mut slot = match slots[i].lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                *slot = Some(result);
            });
        }
    });

    let mut runs = Vec::with_capacity(plan.shards.len());
    for slot in slots {
        let inner = match slot.into_inner() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Scoped threads joined above, so every slot is filled; an empty
        // one means a worker panicked mid-shard, which `scope` re-raises
        // before we get here.
        let Some(result) = inner else {
            // lint:allow(T2): scope() re-raises worker panics before this line can run
            unreachable!("scoped worker left a shard slot empty without panicking")
        };
        runs.push(result?);
    }
    Ok(runs)
}

/// Runs one shard to completion (or to the simulated crash) inside its
/// own environment.
fn run_one(
    template: &ShardTemplate<'_>,
    spec: &ShardSpec,
    make_env: &(dyn Fn(&ShardSpec) -> Result<ShardEnv, JournalError> + Sync),
) -> Result<ShardRun, JournalError> {
    let mut env = make_env(spec)?;
    let mut recorder = ShardRecorder::new(spec.id);
    let mut orch = template.orch.clone();
    orch.seed = spec.seed;
    let mut campaign =
        crate::Campaign::from_orchestrator(orch).config(spec.config.unwrap_or(*template.config));
    if let Some(policy) = template.monitor {
        campaign = campaign.monitor(policy.clone());
    }
    if let Some(at) = template.crash_at {
        campaign = campaign.crash_at(at);
    }
    campaign = campaign.recorder(&mut recorder);

    let ShardEnv {
        transport,
        pool,
        journal,
    } = &mut env;
    let outcome = match journal.as_mut() {
        Some(j) => campaign.journal(j).run(transport, &spec.jobs, pool)?,
        None => campaign.run(transport, &spec.jobs, pool)?,
    };
    let report = match outcome {
        CampaignOutcome::Completed(report) => Some(report),
        CampaignOutcome::Crashed => None,
    };
    Ok(ShardRun {
        id: spec.id,
        label: spec.label.clone(),
        report,
        events: recorder.into_events(),
        env,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::EventKind;

    fn ev(at_ms: u64, worker: u32) -> Event {
        Event {
            at: SimTime::from_millis(at_ms),
            kind: EventKind::WorkerBegin { worker },
        }
    }

    #[test]
    fn seq_namespace_roundtrips() {
        let seq = shard_seq(7, 123_456);
        assert_eq!(seq_shard(seq), 7);
        assert_eq!(seq_counter(seq), 123_456);
        assert!(shard_seq(1, 0) > shard_seq(0, u32::MAX as u64));
    }

    #[test]
    fn by_endpoint_partitions_in_first_appearance_order() {
        let job = |ep: &str, tag: u64| QueryJob {
            endpoint: ep.to_string(),
            dialect: bbsim_bat::Dialect::DataAttr,
            input_line: String::new(),
            tag,
        };
        let jobs = vec![job("b", 1), job("a", 2), job("b", 3)];
        let plan = ShardPlan::by_endpoint(9, &jobs);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.shards[0].label, "b");
        assert_eq!(plan.shards[1].label, "a");
        assert_eq!(plan.shards[0].jobs.len(), 2);
        assert_ne!(plan.shards[0].seed, plan.shards[1].seed);
    }

    #[test]
    fn round_robin_stripes_by_position_only() {
        let job = |tag: u64| QueryJob {
            endpoint: "e".to_string(),
            dialect: bbsim_bat::Dialect::DataAttr,
            input_line: String::new(),
            tag,
        };
        let jobs: Vec<QueryJob> = (0..7).map(job).collect();
        let plan = ShardPlan::round_robin(1, &jobs, 3);
        assert_eq!(plan.len(), 3);
        let tags: Vec<Vec<u64>> = plan
            .shards
            .iter()
            .map(|s| s.jobs.iter().map(|j| j.tag).collect())
            .collect();
        assert_eq!(tags, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
    }

    #[test]
    fn merge_orders_by_at_then_namespaced_seq() {
        let s0 = vec![
            SeqEvent {
                seq: shard_seq(0, 0),
                event: ev(10, 0),
            },
            SeqEvent {
                seq: shard_seq(0, 1),
                event: ev(30, 1),
            },
        ];
        let s1 = vec![
            SeqEvent {
                seq: shard_seq(1, 0),
                event: ev(10, 2),
            },
            SeqEvent {
                seq: shard_seq(1, 1),
                event: ev(20, 3),
            },
        ];
        let merged = merge_seq_streams([s1.as_slice(), s0.as_slice()]);
        let workers: Vec<u32> = merged
            .iter()
            .map(|e| match e.kind {
                EventKind::WorkerBegin { worker } => worker,
                _ => unreachable!("only WorkerBegin events in this test"),
            })
            .collect();
        // 10ms ties break shard 0 before shard 1; stream order is
        // irrelevant to the merge.
        assert_eq!(workers, vec![0, 2, 3, 1]);
    }
}
