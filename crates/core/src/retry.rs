//! Job-level retry machinery: backoff, outcome classification, breakers.
//!
//! The driver ([`crate::driver`]) already retries *within* a query — a 429
//! or a flaky page load gets a couple of in-step attempts. This module is
//! the layer above: when a whole query ends [`QueryOutcome::Failed`] or
//! [`QueryOutcome::Blocked`], the orchestrator can requeue the job with
//! capped exponential backoff, and a per-endpoint circuit breaker stops it
//! from hammering a BAT that is clearly down.
//!
//! Everything here is a pure function of the policy seed and the inputs:
//! backoff delays are derived by hashing `(seed, tag, attempt)`, not by
//! consuming a shared RNG, so a job's retry schedule does not depend on
//! what other jobs did — a property the chaos tests rely on.

use crate::driver::QueryOutcome;
use bbsim_net::{SimDuration, SimTime};
use std::collections::HashMap;

/// Capped exponential backoff with seeded, bounded jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Upper bound on any delay.
    pub cap: SimDuration,
    /// Jitter width as a fraction of the exponential delay, clamped to
    /// `[0, 0.5]` so the schedule stays monotone non-decreasing: with
    /// jitter `j`, step `k` is at most `2^k·(1+j/2)·base` and step `k+1`
    /// at least `2^(k+1)·(1−j/2)·base`, which is larger whenever
    /// `j ≤ 2/3`.
    pub jitter: f64,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl BackoffPolicy {
    /// Defaults matched to the BATs' observed recovery times: first retry
    /// after ~5s, doubling to a 2-minute ceiling, ±12.5% jitter.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            base: SimDuration::from_secs(5),
            cap: SimDuration::from_secs(120),
            jitter: 0.25,
            seed,
        }
    }

    /// The delay to wait before retry number `attempt` (1-based) of the
    /// job tagged `tag`. Pure: same `(seed, tag, attempt)`, same delay.
    pub fn delay(&self, tag: u64, attempt: u32) -> SimDuration {
        assert!(attempt >= 1, "attempt numbering is 1-based");
        let exp_ms = (self.base.as_millis() as f64) * 2f64.powi(attempt as i32 - 1);
        let jitter = self.jitter.clamp(0.0, 0.5);
        // splitmix64-style mix of (seed, tag, attempt) -> unit float.
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag.rotate_left(17))
            .wrapping_add(attempt as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let factor = 1.0 - jitter / 2.0 + jitter * unit;
        let ms = (exp_ms * factor).min(self.cap.as_millis() as f64);
        SimDuration::from_millis(ms.round() as u64)
    }
}

/// Whether a terminal outcome is worth another attempt.
///
/// `Failed` (transport faults, 500s, unrecognized pages) and `Blocked`
/// (rate limiting that may lift) are transient, as is `Stalled` (a hung
/// session the watchdog reclaimed — the next attempt gets a fresh
/// connection). `Plans` and `NoService` are hits, and `Unserviceable` is
/// an authoritative property of the address — retrying any of those would
/// re-ask a question that was already answered.
pub fn is_retryable(outcome: &QueryOutcome) -> bool {
    matches!(
        outcome,
        QueryOutcome::Failed | QueryOutcome::Blocked | QueryOutcome::Stalled
    )
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures on one endpoint that open its circuit.
    pub failure_threshold: u32,
    /// How long an open circuit rejects traffic before allowing one
    /// half-open probe.
    pub cooldown: SimDuration,
}

impl BreakerConfig {
    pub fn paper_default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: SimDuration::from_secs(60),
        }
    }
}

/// The full retry policy the orchestrator runs under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    pub backoff: BackoffPolicy,
    /// Total attempts a job may consume, including the first (≥ 1).
    pub max_attempts: u32,
    pub breaker: BreakerConfig,
}

impl RetryPolicy {
    pub fn paper_default(seed: u64) -> Self {
        Self {
            backoff: BackoffPolicy::paper_default(seed),
            max_attempts: 4,
            breaker: BreakerConfig::paper_default(),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct BreakerState {
    consecutive_failures: u32,
    /// While `Some`, the circuit is open (or half-open once past it).
    open_until: Option<SimTime>,
    /// A half-open probe is in flight; further traffic stays rejected.
    probing: bool,
}

/// Per-endpoint circuit breaker in virtual time.
///
/// Closed → open after `failure_threshold` consecutive failures; open →
/// half-open after `cooldown`, letting exactly one probe through; the
/// probe's outcome either closes the circuit or re-opens it for another
/// cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    states: HashMap<String, BreakerState>,
    trips: u64,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            states: HashMap::new(),
            trips: 0,
        }
    }

    /// Whether a request to `endpoint` may proceed at `now`. A half-open
    /// circuit admits one probe; callers must report that probe's outcome
    /// via [`on_success`](Self::on_success) / [`on_failure`](Self::on_failure).
    pub fn allows(&mut self, endpoint: &str, now: SimTime) -> bool {
        let Some(state) = self.states.get_mut(endpoint) else {
            return true;
        };
        match state.open_until {
            None => true,
            Some(until) if now < until => false,
            Some(_) if state.probing => false,
            Some(_) => {
                state.probing = true;
                true
            }
        }
    }

    /// Earliest instant a rejected endpoint will admit a probe, if its
    /// circuit is currently open.
    pub fn reopen_time(&self, endpoint: &str) -> Option<SimTime> {
        self.states.get(endpoint).and_then(|s| s.open_until)
    }

    /// Records a successful exchange: closes the circuit.
    pub fn on_success(&mut self, endpoint: &str) {
        if let Some(state) = self.states.get_mut(endpoint) {
            *state = BreakerState::default();
        }
    }

    /// Records a failed exchange. Returns `true` when this failure tripped
    /// the circuit open (including a failed half-open probe re-opening it).
    pub fn on_failure(&mut self, endpoint: &str, now: SimTime) -> bool {
        let state = self.states.entry(endpoint.to_string()).or_default();
        state.consecutive_failures += 1;
        let was_open = state.open_until.is_some();
        let should_open = if was_open {
            // A failed half-open probe re-opens immediately.
            state.probing
        } else {
            state.consecutive_failures >= self.config.failure_threshold
        };
        if should_open {
            state.open_until = Some(now + self.config.cooldown);
            state.probing = false;
            self.trips += 1;
            return true;
        }
        false
    }

    /// How many times any circuit opened (or re-opened).
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_pure_and_monotone() {
        let p = BackoffPolicy::paper_default(42);
        let schedule: Vec<u64> = (1..=8).map(|a| p.delay(9, a).as_millis()).collect();
        assert_eq!(
            schedule,
            (1..=8)
                .map(|a| p.delay(9, a).as_millis())
                .collect::<Vec<_>>()
        );
        for w in schedule.windows(2) {
            assert!(w[0] <= w[1], "schedule not monotone: {schedule:?}");
        }
        assert!(schedule.iter().all(|&d| d <= p.cap.as_millis()));
    }

    #[test]
    fn backoff_differs_across_tags_and_seeds() {
        let p = BackoffPolicy::paper_default(1);
        let q = BackoffPolicy::paper_default(2);
        assert_ne!(p.delay(1, 1), p.delay(2, 1), "tags decorrelate");
        assert_ne!(p.delay(1, 1), q.delay(1, 1), "seeds decorrelate");
    }

    #[test]
    fn classification_retries_failures_not_answers() {
        assert!(is_retryable(&QueryOutcome::Failed));
        assert!(is_retryable(&QueryOutcome::Blocked));
        assert!(is_retryable(&QueryOutcome::Stalled));
        assert!(!is_retryable(&QueryOutcome::NoService));
        assert!(!is_retryable(&QueryOutcome::Unserviceable));
        assert!(!is_retryable(&QueryOutcome::Plans(vec![])));
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(10),
        };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::ZERO;
        assert!(b.allows("e", t0));
        assert!(!b.on_failure("e", t0));
        assert!(!b.on_failure("e", t0));
        assert!(b.on_failure("e", t0), "third failure trips");
        assert_eq!(b.trips(), 1);
        assert!(!b.allows("e", t0 + SimDuration::from_secs(5)), "open");
        let half_open = t0 + SimDuration::from_secs(10);
        assert!(b.allows("e", half_open), "one probe admitted");
        assert!(!b.allows("e", half_open), "second probe rejected");
        // Probe succeeds: circuit closes fully.
        b.on_success("e");
        assert!(b.allows("e", half_open));
        assert!(b.allows("e", half_open));
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(10),
        };
        let mut b = CircuitBreaker::new(cfg);
        b.on_failure("e", SimTime::ZERO);
        b.on_failure("e", SimTime::ZERO);
        assert_eq!(b.trips(), 1);
        let probe_at = SimTime::ZERO + SimDuration::from_secs(10);
        assert!(b.allows("e", probe_at));
        assert!(b.on_failure("e", probe_at), "failed probe re-opens");
        assert_eq!(b.trips(), 2);
        assert!(!b.allows("e", probe_at + SimDuration::from_secs(9)));
        assert_eq!(
            b.reopen_time("e"),
            Some(probe_at + SimDuration::from_secs(10))
        );
    }

    #[test]
    fn breakers_are_per_endpoint() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(10),
        });
        b.on_failure("down", SimTime::ZERO);
        assert!(!b.allows("down", SimTime::ZERO));
        assert!(b.allows("healthy", SimTime::ZERO));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(10),
        });
        b.on_failure("e", SimTime::ZERO);
        b.on_success("e");
        assert!(!b.on_failure("e", SimTime::ZERO), "streak restarted");
        assert_eq!(b.trips(), 0);
    }
}
