//! Hit-rate and query-time bookkeeping (the paper's Fig. 2 metrics).

use crate::driver::{QueryOutcome, QueryRecord};
use bbsim_net::SimDuration;

/// Aggregated outcome counters for one (ISP, city) run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    pub queried: u64,
    pub plans: u64,
    pub no_service: u64,
    pub unserviceable: u64,
    pub blocked: u64,
    pub failed: u64,
    /// Job-level retries the orchestrator scheduled. Retried attempts are
    /// *not* re-recorded: `queried` still counts each address once, so
    /// `hit_rate` keeps the paper's per-address semantics.
    pub retries: u64,
    /// Circuit-breaker trips (opens and re-opens) across endpoints.
    pub breaker_trips: u64,
    /// Jobs that exhausted their attempt budget and were dead-lettered.
    pub dead_lettered: u64,
    /// Attempts that ended with a hung session (recorded once reclaimed).
    /// Watchdog reclaims and shed-controller cuts live in the telemetry
    /// summary (`OrchestratorReport::stalls_reclaimed` / `shed_events`):
    /// they count supervision *events*, not per-address outcomes.
    pub stalled: u64,
    /// Query resolution times of *hit* queries, in seconds.
    durations_s: Vec<f64>,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one query record into the counters.
    pub fn record(&mut self, rec: &QueryRecord) {
        self.queried += 1;
        match &rec.outcome {
            QueryOutcome::Plans(_) => self.plans += 1,
            QueryOutcome::NoService => self.no_service += 1,
            QueryOutcome::Unserviceable => self.unserviceable += 1,
            QueryOutcome::Blocked => self.blocked += 1,
            QueryOutcome::Failed => self.failed += 1,
            QueryOutcome::Stalled => self.stalled += 1,
        }
        if rec.outcome.is_hit() {
            self.durations_s.push(rec.duration.as_secs_f64());
        }
    }

    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.queried += other.queried;
        self.plans += other.plans;
        self.no_service += other.no_service;
        self.unserviceable += other.unserviceable;
        self.blocked += other.blocked;
        self.failed += other.failed;
        self.retries += other.retries;
        self.breaker_trips += other.breaker_trips;
        self.dead_lettered += other.dead_lettered;
        self.stalled += other.stalled;
        self.durations_s.extend_from_slice(&other.durations_s);
    }

    /// The paper's hit rate: fraction of queried addresses with a
    /// successful response (plans or authoritative no-service).
    pub fn hit_rate(&self) -> f64 {
        if self.queried == 0 {
            return 0.0;
        }
        (self.plans + self.no_service) as f64 / self.queried as f64
    }

    /// Query-time sample (seconds) for distribution plots.
    pub fn durations_s(&self) -> &[f64] {
        &self.durations_s
    }

    /// Median query resolution time of hit queries.
    pub fn median_duration(&self) -> Option<SimDuration> {
        if self.durations_s.is_empty() {
            return None;
        }
        let mut v = self.durations_s.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        Some(SimDuration::from_secs_f64(v[v.len() / 2]))
    }

    /// Renders a one-line summary for reports.
    pub fn report(&self) -> HitRateReport {
        HitRateReport {
            queried: self.queried,
            hit_rate: self.hit_rate(),
            median_query_s: self.median_duration().map(|d| d.as_secs_f64()),
        }
    }
}

/// A compact summary row (one per ISP in Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRateReport {
    pub queried: u64,
    pub hit_rate: f64,
    pub median_query_s: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrape::ScrapedPlan;

    fn rec(outcome: QueryOutcome, secs: u64) -> QueryRecord {
        QueryRecord {
            tag: 0,
            outcome,
            duration: SimDuration::from_secs(secs),
            steps: 1,
            saw_unrecognized_page: false,
        }
    }

    fn plan() -> ScrapedPlan {
        ScrapedPlan {
            download_mbps: 100.0,
            upload_mbps: 10.0,
            price_usd: 50.0,
        }
    }

    #[test]
    fn hit_rate_counts_plans_and_no_service() {
        let mut m = Metrics::new();
        m.record(&rec(QueryOutcome::Plans(vec![plan()]), 30));
        m.record(&rec(QueryOutcome::NoService, 25));
        m.record(&rec(QueryOutcome::Unserviceable, 40));
        m.record(&rec(QueryOutcome::Failed, 90));
        assert_eq!(m.queried, 4);
        assert_eq!(m.hit_rate(), 0.5);
    }

    #[test]
    fn durations_only_include_hits() {
        let mut m = Metrics::new();
        m.record(&rec(QueryOutcome::Plans(vec![plan()]), 30));
        m.record(&rec(QueryOutcome::Failed, 500));
        assert_eq!(m.durations_s(), &[30.0]);
        assert_eq!(m.median_duration(), Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn empty_metrics_have_zero_hit_rate_and_no_median() {
        let m = Metrics::new();
        assert_eq!(m.hit_rate(), 0.0);
        assert_eq!(m.median_duration(), None);
        assert_eq!(m.report().median_query_s, None);
    }

    #[test]
    fn merge_adds_counters_and_samples() {
        let mut a = Metrics::new();
        a.record(&rec(QueryOutcome::Plans(vec![plan()]), 10));
        let mut b = Metrics::new();
        b.record(&rec(QueryOutcome::Blocked, 5));
        b.record(&rec(QueryOutcome::NoService, 20));
        a.merge(&b);
        assert_eq!(a.queried, 3);
        assert_eq!(a.blocked, 1);
        assert_eq!(a.durations_s().len(), 2);
        assert!((a.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    fn robustness_sample(
        retries: u64,
        trips: u64,
        dead: u64,
        outcomes: &[QueryOutcome],
    ) -> Metrics {
        let mut m = Metrics::new();
        for (i, o) in outcomes.iter().enumerate() {
            m.record(&rec(o.clone(), 10 + i as u64));
        }
        m.retries = retries;
        m.breaker_trips = trips;
        m.dead_lettered = dead;
        m
    }

    #[test]
    fn merge_carries_the_robustness_counters() {
        let mut a = robustness_sample(3, 1, 0, &[QueryOutcome::Plans(vec![plan()])]);
        let b = robustness_sample(2, 0, 4, &[QueryOutcome::Failed]);
        a.merge(&b);
        assert_eq!(a.retries, 5);
        assert_eq!(a.breaker_trips, 1);
        assert_eq!(a.dead_lettered, 4);
        // Retries do not inflate the per-address denominator.
        assert_eq!(a.queried, 2);
    }

    #[test]
    fn merge_is_associative_and_commutes() {
        let a = robustness_sample(1, 0, 0, &[QueryOutcome::Plans(vec![plan()])]);
        let b = robustness_sample(0, 2, 1, &[QueryOutcome::Blocked, QueryOutcome::NoService]);
        let c = robustness_sample(
            4,
            1,
            2,
            &[QueryOutcome::Failed, QueryOutcome::Unserviceable],
        );

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // Counters commute; the duration *sample* is a multiset, so compare
        // its sorted form.
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.retries, ba.retries);
        assert_eq!(ab.breaker_trips, ba.breaker_trips);
        assert_eq!(ab.dead_lettered, ba.dead_lettered);
        assert_eq!(ab.queried, ba.queried);
        let sorted = |m: &Metrics| {
            let mut v = m.durations_s().to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        assert_eq!(sorted(&ab), sorted(&ba));
    }

    #[test]
    fn empty_is_the_merge_identity() {
        let a = robustness_sample(2, 1, 3, &[QueryOutcome::Plans(vec![plan()])]);
        let mut merged = a.clone();
        merged.merge(&Metrics::new());
        assert_eq!(merged, a);
        let mut other = Metrics::new();
        other.merge(&a);
        assert_eq!(other, a);
    }

    #[test]
    fn stalled_counts_but_is_not_a_hit() {
        let mut m = Metrics::new();
        m.record(&rec(QueryOutcome::Stalled, 0));
        m.record(&rec(QueryOutcome::Plans(vec![plan()]), 10));
        assert_eq!(m.stalled, 1);
        assert_eq!(m.queried, 2);
        assert_eq!(m.hit_rate(), 0.5);
        assert_eq!(m.durations_s().len(), 1, "stall time is not a sample");
    }

    #[test]
    fn merge_carries_the_stall_counter() {
        let mut a = Metrics::new();
        a.record(&rec(QueryOutcome::Stalled, 0));
        let mut b = Metrics::new();
        b.record(&rec(QueryOutcome::Stalled, 0));
        b.record(&rec(QueryOutcome::Stalled, 0));
        a.merge(&b);
        assert_eq!(a.stalled, 3);
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut m = Metrics::new();
        for s in [50, 10, 30, 20, 40] {
            m.record(&rec(QueryOutcome::NoService, s));
        }
        assert_eq!(m.median_duration(), Some(SimDuration::from_secs(30)));
    }
}
