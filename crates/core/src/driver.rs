//! The per-address query workflow: BQT's state machine.
//!
//! One call to [`query_address`] drives a full Fig.-1 interaction for one
//! street address: submit, detect the template, respond, repeat until a
//! terminal page. Timing is accounted in virtual time, including the DOM
//! settle waits, so the caller gets exactly what the paper's Fig. 2b plots:
//! the per-address query resolution time.

use crate::client::{BqtConfig, WaitPolicy};
use crate::scrape::{detect_with, DetectedPage, ScrapedPlan};
use crate::telemetry::{EventKind, EventSink, FaultClass, NullSink};
use bbsim_address::abbrev::extract_zip;
use bbsim_address::matching::best_match;
use bbsim_bat::Dialect;
use bbsim_net::{Request, SimDuration, SimIp, SimTime, Status, Transport, TransportError};
use rand::rngs::StdRng;
use rand::Rng;

/// One unit of scraping work: an (endpoint, address) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryJob {
    /// Transport endpoint of the target BAT (e.g. `"cox/new-orleans"`).
    pub endpoint: String,
    /// Markup dialect of that ISP's pages.
    pub dialect: Dialect,
    /// The listing line to query (the noisy "Zillow" form).
    pub input_line: String,
    /// Caller correlation tag (e.g. the address id).
    pub tag: u64,
}

/// Terminal result of one address query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Plans extracted (a hit).
    Plans(Vec<ScrapedPlan>),
    /// Authoritative "no service here" (also a hit: the BAT answered).
    NoService,
    /// The address could not be resolved (no acceptable suggestion).
    Unserviceable,
    /// The BAT's safeguards blocked the session (HTTP 403).
    Blocked,
    /// Persistent errors exhausted the retry budget.
    Failed,
    /// The session hung indefinitely (a [`bbsim_net::FaultKind::Stall`]);
    /// only the orchestrator's watchdog can reclaim the worker, so the
    /// duration recorded with this outcome is a lower bound on wall time.
    Stalled,
}

impl QueryOutcome {
    /// Whether this outcome counts toward the paper's hit rate ("addresses
    /// we successfully get a response for").
    pub fn is_hit(&self) -> bool {
        matches!(self, QueryOutcome::Plans(_) | QueryOutcome::NoService)
    }
}

/// The record produced for every queried address.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    pub tag: u64,
    pub outcome: QueryOutcome,
    /// Query resolution time (Fig. 2b's metric), in virtual time.
    pub duration: SimDuration,
    /// Workflow steps taken (pages seen).
    pub steps: u32,
    /// A page failed template detection during this query — the signal the
    /// drift monitor watches for front-end redesigns.
    pub saw_unrecognized_page: bool,
}

/// What the driver plans to send next.
enum NextRequest {
    Locate(String),
    SelectChoice(String),
    SelectAction(&'static str),
}

/// Drives the full workflow for one address starting at virtual `start`.
///
/// The RNG covers BQT's own random choices (MDU unit selection); all server
/// randomness lives in the transport.
pub fn query_address(
    transport: &mut Transport,
    config: &BqtConfig,
    job: &QueryJob,
    src: SimIp,
    start: SimTime,
    rng: &mut StdRng,
) -> QueryRecord {
    query_address_traced(transport, config, job, src, start, rng, 1, &mut NullSink)
}

/// [`query_address`], narrating each transport round trip to `sink` as
/// `page_fetch_begin`/`page_fetch_end` spans plus `fault_injected`
/// instants. `attempt` only labels the emitted events (the orchestrator's
/// attempt counter); it does not affect the workflow. Timing is identical
/// to the untraced path — events observe the clock, never advance it.
#[allow(clippy::too_many_arguments)]
pub fn query_address_traced(
    transport: &mut Transport,
    config: &BqtConfig,
    job: &QueryJob,
    src: SimIp,
    start: SimTime,
    rng: &mut StdRng,
    attempt: u32,
    sink: &mut dyn EventSink,
) -> QueryRecord {
    let mut now = start;
    let mut steps = 0u32;
    let mut fetches = 0u32;
    let mut cookie: Option<String> = None;
    let mut next = NextRequest::Locate(job.input_line.clone());
    let mut suggestion_rounds = 0u32;
    let input_zip = extract_zip(&job.input_line);

    let mut saw_unrecognized_page = false;
    macro_rules! finish {
        ($outcome:expr, $now:expr, $steps:expr) => {
            return QueryRecord {
                tag: job.tag,
                outcome: $outcome,
                duration: $now.since(start),
                steps: $steps,
                saw_unrecognized_page,
            }
        };
    }

    while steps < config.max_steps {
        let req = match &next {
            NextRequest::Locate(line) => Request::post("/locate", format!("address={line}")),
            NextRequest::SelectChoice(choice) => {
                let r = Request::post("/select", format!("choice={choice}"));
                match &cookie {
                    Some(c) => r.with_cookie(c.clone()),
                    None => r,
                }
            }
            NextRequest::SelectAction(action) => {
                let r = Request::post("/select", format!("action={action}"));
                match &cookie {
                    Some(c) => r.with_cookie(c.clone()),
                    None => r,
                }
            }
        };

        // Send, with transient-failure and rate-limit retry handling.
        let mut attempts = 0u32;
        let response = loop {
            let fetch = fetches;
            fetches += 1;
            let fetch_start = now;
            sink.emit(
                now,
                EventKind::PageFetchBegin {
                    tag: job.tag,
                    attempt,
                    fetch,
                },
            );
            macro_rules! fetch_end {
                () => {
                    sink.emit(
                        now,
                        EventKind::PageFetchEnd {
                            tag: job.tag,
                            attempt,
                            fetch,
                            duration_ms: now.since(fetch_start).as_millis(),
                        },
                    )
                };
            }
            let (response, elapsed) = match transport.round_trip(&job.endpoint, src, &req, now) {
                Ok(ok) => ok,
                Err(e) if e.is_transient() => {
                    // Injected timeout or connection reset: the wait on the
                    // dead connection is charged, then the step is retried
                    // like any other transient error.
                    now += e.elapsed();
                    let fault = match &e {
                        TransportError::ConnectionReset { .. } => FaultClass::Reset,
                        _ => FaultClass::Timeout,
                    };
                    sink.emit(
                        now,
                        EventKind::FaultInjected {
                            endpoint: job.endpoint.clone(),
                            fault,
                        },
                    );
                    fetch_end!();
                    attempts += 1;
                    if attempts > config.transient_retries {
                        finish!(QueryOutcome::Failed, now, steps);
                    }
                    continue;
                }
                Err(TransportError::Stalled) => {
                    // The connection hung with no timeout: no time can be
                    // charged here — the watchdog decides when to give up.
                    sink.emit(
                        now,
                        EventKind::FaultInjected {
                            endpoint: job.endpoint.clone(),
                            fault: FaultClass::Stall,
                        },
                    );
                    fetch_end!();
                    finish!(QueryOutcome::Stalled, now, steps);
                }
                Err(_) => {
                    fetch_end!();
                    finish!(QueryOutcome::Failed, now, steps);
                }
            };

            // Charge the wait policy for this page load.
            now += charge_wait(config.wait, elapsed);
            fetch_end!();

            match response.status {
                Status::Ok => break response,
                Status::TooManyRequests => {
                    attempts += 1;
                    if attempts > config.transient_retries {
                        finish!(QueryOutcome::Blocked, now, steps);
                    }
                    now += config.rate_limit_backoff;
                }
                Status::Forbidden => finish!(QueryOutcome::Blocked, now, steps),
                _ => {
                    attempts += 1;
                    if attempts > config.transient_retries {
                        finish!(QueryOutcome::Failed, now, steps);
                    }
                }
            }
        };
        steps += 1;
        if let Some(c) = response.set_cookie() {
            cookie = Some(c.to_string());
        }

        match detect_with(config.templates, &response.body, job.dialect) {
            DetectedPage::Plans(plans) => finish!(QueryOutcome::Plans(plans), now, steps),
            DetectedPage::NoService => finish!(QueryOutcome::NoService, now, steps),
            DetectedPage::TechnicalDifficulty => {
                finish!(QueryOutcome::Failed, now, steps)
            }
            DetectedPage::ExistingCustomer => {
                next = NextRequest::SelectAction("new-customer");
            }
            DetectedPage::MultiDwellingUnit(units) => {
                if units.is_empty() {
                    finish!(QueryOutcome::Failed, now, steps);
                }
                // The paper selects a random unit from the refined list.
                let pick = units[rng.gen_range(0..units.len())].clone();
                next = NextRequest::SelectChoice(pick);
            }
            DetectedPage::AddressNotFound(suggestions) => {
                suggestion_rounds += 1;
                if suggestion_rounds > 2 {
                    finish!(QueryOutcome::Unserviceable, now, steps);
                }
                // Offline string matching over the suggestion list, with the
                // zip-code sanity check (§3.3).
                let candidate = best_match(
                    config.measure,
                    &job.input_line,
                    &suggestions,
                    config.match_threshold,
                )
                .map(|(i, _)| suggestions[i].clone())
                .filter(|s| extract_zip(s) == input_zip || input_zip.is_none());
                match candidate {
                    Some(choice) => next = NextRequest::SelectChoice(choice),
                    None => finish!(QueryOutcome::Unserviceable, now, steps),
                }
            }
            DetectedPage::Unrecognized => {
                saw_unrecognized_page = true;
                finish!(QueryOutcome::Failed, now, steps);
            }
        }
    }
    finish!(QueryOutcome::Failed, now, steps)
}

/// Converts a raw page-load duration into the time BQT actually spends on
/// the step under the configured wait policy.
fn charge_wait(wait: WaitPolicy, elapsed: SimDuration) -> SimDuration {
    match wait {
        WaitPolicy::MaxObserved { pause } => {
            // BQT sleeps the full calibrated pause; if the load was even
            // slower, a reload-and-wait cycle is charged on top.
            if elapsed <= pause {
                pause.max(elapsed)
            } else {
                pause + elapsed
            }
        }
        WaitPolicy::Adaptive { poll } => {
            // Poll until ready: round the load time up to the next poll tick.
            let ticks = elapsed.as_millis().div_ceil(poll.as_millis().max(1));
            SimDuration::from_millis(ticks * poll.as_millis().max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_bat::{templates, BatServer};
    use bbsim_census::city_by_name;
    use bbsim_isp::{CityWorld, Isp};
    use bbsim_net::{Endpoint, Exchange, LatencyModel, Response, Service};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn billings_transport() -> (Transport, Arc<CityWorld>) {
        let world = Arc::new(CityWorld::build(city_by_name("Billings").unwrap()));
        let mut t = Transport::new(42);
        for isp in world.isps() {
            let server = BatServer::new(isp, world.clone());
            let net = server.profile().network_latency;
            t.register(
                format!("{}/billings", isp.slug()),
                Endpoint::new(Box::new(server), net),
            );
        }
        (t, world)
    }

    fn job_for(line: &str, isp: Isp) -> QueryJob {
        QueryJob {
            endpoint: format!("{}/billings", isp.slug()),
            dialect: templates::dialect_of(isp),
            input_line: line.to_string(),
            tag: 0,
        }
    }

    fn cfg() -> BqtConfig {
        BqtConfig::paper_default(SimDuration::from_secs(60))
    }

    fn src() -> SimIp {
        SimIp(u32::from_be_bytes([100, 64, 9, 9]))
    }

    #[test]
    fn end_to_end_queries_mostly_hit() {
        let (mut t, world) = billings_transport();
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        let mut total = 0;
        let mut now = SimTime::ZERO;
        for r in world.addresses().records().iter().take(120) {
            let job = job_for(&r.listing_line, Isp::CenturyLink);
            let rec = query_address(&mut t, &cfg(), &job, src(), now, &mut rng);
            now = now + rec.duration + SimDuration::from_secs(10);
            total += 1;
            if rec.outcome.is_hit() {
                hits += 1;
            }
            assert!(rec.duration > SimDuration::ZERO);
            assert!(rec.steps >= 1);
        }
        let rate = hits as f64 / total as f64;
        assert!(rate > 0.7, "hit rate {rate}");
    }

    #[test]
    fn scraped_plans_match_ground_truth_when_hit() {
        let (mut t, world) = billings_transport();
        let mut rng = StdRng::seed_from_u64(2);
        let mut now = SimTime::ZERO;
        let mut verified = 0;
        for r in world.addresses().records().iter().take(80) {
            let job = job_for(&r.listing_line, Isp::CenturyLink);
            let rec = query_address(&mut t, &cfg(), &job, src(), now, &mut rng);
            now = now + rec.duration + SimDuration::from_secs(10);
            if let QueryOutcome::Plans(scraped) = rec.outcome {
                let truth = world.plans_at(Isp::CenturyLink, r);
                assert_eq!(scraped.len(), truth.plans.len(), "addr {}", r.id);
                for (s, p) in scraped.iter().zip(&truth.plans) {
                    assert_eq!(s.download_mbps, p.download_mbps);
                    assert_eq!(s.price_usd, p.price_usd);
                }
                verified += 1;
            }
        }
        assert!(verified > 30, "only {verified} verified");
    }

    #[test]
    fn mdu_listing_without_unit_still_resolves() {
        let (mut t, world) = billings_transport();
        let mut rng = StdRng::seed_from_u64(3);
        let mut now = SimTime::ZERO;
        let mdus: Vec<_> = world
            .addresses()
            .records()
            .iter()
            .filter(|r| r.is_mdu)
            .take(30)
            .collect();
        assert!(!mdus.is_empty());
        let mut hits = 0;
        for r in &mdus {
            // Query the canonical building line (no unit) to force the MDU flow.
            let job = job_for(&r.canonical.canonical_line(), Isp::CenturyLink);
            let rec = query_address(&mut t, &cfg(), &job, src(), now, &mut rng);
            now = now + rec.duration + SimDuration::from_secs(10);
            if rec.outcome.is_hit() {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / mdus.len() as f64 > 0.6,
            "{hits}/{}",
            mdus.len()
        );
    }

    #[test]
    fn unknown_endpoint_fails_cleanly() {
        let (mut t, _) = billings_transport();
        let mut rng = StdRng::seed_from_u64(4);
        let job = QueryJob {
            endpoint: "nonexistent".to_string(),
            dialect: Dialect::DataAttr,
            input_line: "1 Main St".to_string(),
            tag: 9,
        };
        let rec = query_address(&mut t, &cfg(), &job, src(), SimTime::ZERO, &mut rng);
        assert_eq!(rec.outcome, QueryOutcome::Failed);
        assert_eq!(rec.tag, 9);
    }

    #[test]
    fn garbage_address_is_unserviceable() {
        let (mut t, _) = billings_transport();
        let mut rng = StdRng::seed_from_u64(5);
        let job = job_for("Fhqwhgads, Nowhere, ZZ 00000", Isp::CenturyLink);
        let rec = query_address(&mut t, &cfg(), &job, src(), SimTime::ZERO, &mut rng);
        assert!(
            matches!(
                rec.outcome,
                QueryOutcome::Unserviceable | QueryOutcome::Failed
            ),
            "{:?}",
            rec.outcome
        );
        assert!(!rec.outcome.is_hit());
    }

    #[test]
    fn max_observed_wait_dominates_query_time() {
        // With a calibrated pause P and mostly 1-2 step flows, the median
        // query should take between P and ~3P.
        let (mut t, world) = billings_transport();
        let mut rng = StdRng::seed_from_u64(6);
        let pause = SimDuration::from_secs(40);
        let config = BqtConfig::paper_default(pause);
        let mut durations = Vec::new();
        let mut now = SimTime::ZERO;
        for r in world.addresses().records().iter().take(60) {
            let job = job_for(&r.listing_line, Isp::CenturyLink);
            let rec = query_address(&mut t, &config, &job, src(), now, &mut rng);
            now = now + rec.duration + SimDuration::from_secs(10);
            if rec.outcome.is_hit() {
                durations.push(rec.duration.as_secs_f64());
            }
        }
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = durations[durations.len() / 2];
        assert!((40.0..140.0).contains(&median), "median {median}");
    }

    #[test]
    fn adaptive_wait_is_faster_than_max_observed() {
        let run = |config: BqtConfig| {
            let (mut t, world) = billings_transport();
            let mut rng = StdRng::seed_from_u64(7);
            let mut now = SimTime::ZERO;
            let mut total = 0.0;
            let mut n = 0;
            for r in world.addresses().records().iter().take(40) {
                let job = job_for(&r.listing_line, Isp::CenturyLink);
                let rec = query_address(&mut t, &config, &job, src(), now, &mut rng);
                now = now + rec.duration + SimDuration::from_secs(10);
                if rec.outcome.is_hit() {
                    total += rec.duration.as_secs_f64();
                    n += 1;
                }
            }
            total / n as f64
        };
        let slow = run(BqtConfig::paper_default(SimDuration::from_secs(70)));
        let fast = run(BqtConfig::adaptive(SimDuration::from_secs(2)));
        assert!(fast < slow * 0.8, "adaptive {fast} vs max-observed {slow}");
    }

    /// A service that always rate-limits, to exercise the 429 path.
    struct Always429;
    impl Service for Always429 {
        fn handle(&mut self, _: SimIp, _: &Request, _: SimTime, _: &mut StdRng) -> Exchange {
            Exchange {
                response: Response::new(Status::TooManyRequests),
                processing: SimDuration::from_millis(100),
            }
        }
    }

    #[test]
    fn persistent_429_ends_blocked_with_backoff_charged() {
        let mut t = Transport::new(1);
        t.register(
            "throttled",
            Endpoint::new(
                Box::new(Always429),
                LatencyModel::constant(SimDuration::ZERO),
            ),
        );
        let mut rng = StdRng::seed_from_u64(8);
        let config = cfg();
        let job = QueryJob {
            endpoint: "throttled".to_string(),
            dialect: Dialect::DataAttr,
            input_line: "1 Main St".to_string(),
            tag: 0,
        };
        let rec = query_address(&mut t, &config, &job, src(), SimTime::ZERO, &mut rng);
        assert_eq!(rec.outcome, QueryOutcome::Blocked);
        // Two backoffs were charged before giving up.
        assert!(
            rec.duration >= SimDuration::from_secs(60),
            "{}",
            rec.duration
        );
    }

    #[test]
    fn charge_wait_max_observed_covers_slow_loads() {
        let pause = SimDuration::from_secs(30);
        let fast = charge_wait(
            WaitPolicy::MaxObserved { pause },
            SimDuration::from_secs(10),
        );
        assert_eq!(fast, pause);
        let slow = charge_wait(
            WaitPolicy::MaxObserved { pause },
            SimDuration::from_secs(45),
        );
        assert_eq!(slow, SimDuration::from_secs(75), "reload cycle charged");
    }

    #[test]
    fn charge_wait_adaptive_rounds_to_poll_tick() {
        let poll = SimDuration::from_secs(2);
        assert_eq!(
            charge_wait(
                WaitPolicy::Adaptive { poll },
                SimDuration::from_millis(4500)
            ),
            SimDuration::from_secs(6)
        );
        assert_eq!(
            charge_wait(WaitPolicy::Adaptive { poll }, SimDuration::from_secs(2)),
            SimDuration::from_secs(2)
        );
    }
}
