//! The scraping orchestrator: BQT's "docker containers" (§4.1).
//!
//! The paper runs 50–100 concurrent BQT containers against each BAT,
//! sourcing requests from a residential IP pool. We reproduce that as a
//! discrete-event simulation: `n_workers` logical containers share one
//! virtual timeline, each picking up the next job when free, running the
//! full per-address workflow, then pausing politely before the next job.
//!
//! Because all timing is virtual, the orchestrator also supports the
//! paper's scaling experiment directly: run the same job list with 1, 50,
//! 100 and 200 workers and compare the observed per-request response times.
//!
//! ## Supervision layer
//!
//! On top of the original event loop sit three robustness mechanisms:
//!
//! * **Write-ahead journaling + resume** ([`Campaign::journal`](crate::campaign::Campaign::journal))
//!   — every finished attempt is appended to a [`Journal`] before being
//!   folded into the report. A campaign killed mid-run resumes by
//!   replaying journaled attempts instead of re-scraping them; with a
//!   hermetic transport ([`Transport::hermetic`]) the resumed report is
//!   byte-identical to an uninterrupted run's. Journaled runs derive all
//!   per-attempt randomness (source IP, MDU picks) from
//!   `(seed, tag, attempt)` so replayed work cannot desynchronize the
//!   draws that live work observes.
//! * **Worker watchdog** — a hung session ([`QueryOutcome::Stalled`])
//!   holds no timeout of its own; the orchestrator charges the stalled
//!   attempt `max(partial, watchdog)` of virtual time, reclaims the
//!   worker, and requeues the job through the normal retry machinery.
//! * **Adaptive load shedding** ([`ShedPolicy`]) — an AIMD controller
//!   watches the recent retryable-failure rate and shrinks the worker
//!   pool multiplicatively when a BAT pushes back, recovering additively
//!   once the storm passes; parked workers wake as the ceiling rises.

use crate::client::BqtConfig;
use crate::drift::{DriftMonitor, DriftReport};
use crate::driver::{query_address_traced, QueryJob, QueryOutcome, QueryRecord};
use crate::journal::{
    config_fingerprint, AttemptEntry, CampaignManifest, Journal, JournalError, RebootstrapEntry,
};
use crate::metrics::Metrics;
use crate::monitor::{CampaignSection, HealthReport};
use crate::retry::{is_retryable, CircuitBreaker, RetryPolicy};
use crate::scrape::{learn_template_set, TemplateSet, GENERATIONS};
use crate::shed::{ShedController, ShedDecision, ShedPolicy};
use crate::telemetry::{EventKind, EventSink, OutcomeCode, Telemetry, TelemetrySummary};
use bbsim_net::{
    fnv1a, mix64, EventQueue, IpPool, Request, SimDuration, SimIp, SimTime, Status, Transport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};

pub use crate::telemetry::ResumeStats;

/// Domain separators for the orchestrator's derived-randomness streams.
const RNG_SALT: u64 = 0x0C_0E57;
const POOL_SALT: u64 = 0x1B_ADD4;
const REBOOT_SALT: u64 = 0x2E_B007;

/// Pages fetched per re-bootstrap probe burst.
const PROBE_BURST: usize = 12;

/// Orchestration parameters.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    /// Number of concurrent worker containers.
    pub n_workers: usize,
    /// Pause between consecutive jobs on one worker (politeness).
    pub politeness: SimDuration,
    /// Per-run seed (drives MDU picks and worker jitter).
    pub seed: u64,
    /// Job-level retry policy. `None` preserves the one-shot behaviour:
    /// a failed query is final and no requeueing happens.
    pub retry: Option<RetryPolicy>,
    /// Per-job deadline: a worker whose session stalls is reclaimed after
    /// this much virtual time and the stalled attempt charged accordingly.
    pub watchdog: SimDuration,
    /// Adaptive load shedding. `None` keeps the worker pool fixed.
    pub shed: Option<ShedPolicy>,
    /// Template-drift supervision: when set, every endpoint gets its own
    /// clone of this monitor; a flagged endpoint is quarantined, a probe
    /// burst re-learns its templates, and the swap is applied to all
    /// later attempts. `None` turns the drift machinery off entirely.
    pub drift: Option<DriftMonitor>,
}

/// What the discrete-event loop schedules.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Worker `w` finished its politeness pause and wants a job.
    WorkerFree(usize),
    /// Job slot `j`'s backoff (or breaker cooldown) elapsed.
    JobReady(usize),
}

impl Orchestrator {
    /// The paper's configuration: 50–100 containers; we default to 64.
    /// Retries stay off so measured hit rates keep the paper's one-shot
    /// per-address semantics.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            n_workers: 64,
            politeness: SimDuration::from_secs(5),
            seed,
            retry: None,
            watchdog: SimDuration::from_secs(300),
            shed: None,
            drift: None,
        }
    }

    /// Paper defaults plus the default retry policy — the robust
    /// configuration for campaigns over degraded networks.
    pub fn with_retries(seed: u64) -> Self {
        Self {
            retry: Some(RetryPolicy::paper_default(seed)),
            ..Self::paper_default(seed)
        }
    }

    /// The campaign identity a journaled run of `jobs` under `config`
    /// would bind into its journal.
    pub fn manifest(&self, config: &BqtConfig, jobs: &[QueryJob]) -> CampaignManifest {
        CampaignManifest {
            seed: self.seed,
            config_hash: config_fingerprint(
                config,
                &[
                    self.n_workers as u64,
                    self.politeness.as_millis(),
                    self.watchdog.as_millis(),
                    self.retry.map_or(0, |r| r.max_attempts as u64),
                    self.shed.is_some() as u64,
                    self.drift.is_some() as u64,
                ],
            ),
            job_digest: CampaignManifest::digest_jobs(jobs),
            n_jobs: jobs.len() as u32,
        }
    }

    /// The discrete-event loop shared by every way of running a campaign.
    ///
    /// Entered through [`Campaign::run`], which binds the journal manifest
    /// and assembles the [`Telemetry`] fan-out. Every state transition the
    /// loop makes is narrated into `tel`; the always-on aggregator's
    /// summary becomes [`OrchestratorReport::telemetry`].
    ///
    /// For a resumed report to be byte-identical to an uninterrupted
    /// run's, `transport` must be hermetic ([`Transport::hermetic`]), any
    /// fault plan hermetic too, and `pool`/`config`/`jobs` identical to
    /// the original run. Journaled runs derive all per-attempt randomness
    /// from `(seed, tag, attempt)` so replayed work cannot desynchronize
    /// the draws that live work observes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_inner(
        &self,
        transport: &mut Transport,
        config: &BqtConfig,
        jobs: &[QueryJob],
        pool: &mut IpPool,
        mut journal: Option<&mut Journal>,
        crash_at: Option<SimTime>,
        tel: &mut Telemetry<'_>,
    ) -> Result<Option<OrchestratorReport>, JournalError> {
        assert!(self.n_workers >= 1, "need at least one worker");
        let journaled = journal.is_some();
        // Journal-less runs share one sequential RNG (the original
        // behaviour); journaled runs derive per-attempt RNGs below so
        // replayed attempts cannot desynchronize live ones.
        let mut rng = StdRng::seed_from_u64(self.seed ^ RNG_SALT);
        let mut queue: EventQueue<Event> = EventQueue::new();
        tel.emit(
            SimTime::ZERO,
            EventKind::CampaignBegin {
                seed: self.seed,
                n_jobs: jobs.len() as u32,
                n_workers: self.n_workers as u32,
            },
        );
        // Stagger worker start times slightly so arrival bursts don't all
        // land on the same virtual millisecond.
        let started = self.n_workers.min(jobs.len().max(1));
        for w in 0..started {
            let at = SimTime::from_millis(w as u64 * 97);
            queue.push(at, Event::WorkerFree(w));
            tel.emit(at, EventKind::WorkerBegin { worker: w as u32 });
        }

        // Jobs waiting for a worker right now, in FIFO order.
        let mut ready: VecDeque<usize> = (0..jobs.len()).collect();
        // Workers with nothing to do, parked until a job becomes ready.
        let mut idle_workers: Vec<usize> = Vec::new();
        // Workers benched by the shed controller until the ceiling rises.
        let mut shed_parked: Vec<usize> = Vec::new();
        // Attempts consumed per job slot.
        let mut attempts: Vec<u32> = vec![0; jobs.len()];
        // Per-attempt outcome history per job slot (for dead letters).
        let mut histories: Vec<Vec<QueryOutcome>> = vec![Vec::new(); jobs.len()];
        let mut breaker = self.retry.as_ref().map(|p| CircuitBreaker::new(p.breaker));
        let mut shed_ctrl = self
            .shed
            .map(|policy| ShedController::new(policy, self.n_workers as u32));
        let mut worker_busy = vec![false; self.n_workers];
        let mut n_busy = 0usize;

        let mut records: Vec<QueryRecord> = Vec::with_capacity(jobs.len());
        let mut dead_letters: Vec<DeadLetter> = Vec::new();
        let mut metrics = Metrics::new();
        let mut makespan = SimTime::ZERO;

        // Drift supervision state: per-endpoint monitors cloned from the
        // prototype, learned template overrides applied to live attempts,
        // and the quarantine count per endpoint (the journal key a resumed
        // run looks swaps up under).
        let mut drift_mons: BTreeMap<String, DriftMonitor> = BTreeMap::new();
        let mut learned_templates: BTreeMap<String, &'static TemplateSet> = BTreeMap::new();
        let mut quarantines: BTreeMap<String, u32> = BTreeMap::new();

        while let Some((now, event)) = queue.pop() {
            if let Some(crash) = crash_at {
                if now > crash {
                    // The process died here: whatever the journal holds is
                    // all that survives.
                    return Ok(None);
                }
            }
            // Pair a free worker with a ready job, or park whichever side
            // arrived without a counterpart.
            let (worker, j) = match event {
                Event::WorkerFree(w) => {
                    if worker_busy[w] {
                        worker_busy[w] = false;
                        n_busy -= 1;
                    }
                    if let Some(ctrl) = &shed_ctrl {
                        if n_busy as u32 >= ctrl.limit() {
                            shed_parked.push(w);
                            continue;
                        }
                    }
                    match ready.pop_front() {
                        Some(j) => (w, j),
                        None => {
                            idle_workers.push(w);
                            continue;
                        }
                    }
                }
                Event::JobReady(j) => {
                    let over_limit = shed_ctrl
                        .as_ref()
                        .is_some_and(|c| n_busy as u32 >= c.limit());
                    match (over_limit, idle_workers.pop()) {
                        (false, Some(w)) => (w, j),
                        (true, _) | (false, None) => {
                            ready.push_back(j);
                            continue;
                        }
                    }
                }
            };
            let job = &jobs[j];

            // An open circuit defers the job (not charging an attempt)
            // until the breaker half-opens; the worker stays in rotation.
            if let Some(b) = breaker.as_mut() {
                if !b.allows(&job.endpoint, now) {
                    // `reopen_time` is `Some` whenever `allows` says no; if
                    // the breaker ever disagrees, retry on the next tick
                    // rather than panic mid-campaign.
                    let resume_at = b
                        .reopen_time(&job.endpoint)
                        .unwrap_or(now)
                        .max(now + SimDuration::from_millis(1));
                    tel.emit(
                        now,
                        EventKind::BreakerDefer {
                            tag: job.tag,
                            endpoint: job.endpoint.clone(),
                            until_ms: resume_at.as_millis(),
                        },
                    );
                    queue.push(resume_at, Event::JobReady(j));
                    queue.push(now, Event::WorkerFree(worker));
                    continue;
                }
            }

            attempts[j] += 1;
            let attempt = attempts[j];
            worker_busy[worker] = true;
            n_busy += 1;
            if attempt == 1 {
                tel.emit(
                    now,
                    EventKind::JobBegin {
                        tag: job.tag,
                        endpoint: job.endpoint.clone(),
                    },
                );
            }
            tel.emit(
                now,
                EventKind::AttemptBegin {
                    tag: job.tag,
                    attempt,
                    worker: worker as u32,
                    endpoint: job.endpoint.clone(),
                },
            );

            // Write-ahead replay: if this exact (tag, attempt) finished
            // before a crash, take its journaled result verbatim instead
            // of re-scraping.
            let replayed = journal
                .as_deref()
                .and_then(|jr| jr.replay(job.tag, attempt))
                .map(|entry| entry.to_record());
            let from_journal = replayed.is_some();
            let rec = match replayed {
                Some(rec) => {
                    tel.emit(
                        now,
                        EventKind::JournalReplay {
                            tag: job.tag,
                            attempt,
                        },
                    );
                    rec
                }
                None => {
                    // A re-bootstrapped endpoint queries through its
                    // learned templates; everything else keeps the
                    // campaign configuration.
                    let cfg = match learned_templates.get(&job.endpoint) {
                        Some(ts) => config.with_templates(ts),
                        None => *config,
                    };
                    let mut rec = if journaled {
                        // Hermetic per-attempt randomness: the source IP
                        // and the driver's own draws are functions of
                        // (seed, tag, attempt), independent of the other
                        // jobs' fates.
                        let src =
                            pool.assign(mix64(self.seed ^ POOL_SALT, &[job.tag, attempt as u64]));
                        let mut arng = StdRng::seed_from_u64(mix64(
                            self.seed ^ RNG_SALT,
                            &[job.tag, attempt as u64],
                        ));
                        query_address_traced(
                            transport, &cfg, job, src, now, &mut arng, attempt, tel,
                        )
                    } else {
                        let src = pool.next();
                        query_address_traced(transport, &cfg, job, src, now, &mut rng, attempt, tel)
                    };
                    if rec.outcome == QueryOutcome::Stalled {
                        // The watchdog reclaims the hung worker: charge
                        // the deadline (or the partial time if the stall
                        // hit after the deadline would have fired).
                        rec.duration = rec.duration.max(self.watchdog);
                    }
                    rec
                }
            };
            let done = now + rec.duration;
            makespan = makespan.max(done);
            tel.emit(
                done,
                EventKind::AttemptEnd {
                    tag: job.tag,
                    attempt,
                    worker: worker as u32,
                    endpoint: job.endpoint.clone(),
                    outcome: OutcomeCode::of(&rec.outcome),
                    duration_ms: rec.duration.as_millis(),
                    steps: rec.steps,
                },
            );
            if rec.outcome == QueryOutcome::Stalled {
                tel.emit(
                    done,
                    EventKind::StallReclaimed {
                        tag: job.tag,
                        worker: worker as u32,
                    },
                );
            }

            // Write-ahead: journal the attempt before folding it into the
            // report, but only if it finished before the simulated crash —
            // a real crash loses the in-flight attempt.
            if !from_journal && crash_at.is_none_or(|c| done <= c) {
                if let Some(jr) = journal.as_deref_mut() {
                    jr.append(AttemptEntry::from_record(&rec, attempt))?;
                }
            }

            // Template-drift watch: every finished attempt — replayed or
            // live — feeds its endpoint's monitor, so a resumed run
            // re-derives the same quarantine decisions at the same points
            // in the record stream.
            if let Some(proto) = &self.drift {
                if rec.saw_unrecognized_page {
                    tel.emit(
                        done,
                        EventKind::DriftSuspected {
                            tag: job.tag,
                            endpoint: job.endpoint.clone(),
                        },
                    );
                }
                let mon = drift_mons
                    .entry(job.endpoint.clone())
                    .or_insert_with(|| proto.clone());
                mon.observe(&rec);
                if mon.needs_rebootstrap() {
                    let occurrence = {
                        let n = quarantines.entry(job.endpoint.clone()).or_insert(0);
                        *n += 1;
                        *n
                    };
                    tel.emit(
                        done,
                        EventKind::RebootstrapStarted {
                            endpoint: job.endpoint.clone(),
                        },
                    );
                    // A journaled swap for this exact quarantine is
                    // replayed verbatim instead of re-probing.
                    let replayed_swap = journal
                        .as_deref()
                        .and_then(|jr| jr.rebootstrap(&job.endpoint, occurrence))
                        .map(|r| (r.generation, r.confidence_pct));
                    let swap_from_journal = replayed_swap.is_some();
                    let (generation, confidence_pct) = match replayed_swap {
                        Some(swap) => swap,
                        None => {
                            // Probe burst: re-submit the endpoint's first
                            // jobs as bare /locate requests at the current
                            // instant. Probes are operator tooling, not
                            // campaign traffic — they consume no virtual
                            // time, emit no events, and source from a
                            // reserved IP range (TEST-NET-3) so they never
                            // perturb the campaign's rate-limit state.
                            let mut pages = Vec::new();
                            let probes = jobs
                                .iter()
                                .filter(|p| p.endpoint == job.endpoint)
                                .take(PROBE_BURST);
                            for (k, probe) in probes.enumerate() {
                                let key = mix64(
                                    self.seed ^ REBOOT_SALT,
                                    &[fnv1a(job.endpoint.as_bytes()), occurrence as u64, k as u64],
                                );
                                let src = SimIp(u32::from_be_bytes([203, 0, 113, key as u8]));
                                let req = Request::post(
                                    "/locate",
                                    format!("address={}", probe.input_line),
                                );
                                if let Ok((resp, _)) =
                                    transport.round_trip(&job.endpoint, src, &req, done)
                                {
                                    if resp.status == Status::Ok {
                                        pages.push(resp.body);
                                    }
                                }
                            }
                            match learn_template_set(&pages, job.dialect) {
                                Some(l) => (l.generation, (l.confidence * 100.0).round() as u32),
                                None => (0, 0),
                            }
                        }
                    };
                    // Generation 0 means the burst learned nothing; an
                    // out-of-range generation can only come from a foreign
                    // journal and is treated the same way.
                    let swapped = generation
                        .checked_sub(1)
                        .and_then(|g| GENERATIONS.get(g as usize))
                        .copied();
                    if let Some(ts) = swapped {
                        let current = *learned_templates
                            .get(&job.endpoint)
                            .unwrap_or(&config.templates);
                        if *ts != *current {
                            learned_templates.insert(job.endpoint.clone(), ts);
                            tel.emit(
                                done,
                                EventKind::TemplateSwapped {
                                    endpoint: job.endpoint.clone(),
                                    generation,
                                },
                            );
                        }
                    }
                    tel.emit(
                        done,
                        EventKind::RebootstrapCompleted {
                            endpoint: job.endpoint.clone(),
                            confidence_pct,
                        },
                    );
                    // Write-ahead like the attempts: the swap is journaled
                    // only if it completed before the simulated crash.
                    if !swap_from_journal && crash_at.is_none_or(|c| done <= c) {
                        if let Some(jr) = journal.as_deref_mut() {
                            jr.append_rebootstrap(RebootstrapEntry {
                                endpoint: job.endpoint.clone(),
                                occurrence,
                                generation,
                                confidence_pct,
                            })?;
                        }
                    }
                    mon.reset();
                }
            }

            // Feed the load-shedding controller (replayed attempts too:
            // the resumed controller must retrace the original's path).
            if let Some(ctrl) = shed_ctrl.as_mut() {
                match ctrl.observe(done, is_retryable(&rec.outcome)) {
                    ShedDecision::Cut(limit) => {
                        tel.emit(done, EventKind::ShedCut { limit });
                    }
                    ShedDecision::Raise(limit) => {
                        tel.emit(done, EventKind::ShedRaise { limit });
                        if let Some(w) = shed_parked.pop() {
                            queue.push(done, Event::WorkerFree(w));
                        }
                    }
                    ShedDecision::Hold => {}
                }
            }
            // An SLO alert with `escalate` on asks for a cut the organic
            // trip-rate path hasn't taken yet; the controller still
            // enforces its own floor and cooldown. Stable events drive the
            // monitor, so a resumed run retraces these cuts exactly.
            if tel.take_escalation() {
                if let Some(ctrl) = shed_ctrl.as_mut() {
                    if let Some(limit) = ctrl.force_cut(done) {
                        tel.emit(done, EventKind::ShedCut { limit });
                    }
                }
            }

            let mut requeued = false;
            let mut dead_lettered = false;
            if let Some(policy) = &self.retry {
                histories[j].push(rec.outcome.clone());
                let failed = is_retryable(&rec.outcome);
                if let Some(b) = breaker.as_mut() {
                    if failed {
                        if b.on_failure(&job.endpoint, done) {
                            metrics.breaker_trips += 1;
                            tel.emit(
                                done,
                                EventKind::BreakerTrip {
                                    endpoint: job.endpoint.clone(),
                                },
                            );
                        }
                    } else {
                        b.on_success(&job.endpoint);
                    }
                }
                if failed {
                    if attempts[j] < policy.max_attempts {
                        metrics.retries += 1;
                        let delay = policy.backoff.delay(job.tag, attempts[j]);
                        tel.emit(
                            done,
                            EventKind::Retry {
                                tag: job.tag,
                                next_attempt: attempts[j] + 1,
                                delay_ms: delay.as_millis(),
                            },
                        );
                        queue.push(done + delay, Event::JobReady(j));
                        requeued = true;
                    } else {
                        metrics.dead_lettered += 1;
                        dead_lettered = true;
                        dead_letters.push(DeadLetter {
                            tag: job.tag,
                            attempts: attempts[j],
                            last_outcome: rec.outcome.clone(),
                            history: std::mem::take(&mut histories[j]),
                        });
                    }
                }
            }
            if !requeued {
                tel.emit(
                    done,
                    EventKind::JobEnd {
                        tag: job.tag,
                        outcome: OutcomeCode::of(&rec.outcome),
                        attempts: attempts[j],
                        dead_lettered,
                    },
                );
                metrics.record(&rec);
                records.push(rec);
            }

            queue.push(done + self.politeness, Event::WorkerFree(worker));
        }

        for w in 0..started {
            tel.emit(makespan, EventKind::WorkerEnd { worker: w as u32 });
        }
        tel.emit(
            makespan,
            EventKind::CampaignEnd {
                makespan_ms: makespan.as_millis(),
            },
        );

        let health = tel.take_monitor().map(|m| m.finish());
        let drift = self.drift.as_ref().map(|_| DriftReport {
            total_sightings: drift_mons.values().map(|m| m.total_sightings).sum(),
            per_endpoint: drift_mons
                .iter()
                .map(|(e, m)| (e.clone(), m.drift_rate()))
                .collect(),
            rebootstraps: quarantines.iter().map(|(e, n)| (e.clone(), *n)).collect(),
        });
        Ok(Some(OrchestratorReport {
            records,
            metrics,
            makespan,
            dead_letters,
            concurrency_timeline: shed_ctrl.map(|c| c.timeline().to_vec()).unwrap_or_default(),
            telemetry: tel.summary(),
            health,
            drift,
        }))
    }
}

/// A job that exhausted its attempt budget without a hit.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The job's correlation tag.
    pub tag: u64,
    /// Attempts consumed (equals the policy's budget).
    pub attempts: u32,
    /// The outcome of the final attempt.
    pub last_outcome: QueryOutcome,
    /// Outcome of every attempt in order — the post-mortem trail
    /// (`history.last() == Some(&last_outcome)`).
    pub history: Vec<QueryOutcome>,
}

/// Everything an orchestrated run produced.
#[derive(Debug, Clone)]
pub struct OrchestratorReport {
    /// Per-address records, in completion order. Exactly one per job,
    /// retries or not.
    pub records: Vec<QueryRecord>,
    /// Aggregated counters.
    pub metrics: Metrics,
    /// Virtual time when the last query finished.
    pub makespan: SimTime,
    /// Jobs whose retry budget ran dry (empty when retries are off).
    pub dead_letters: Vec<DeadLetter>,
    /// `(virtual time, ceiling)` every time the load-shedding controller
    /// moved the concurrency ceiling (empty when shedding is off). The
    /// first entry is the starting ceiling.
    pub concurrency_timeline: Vec<(SimTime, u32)>,
    /// The run's aggregated event stream: counter families plus
    /// per-endpoint and per-worker histograms. The supervision views
    /// below are computed from it.
    pub telemetry: TelemetrySummary,
    /// The live monitor's final judgement — alerts, window state and the
    /// folded profile. `None` unless `Campaign::monitor` was attached.
    pub health: Option<HealthReport>,
    /// The drift watch's summary — sightings, final per-endpoint rates
    /// and quarantine counts. `None` unless `Campaign::drift_monitor`
    /// was armed.
    pub drift: Option<DriftReport>,
}

impl OrchestratorReport {
    /// Mean per-query duration in seconds (the scaling experiment's
    /// response-time metric), over hit queries.
    pub fn mean_hit_duration_s(&self) -> Option<f64> {
        let d = self.metrics.durations_s();
        if d.is_empty() {
            None
        } else {
            Some(d.iter().sum::<f64>() / d.len() as f64)
        }
    }

    /// Journal bookkeeping for resumed runs (zeros when not journaled).
    ///
    /// Deliberately outside [`Metrics`]: resumed and uninterrupted runs
    /// must produce *equal* metrics, and this split is exactly what
    /// differs between them.
    pub fn resume(&self) -> ResumeStats {
        self.telemetry.resume()
    }

    /// Times the load-shedding controller cut the concurrency ceiling.
    pub fn shed_events(&self) -> u64 {
        self.telemetry.shed_cuts
    }

    /// Workers the watchdog reclaimed from hung sessions.
    pub fn stalls_reclaimed(&self) -> u64 {
        self.telemetry.stalls_reclaimed
    }

    /// Template re-bootstraps the drift watch completed.
    pub fn rebootstraps(&self) -> u64 {
        self.telemetry.rebootstraps_completed
    }

    /// This report's slice of a metrics exposition / folded profile,
    /// labelled `label`. `None` unless the campaign was monitored.
    pub fn health_section<'a>(&'a self, label: &'a str) -> Option<CampaignSection<'a>> {
        self.health.as_ref().map(|health| CampaignSection {
            label,
            telemetry: &self.telemetry,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use bbsim_bat::{templates, BatServer};
    use bbsim_census::city_by_name;
    use bbsim_isp::{CityWorld, Isp};
    use bbsim_net::{Endpoint, FaultPlan, RotationPolicy};
    use std::sync::Arc;

    fn setup() -> (Transport, Vec<QueryJob>) {
        setup_with(Transport::new(11))
    }

    fn setup_with(mut t: Transport) -> (Transport, Vec<QueryJob>) {
        let world = Arc::new(CityWorld::build(city_by_name("Billings").unwrap()));
        let server = BatServer::new(Isp::CenturyLink, world.clone());
        let net = server.profile().network_latency;
        t.register("centurylink/billings", Endpoint::new(Box::new(server), net));
        let jobs: Vec<QueryJob> = world
            .addresses()
            .records()
            .iter()
            .take(150)
            .map(|r| QueryJob {
                endpoint: "centurylink/billings".to_string(),
                dialect: templates::dialect_of(Isp::CenturyLink),
                input_line: r.listing_line.clone(),
                tag: r.id as u64,
            })
            .collect();
        (t, jobs)
    }

    fn config() -> BqtConfig {
        BqtConfig::paper_default(SimDuration::from_secs(45))
    }

    #[test]
    fn completes_every_job_exactly_once() {
        let (mut t, jobs) = setup();
        let orch = Orchestrator {
            n_workers: 16,
            politeness: SimDuration::from_secs(5),
            seed: 1,
            ..Orchestrator::paper_default(1)
        };
        let mut pool = IpPool::residential(64, RotationPolicy::RoundRobin, 1);
        let report = Campaign::from_orchestrator(orch)
            .config(config())
            .run(&mut t, &jobs, &mut pool)
            .unwrap()
            .report();
        assert_eq!(report.records.len(), jobs.len());
        let mut tags: Vec<u64> = report.records.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), jobs.len());
    }

    #[test]
    fn more_workers_shrink_makespan() {
        let (mut t1, jobs) = setup();
        let mut pool1 = IpPool::residential(256, RotationPolicy::RoundRobin, 2);
        let serial = Campaign::new(2)
            .workers(1)
            .config(config())
            .run(&mut t1, &jobs, &mut pool1)
            .unwrap()
            .report();

        let (mut t2, jobs2) = setup();
        let mut pool2 = IpPool::residential(256, RotationPolicy::RoundRobin, 2);
        let parallel = Campaign::new(2)
            .workers(50)
            .config(config())
            .run(&mut t2, &jobs2, &mut pool2)
            .unwrap()
            .report();

        assert!(
            parallel.makespan.as_millis() * 5 < serial.makespan.as_millis(),
            "serial {} vs parallel {}",
            serial.makespan,
            parallel.makespan
        );
    }

    #[test]
    fn response_time_is_flat_across_worker_counts() {
        // The paper's §4.1 experiment: per-query response time does not
        // change between 1 and 200 containers (with a healthy IP pool).
        let mut means = Vec::new();
        for &n in &[1usize, 50, 200] {
            let (mut t, jobs) = setup();
            let mut pool = IpPool::residential(256, RotationPolicy::RoundRobin, 3);
            let report = Campaign::new(3)
                .workers(n)
                .config(config())
                .run(&mut t, &jobs, &mut pool)
                .unwrap()
                .report();
            means.push(report.mean_hit_duration_s().unwrap());
        }
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min < 1.25, "response times varied: {means:?}");
    }

    #[test]
    fn single_shared_ip_trips_rate_limits_with_many_workers() {
        // The flip side: funnel 100 workers through one residential IP and
        // the BAT's per-IP limiter starts blocking.
        let (mut t, jobs) = setup();
        let mut pool = IpPool::residential(1, RotationPolicy::RoundRobin, 4);
        let report = Campaign::new(4)
            .workers(100)
            .politeness(SimDuration::from_secs(1))
            .config(config())
            .run(&mut t, &jobs, &mut pool)
            .unwrap()
            .report();
        assert!(
            report.metrics.blocked > 0,
            "expected rate-limit blocks, got {:?}",
            report.metrics
        );
    }

    #[test]
    fn hit_rate_stays_high_under_paper_defaults() {
        let (mut t, jobs) = setup();
        let mut pool = IpPool::residential(128, RotationPolicy::RoundRobin, 5);
        let report = Campaign::new(5)
            .config(config())
            .run(&mut t, &jobs, &mut pool)
            .unwrap()
            .report();
        assert!(
            report.metrics.hit_rate() > 0.75,
            "hit rate {}",
            report.metrics.hit_rate()
        );
    }

    #[test]
    fn runs_with_more_workers_than_jobs() {
        let (mut t, jobs) = setup();
        let few: Vec<QueryJob> = jobs.into_iter().take(3).collect();
        let mut pool = IpPool::residential(8, RotationPolicy::RoundRobin, 6);
        let report = Campaign::new(6)
            .workers(64)
            .politeness(SimDuration::from_secs(1))
            .config(config())
            .run(&mut t, &few, &mut pool)
            .unwrap()
            .report();
        assert_eq!(report.records.len(), 3);
    }

    #[test]
    fn journaled_run_without_crash_matches_plain_journaled_rerun() {
        // Same campaign journaled twice from scratch: identical reports.
        let run = || {
            let (mut t, jobs) = setup_with(Transport::hermetic(11));
            let mut pool = IpPool::residential(64, RotationPolicy::RoundRobin, 1);
            let mut journal = Journal::in_memory();
            Campaign::from_orchestrator(Orchestrator {
                n_workers: 16,
                ..Orchestrator::with_retries(7)
            })
            .config(config())
            .journal(&mut journal)
            .run(&mut t, &jobs, &mut pool)
            .unwrap()
            .report()
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.resume().replayed_attempts, 0);
        assert!(a.resume().live_attempts >= 150);
    }

    #[test]
    fn watchdog_reclaims_stalled_workers_and_retries_win() {
        // Stall every request to the endpoint for the first 20 virtual
        // minutes; with retries, jobs recover after the window lifts.
        let mut t = Transport::hermetic(11);
        t.set_fault_plan(FaultPlan::new(5).hermetic().stalls(
            "centurylink/billings",
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(1200),
            0.9,
        ));
        let (mut t, jobs) = setup_with(t);
        let few: Vec<QueryJob> = jobs.into_iter().take(40).collect();
        let mut pool = IpPool::residential(64, RotationPolicy::RoundRobin, 2);
        let report = Campaign::from_orchestrator(Orchestrator {
            n_workers: 8,
            watchdog: SimDuration::from_secs(120),
            ..Orchestrator::with_retries(9)
        })
        .config(config())
        .run(&mut t, &few, &mut pool)
        .unwrap()
        .report();
        assert_eq!(report.records.len(), 40, "no job lost to a hang");
        assert!(
            report.stalls_reclaimed() > 0,
            "stalls were injected: {:?}",
            report.telemetry
        );
        // Every stalled attempt was charged at least the watchdog.
        for r in &report.records {
            if r.outcome == QueryOutcome::Stalled {
                assert!(r.duration >= SimDuration::from_secs(120));
            }
        }
    }

    #[test]
    fn dead_letters_carry_their_attempt_history() {
        // A permanently stalling endpoint dead-letters everything, and
        // each dead letter shows all four attempts stalling.
        let mut t = Transport::hermetic(3);
        t.set_fault_plan(FaultPlan::new(5).hermetic().stalls(
            "centurylink/billings",
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(1_000_000),
            1.0,
        ));
        let (mut t, jobs) = setup_with(t);
        let few: Vec<QueryJob> = jobs.into_iter().take(10).collect();
        let mut pool = IpPool::residential(16, RotationPolicy::RoundRobin, 3);
        let report = Campaign::from_orchestrator(Orchestrator {
            n_workers: 4,
            watchdog: SimDuration::from_secs(60),
            ..Orchestrator::with_retries(10)
        })
        .config(config())
        .run(&mut t, &few, &mut pool)
        .unwrap()
        .report();
        assert_eq!(report.dead_letters.len(), 10);
        for dl in &report.dead_letters {
            assert_eq!(dl.attempts as usize, dl.history.len());
            assert_eq!(dl.history.last(), Some(&dl.last_outcome));
            assert!(dl.history.iter().all(|o| *o == QueryOutcome::Stalled));
        }
    }

    /// The legacy `run`/`run_journaled`/`run_journaled_with_crash` shims
    /// are gone; the builder is the single entry point and carries their
    /// contracts: a plain run is deterministic (what the old shim-parity
    /// test really pinned down), and an early crash loses the report.
    #[test]
    fn campaign_builder_subsumes_the_legacy_run_contracts() {
        let orch = Orchestrator {
            n_workers: 16,
            ..Orchestrator::with_retries(7)
        };

        let run_plain = || {
            let (mut t, jobs) = setup_with(Transport::hermetic(11));
            let mut pool = IpPool::residential(64, RotationPolicy::RoundRobin, 1);
            Campaign::from_orchestrator(orch.clone())
                .config(config())
                .run(&mut t, &jobs, &mut pool)
                .unwrap()
                .report()
        };
        let a = run_plain();
        let b = run_plain();
        assert_eq!(a.records, b.records);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.makespan, b.makespan);

        let (mut t, jobs) = setup_with(Transport::hermetic(11));
        let mut pool = IpPool::residential(64, RotationPolicy::RoundRobin, 1);
        let mut journal = Journal::in_memory();
        let crashed = Campaign::from_orchestrator(orch)
            .config(config())
            .journal(&mut journal)
            .crash_at(SimTime::from_millis(60_000))
            .run(&mut t, &jobs, &mut pool)
            .unwrap()
            .completed();
        assert!(crashed.is_none(), "early crash loses the report");
        assert!(!journal.attempts().is_empty(), "but not the journal");
    }
}
