//! The scraping orchestrator: BQT's "docker containers" (§4.1).
//!
//! The paper runs 50–100 concurrent BQT containers against each BAT,
//! sourcing requests from a residential IP pool. We reproduce that as a
//! discrete-event simulation: `n_workers` logical containers share one
//! virtual timeline, each picking up the next job when free, running the
//! full per-address workflow, then pausing politely before the next job.
//!
//! Because all timing is virtual, the orchestrator also supports the
//! paper's scaling experiment directly: run the same job list with 1, 50,
//! 100 and 200 workers and compare the observed per-request response times.

use crate::client::BqtConfig;
use crate::driver::{query_address, QueryJob, QueryOutcome, QueryRecord};
use crate::metrics::Metrics;
use crate::retry::{is_retryable, CircuitBreaker, RetryPolicy};
use bbsim_net::{EventQueue, IpPool, SimDuration, SimTime, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Orchestration parameters.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    /// Number of concurrent worker containers.
    pub n_workers: usize,
    /// Pause between consecutive jobs on one worker (politeness).
    pub politeness: SimDuration,
    /// Per-run seed (drives MDU picks and worker jitter).
    pub seed: u64,
    /// Job-level retry policy. `None` preserves the one-shot behaviour:
    /// a failed query is final and no requeueing happens.
    pub retry: Option<RetryPolicy>,
}

/// What the discrete-event loop schedules.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Worker `w` finished its politeness pause and wants a job.
    WorkerFree(usize),
    /// Job slot `j`'s backoff (or breaker cooldown) elapsed.
    JobReady(usize),
}

impl Orchestrator {
    /// The paper's configuration: 50–100 containers; we default to 64.
    /// Retries stay off so measured hit rates keep the paper's one-shot
    /// per-address semantics.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            n_workers: 64,
            politeness: SimDuration::from_secs(5),
            seed,
            retry: None,
        }
    }

    /// Paper defaults plus the default retry policy — the robust
    /// configuration for campaigns over degraded networks.
    pub fn with_retries(seed: u64) -> Self {
        Self {
            retry: Some(RetryPolicy::paper_default(seed)),
            ..Self::paper_default(seed)
        }
    }

    /// Runs all `jobs` to completion and reports the results.
    ///
    /// `pool` supplies source IPs; each attempt checks out the next
    /// address, so per-IP request rates stay below BAT rate limits when
    /// the pool is reasonably sized.
    ///
    /// With a retry policy set, jobs whose outcome is retryable
    /// ([`QueryOutcome::Failed`] / [`QueryOutcome::Blocked`]) are requeued
    /// with capped exponential backoff until the attempt budget runs out,
    /// at which point the final record stands and the job is listed in
    /// [`OrchestratorReport::dead_letters`]. A per-endpoint circuit
    /// breaker defers traffic away from endpoints that are failing
    /// consistently. Every address produces exactly one record either way.
    pub fn run(
        &self,
        transport: &mut Transport,
        config: &BqtConfig,
        jobs: &[QueryJob],
        pool: &mut IpPool,
    ) -> OrchestratorReport {
        assert!(self.n_workers >= 1, "need at least one worker");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0C_0E57);
        let mut queue: EventQueue<Event> = EventQueue::new();
        // Stagger worker start times slightly so arrival bursts don't all
        // land on the same virtual millisecond.
        for w in 0..self.n_workers.min(jobs.len().max(1)) {
            queue.push(SimTime::from_millis(w as u64 * 97), Event::WorkerFree(w));
        }

        // Jobs waiting for a worker right now, in FIFO order.
        let mut ready: VecDeque<usize> = (0..jobs.len()).collect();
        // Workers with nothing to do, parked until a job becomes ready.
        let mut idle_workers: Vec<usize> = Vec::new();
        // Attempts consumed per job slot.
        let mut attempts: Vec<u32> = vec![0; jobs.len()];
        let mut breaker = self.retry.as_ref().map(|p| CircuitBreaker::new(p.breaker));

        let mut records: Vec<QueryRecord> = Vec::with_capacity(jobs.len());
        let mut dead_letters: Vec<DeadLetter> = Vec::new();
        let mut metrics = Metrics::new();
        let mut makespan = SimTime::ZERO;

        while let Some((now, event)) = queue.pop() {
            // Pair a free worker with a ready job, or park whichever side
            // arrived without a counterpart.
            let (worker, j) = match event {
                Event::WorkerFree(w) => match ready.pop_front() {
                    Some(j) => (w, j),
                    None => {
                        idle_workers.push(w);
                        continue;
                    }
                },
                Event::JobReady(j) => match idle_workers.pop() {
                    Some(w) => (w, j),
                    None => {
                        ready.push_back(j);
                        continue;
                    }
                },
            };
            let job = &jobs[j];

            // An open circuit defers the job (not charging an attempt)
            // until the breaker half-opens; the worker stays in rotation.
            if let Some(b) = breaker.as_mut() {
                if !b.allows(&job.endpoint, now) {
                    let resume = b
                        .reopen_time(&job.endpoint)
                        .expect("closed circuits always allow")
                        .max(now + SimDuration::from_millis(1));
                    queue.push(resume, Event::JobReady(j));
                    queue.push(now, Event::WorkerFree(worker));
                    continue;
                }
            }

            attempts[j] += 1;
            let src = pool.next();
            let rec = query_address(transport, config, job, src, now, &mut rng);
            let done = now + rec.duration;
            makespan = makespan.max(done);

            let mut requeued = false;
            if let Some(policy) = &self.retry {
                let failed = is_retryable(&rec.outcome);
                if let Some(b) = breaker.as_mut() {
                    if failed {
                        if b.on_failure(&job.endpoint, done) {
                            metrics.breaker_trips += 1;
                        }
                    } else {
                        b.on_success(&job.endpoint);
                    }
                }
                if failed {
                    if attempts[j] < policy.max_attempts {
                        metrics.retries += 1;
                        let delay = policy.backoff.delay(job.tag, attempts[j]);
                        queue.push(done + delay, Event::JobReady(j));
                        requeued = true;
                    } else {
                        metrics.dead_lettered += 1;
                        dead_letters.push(DeadLetter {
                            tag: job.tag,
                            attempts: attempts[j],
                            last_outcome: rec.outcome.clone(),
                        });
                    }
                }
            }
            if !requeued {
                metrics.record(&rec);
                records.push(rec);
            }

            queue.push(done + self.politeness, Event::WorkerFree(worker));
        }

        OrchestratorReport {
            records,
            metrics,
            makespan,
            dead_letters,
        }
    }
}

/// A job that exhausted its attempt budget without a hit.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The job's correlation tag.
    pub tag: u64,
    /// Attempts consumed (equals the policy's budget).
    pub attempts: u32,
    /// The outcome of the final attempt.
    pub last_outcome: QueryOutcome,
}

/// Everything an orchestrated run produced.
#[derive(Debug, Clone)]
pub struct OrchestratorReport {
    /// Per-address records, in completion order. Exactly one per job,
    /// retries or not.
    pub records: Vec<QueryRecord>,
    /// Aggregated counters.
    pub metrics: Metrics,
    /// Virtual time when the last query finished.
    pub makespan: SimTime,
    /// Jobs whose retry budget ran dry (empty when retries are off).
    pub dead_letters: Vec<DeadLetter>,
}

impl OrchestratorReport {
    /// Mean per-query duration in seconds (the scaling experiment's
    /// response-time metric), over hit queries.
    pub fn mean_hit_duration_s(&self) -> Option<f64> {
        let d = self.metrics.durations_s();
        if d.is_empty() {
            None
        } else {
            Some(d.iter().sum::<f64>() / d.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_bat::{templates, BatServer};
    use bbsim_census::city_by_name;
    use bbsim_isp::{CityWorld, Isp};
    use bbsim_net::{Endpoint, RotationPolicy};
    use std::sync::Arc;

    fn setup() -> (Transport, Vec<QueryJob>) {
        let world = Arc::new(CityWorld::build(city_by_name("Billings").unwrap()));
        let mut t = Transport::new(11);
        let server = BatServer::new(Isp::CenturyLink, world.clone());
        let net = server.profile().network_latency;
        t.register("centurylink/billings", Endpoint::new(Box::new(server), net));
        let jobs: Vec<QueryJob> = world
            .addresses()
            .records()
            .iter()
            .take(150)
            .map(|r| QueryJob {
                endpoint: "centurylink/billings".to_string(),
                dialect: templates::dialect_of(Isp::CenturyLink),
                input_line: r.listing_line.clone(),
                tag: r.id as u64,
            })
            .collect();
        (t, jobs)
    }

    fn config() -> BqtConfig {
        BqtConfig::paper_default(SimDuration::from_secs(45))
    }

    #[test]
    fn completes_every_job_exactly_once() {
        let (mut t, jobs) = setup();
        let orch = Orchestrator {
            n_workers: 16,
            politeness: SimDuration::from_secs(5),
            seed: 1,
            retry: None,
        };
        let mut pool = IpPool::residential(64, RotationPolicy::RoundRobin, 1);
        let report = orch.run(&mut t, &config(), &jobs, &mut pool);
        assert_eq!(report.records.len(), jobs.len());
        let mut tags: Vec<u64> = report.records.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), jobs.len());
    }

    #[test]
    fn more_workers_shrink_makespan() {
        let (mut t1, jobs) = setup();
        let mut pool1 = IpPool::residential(256, RotationPolicy::RoundRobin, 2);
        let serial = Orchestrator {
            n_workers: 1,
            politeness: SimDuration::from_secs(5),
            seed: 2,
            retry: None,
        }
        .run(&mut t1, &config(), &jobs, &mut pool1);

        let (mut t2, jobs2) = setup();
        let mut pool2 = IpPool::residential(256, RotationPolicy::RoundRobin, 2);
        let parallel = Orchestrator {
            n_workers: 50,
            politeness: SimDuration::from_secs(5),
            seed: 2,
            retry: None,
        }
        .run(&mut t2, &config(), &jobs2, &mut pool2);

        assert!(
            parallel.makespan.as_millis() * 5 < serial.makespan.as_millis(),
            "serial {} vs parallel {}",
            serial.makespan,
            parallel.makespan
        );
    }

    #[test]
    fn response_time_is_flat_across_worker_counts() {
        // The paper's §4.1 experiment: per-query response time does not
        // change between 1 and 200 containers (with a healthy IP pool).
        let mut means = Vec::new();
        for &n in &[1usize, 50, 200] {
            let (mut t, jobs) = setup();
            let mut pool = IpPool::residential(256, RotationPolicy::RoundRobin, 3);
            let report = Orchestrator {
                n_workers: n,
                politeness: SimDuration::from_secs(5),
                seed: 3,
                retry: None,
            }
            .run(&mut t, &config(), &jobs, &mut pool);
            means.push(report.mean_hit_duration_s().unwrap());
        }
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min < 1.25, "response times varied: {means:?}");
    }

    #[test]
    fn single_shared_ip_trips_rate_limits_with_many_workers() {
        // The flip side: funnel 100 workers through one residential IP and
        // the BAT's per-IP limiter starts blocking.
        let (mut t, jobs) = setup();
        let mut pool = IpPool::residential(1, RotationPolicy::RoundRobin, 4);
        let report = Orchestrator {
            n_workers: 100,
            politeness: SimDuration::from_secs(1),
            seed: 4,
            retry: None,
        }
        .run(&mut t, &config(), &jobs, &mut pool);
        assert!(
            report.metrics.blocked > 0,
            "expected rate-limit blocks, got {:?}",
            report.metrics
        );
    }

    #[test]
    fn hit_rate_stays_high_under_paper_defaults() {
        let (mut t, jobs) = setup();
        let orch = Orchestrator::paper_default(5);
        let mut pool = IpPool::residential(128, RotationPolicy::RoundRobin, 5);
        let report = orch.run(&mut t, &config(), &jobs, &mut pool);
        assert!(
            report.metrics.hit_rate() > 0.75,
            "hit rate {}",
            report.metrics.hit_rate()
        );
    }

    #[test]
    fn runs_with_more_workers_than_jobs() {
        let (mut t, jobs) = setup();
        let few: Vec<QueryJob> = jobs.into_iter().take(3).collect();
        let orch = Orchestrator {
            n_workers: 64,
            politeness: SimDuration::from_secs(1),
            seed: 6,
            retry: None,
        };
        let mut pool = IpPool::residential(8, RotationPolicy::RoundRobin, 6);
        let report = orch.run(&mut t, &config(), &few, &mut pool);
        assert_eq!(report.records.len(), 3);
    }
}
