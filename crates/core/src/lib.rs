//! BQT — the broadband plan querying tool (the paper's §3 contribution).
//!
//! BQT takes a street address and extracts the broadband plans an ISP's
//! availability site (BAT) offers there, by driving the site the way a real
//! user would: submitting the address form, recognizing which template came
//! back, and responding — picking the best-matching suggestion when the
//! address is not recognized (with a zip-code sanity check), selecting a
//! random unit at multi-dwelling buildings, and clicking through the
//! existing-customer interstitial as a prospective new customer.
//!
//! Components:
//!
//! * [`scrape`] — template detection and per-dialect page parsers (the
//!   product of the paper's "manual bootstrapping" of each ISP's markup);
//! * [`client`] — configuration: matcher choice, settle-wait policy,
//!   retries, and the calibration routine that measures per-ISP settle
//!   pauses like the paper's max-observed-download-time rule;
//! * [`driver`] — the per-address workflow state machine and its timing
//!   accounting (everything Fig. 2 measures);
//! * [`metrics`] — hit-rate and query-time bookkeeping per ISP;
//! * [`orchestrator`] — the "docker containers" analogue: a discrete-event
//!   pool of concurrent workers with residential-IP rotation and politeness
//!   pacing (§4.1's scaling methodology), plus job requeueing with dead
//!   letters when a retry policy is attached;
//! * [`retry`] — job-level robustness: capped exponential backoff with
//!   seeded jitter, retry classification of outcomes, and per-endpoint
//!   circuit breakers in virtual time;
//! * [`campaign`] — the [`Campaign`] builder, the one entry point that
//!   composes orchestration, journaling, simulated crashes and telemetry
//!   recorders into a run;
//! * [`shard`] — multi-core campaigns: a fixed city×ISP partition into
//!   shards (own virtual clock, hermetic RNG stream and telemetry `seq`
//!   namespace each) executed on OS threads, with a watermark `(at, seq)`
//!   merge that keeps every artifact byte-identical to `threads = 1`;
//! * [`monitor`] — live campaign health over the telemetry stream:
//!   sliding-window aggregation, SLO alerting with hysteresis, Prometheus
//!   text exposition and a virtual-clock phase profiler;
//! * [`telemetry`] — structured event tracing on the virtual clock: a
//!   [`Recorder`](telemetry::Recorder) fan-out fed by the orchestrator and
//!   driver, with ring-buffer, JSONL and aggregating recorders;
//! * [`trace`] — causal span trees folded from the telemetry stream:
//!   per-job/per-request trace assembly, critical-path tail attribution,
//!   a deterministic slowest-trace exemplar reservoir and a
//!   Chrome/Perfetto `trace.json` exporter;
//! * [`strawman`] — the §3.2 baseline: a direct-API client that reuses one
//!   session cookie and trips the BATs' safeguards, motivating BQT's
//!   user-mimicry design.

pub mod campaign;
pub mod client;
pub mod drift;
pub mod driver;
pub mod journal;
pub mod metrics;
pub mod monitor;
pub mod orchestrator;
pub mod retry;
pub mod scrape;
pub mod shard;
pub mod shed;
pub mod strawman;
pub mod telemetry;
pub mod trace;

pub use campaign::{Campaign, CampaignOutcome};
pub use client::{BqtConfig, WaitPolicy};
pub use drift::{DriftMonitor, DriftReport};
pub use driver::{query_address, query_address_traced, QueryJob, QueryOutcome, QueryRecord};
pub use journal::{
    config_fingerprint, AttemptEntry, CampaignManifest, Journal, JournalError, RebootstrapEntry,
};
pub use metrics::{HitRateReport, Metrics};
pub use monitor::{
    render_folded, render_prometheus, Alert, CampaignSection, HealthReport, MonitorPolicy, SloRule,
    SloSignal, WindowSnapshot,
};
pub use orchestrator::{DeadLetter, Orchestrator, OrchestratorReport, ResumeStats};
pub use retry::{is_retryable, BackoffPolicy, BreakerConfig, CircuitBreaker, RetryPolicy};
pub use scrape::{
    learn_template_set, DetectedPage, LearnedTemplates, ScrapedPlan, TemplateSet, GENERATIONS,
};
pub use shard::{
    merge_events, merge_seq_streams, seq_counter, seq_shard, shard_seq, SeqEvent, ShardEnv,
    ShardPlan, ShardRecorder, ShardRun, ShardSpec, ShardedOutcome,
};
pub use shed::{ShedController, ShedDecision, ShedPolicy};
pub use telemetry::{
    Event, EventKind, JsonlRecorder, MetricsAggregator, Recorder, RingRecorder, Telemetry,
    TelemetrySummary,
};
pub use trace::{
    attribute, critical_path, render_trace_json, Attribution, ExemplarSet, Span, SpanKind, Trace,
    TraceAssembler,
};

/// The ~15 names nearly every campaign-driving example imports.
///
/// `use bqt::prelude::*;` covers configuring, running and observing a
/// campaign; reach into the individual modules for the long tail.
pub mod prelude {
    pub use crate::campaign::{Campaign, CampaignOutcome};
    pub use crate::client::{BqtConfig, WaitPolicy};
    pub use crate::drift::{DriftMonitor, DriftReport};
    pub use crate::driver::{query_address, QueryJob, QueryOutcome, QueryRecord};
    pub use crate::journal::{Journal, JournalError};
    pub use crate::metrics::Metrics;
    pub use crate::monitor::{HealthReport, MonitorPolicy, SloRule, SloSignal};
    pub use crate::orchestrator::{DeadLetter, Orchestrator, OrchestratorReport, ResumeStats};
    pub use crate::retry::RetryPolicy;
    pub use crate::shed::ShedPolicy;
    pub use crate::telemetry::{
        Event, EventKind, JsonlRecorder, MetricsAggregator, Recorder, RingRecorder,
        TelemetrySummary,
    };
    pub use crate::trace::{attribute, Attribution, ExemplarSet, Trace, TraceAssembler};
    pub use bbsim_net::{
        Endpoint, FaultPlan, IpPool, RotationPolicy, SimDuration, SimIp, SimTime, Transport,
    };
}
