//! The virtual-clock phase profiler: folds the campaign → worker → job →
//! attempt → page-fetch span tree into per-ISP, per-workflow-step time
//! attribution, rendered as flamegraph-compatible folded-stack lines.
//!
//! Every millisecond of every started worker's lifetime is attributed to
//! exactly one stack, so the per-worker frame totals each sum to the
//! campaign makespan (and the grand total to `workers × makespan`) — the
//! invariant the determinism suite checks. The default (stable) mode
//! charges whole attempts from [`EventKind::AttemptEnd`] spans, which are
//! replay-stable, so a resumed campaign folds to byte-identical output.
//! With `fetch_frames` enabled the profiler splits attempts further into
//! per-page `step_N` frames plus driver `overhead`, using the *ephemeral*
//! page-fetch spans — richer, but only meaningful for uninterrupted runs.

use crate::telemetry::EventKind;
use std::collections::{BTreeMap, HashMap};

/// Builds the folded-stack attribution incrementally from the stream.
#[derive(Debug)]
pub struct PhaseProfiler {
    fetch_frames: bool,
    /// Live page-fetch durations per `(tag, attempt)`, drained at its end.
    fetches: HashMap<(u64, u32), Vec<u64>>,
    /// Virtual ms per stack (frames `;`-joined, no root label).
    frames: BTreeMap<String, u64>,
    busy_ms: BTreeMap<u32, u64>,
}

impl PhaseProfiler {
    pub fn new(fetch_frames: bool) -> Self {
        Self {
            fetch_frames,
            fetches: HashMap::new(),
            frames: BTreeMap::new(),
            busy_ms: BTreeMap::new(),
        }
    }

    pub fn observe(&mut self, kind: &EventKind) {
        match kind {
            EventKind::PageFetchEnd {
                tag,
                attempt,
                duration_ms,
                ..
            } if self.fetch_frames => {
                self.fetches
                    .entry((*tag, *attempt))
                    .or_default()
                    .push(*duration_ms);
            }
            EventKind::AttemptEnd {
                tag,
                attempt,
                worker,
                endpoint,
                outcome,
                duration_ms,
                ..
            } => {
                *self.busy_ms.entry(*worker).or_default() += duration_ms;
                let stack = format!(
                    "worker_{worker:04};{endpoint};attempt_{attempt};{}",
                    outcome.as_str()
                );
                if self.fetch_frames {
                    // Fetch spans nest inside the attempt and never overlap,
                    // so their sum is bounded by the attempt duration; the
                    // remainder is driver work between pages.
                    let spans = self.fetches.remove(&(*tag, *attempt)).unwrap_or_default();
                    let mut rest = *duration_ms;
                    for (i, ms) in spans.iter().enumerate() {
                        let charged = (*ms).min(rest);
                        rest -= charged;
                        if charged > 0 {
                            *self.frames.entry(format!("{stack};step_{i}")).or_default() += charged;
                        }
                    }
                    if rest > 0 {
                        *self.frames.entry(format!("{stack};overhead")).or_default() += rest;
                    }
                } else {
                    *self.frames.entry(stack).or_default() += duration_ms;
                }
            }
            EventKind::ServeLookupEnd {
                shard,
                endpoint,
                outcome,
                cache_hit,
                duration_ms,
                ..
            } => {
                // The serve engine runs one virtual worker per shard, so
                // shard id doubles as the worker frame.
                *self.busy_ms.entry(*shard).or_default() += duration_ms;
                let stack = format!(
                    "worker_{shard:04};{endpoint};lookup;{};{}",
                    if *cache_hit {
                        "cache_hit"
                    } else {
                        "cache_miss"
                    },
                    outcome.as_str()
                );
                *self.frames.entry(stack).or_default() += duration_ms;
            }
            _ => {}
        }
    }

    /// Closes the profile at campaign end: each started worker's unspent
    /// lifetime becomes its `idle` frame.
    pub fn finish(mut self, makespan_ms: u64, started_workers: u32) -> BTreeMap<String, u64> {
        for worker in 0..started_workers {
            let busy = self.busy_ms.get(&worker).copied().unwrap_or(0);
            let idle = makespan_ms.saturating_sub(busy);
            if idle > 0 {
                self.frames.insert(format!("worker_{worker:04};idle"), idle);
            }
        }
        self.frames
    }
}

/// Renders frames to folded-stack lines rooted at `label`.
pub fn folded_lines(label: &str, frames: &BTreeMap<String, u64>, out: &mut String) {
    for (stack, ms) in frames {
        out.push_str(label);
        out.push(';');
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ms.to_string());
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::OutcomeCode;

    fn attempt_end(tag: u64, attempt: u32, worker: u32, ms: u64) -> EventKind {
        EventKind::AttemptEnd {
            tag,
            attempt,
            worker,
            endpoint: "isp/city".into(),
            outcome: OutcomeCode::Plans,
            duration_ms: ms,
            steps: 2,
        }
    }

    fn fetch_end(tag: u64, attempt: u32, fetch: u32, ms: u64) -> EventKind {
        EventKind::PageFetchEnd {
            tag,
            attempt,
            fetch,
            duration_ms: ms,
        }
    }

    #[test]
    fn stable_mode_charges_attempts_and_idle_to_the_makespan() {
        let mut p = PhaseProfiler::new(false);
        p.observe(&attempt_end(1, 1, 0, 40_000));
        p.observe(&attempt_end(2, 1, 0, 20_000));
        p.observe(&attempt_end(3, 1, 1, 55_000));
        let frames = p.finish(100_000, 2);
        assert_eq!(frames["worker_0000;isp/city;attempt_1;plans"], 60_000);
        assert_eq!(frames["worker_0000;idle"], 40_000);
        assert_eq!(frames["worker_0001;idle"], 45_000);
        // Per-worker totals each sum to the makespan.
        for w in ["worker_0000", "worker_0001"] {
            let total: u64 = frames
                .iter()
                .filter(|(k, _)| k.starts_with(w))
                .map(|(_, v)| *v)
                .sum();
            assert_eq!(total, 100_000, "{w}");
        }
    }

    #[test]
    fn fetch_mode_splits_attempts_into_steps_and_overhead() {
        let mut p = PhaseProfiler::new(true);
        p.observe(&fetch_end(1, 1, 0, 45_000));
        p.observe(&fetch_end(1, 1, 1, 30_000));
        p.observe(&attempt_end(1, 1, 0, 80_000));
        let frames = p.finish(80_000, 1);
        let stack = "worker_0000;isp/city;attempt_1;plans";
        assert_eq!(frames[&format!("{stack};step_0")], 45_000);
        assert_eq!(frames[&format!("{stack};step_1")], 30_000);
        assert_eq!(frames[&format!("{stack};overhead")], 5_000);
        let total: u64 = frames.values().sum();
        assert_eq!(total, 80_000);
    }

    #[test]
    fn folded_lines_are_sorted_and_root_labelled() {
        let mut p = PhaseProfiler::new(false);
        p.observe(&attempt_end(1, 1, 0, 10));
        let frames = p.finish(10, 1);
        let mut out = String::new();
        folded_lines("billings", &frames, &mut out);
        assert_eq!(out, "billings;worker_0000;isp/city;attempt_1;plans 10\n");
    }
}
