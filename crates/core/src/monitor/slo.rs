//! The SLO rule engine: declarative thresholds over window snapshots,
//! with hysteresis.
//!
//! Rules are evaluated at every bucket boundary of the sliding window —
//! i.e. on the virtual clock, never on wall time. A rule must breach on
//! `fire_after` *consecutive* evaluations before its alert opens, and
//! measure clean on `resolve_after` consecutive evaluations before it
//! closes, so a single noisy bucket cannot flap an alert. Boundaries where
//! the signal has no data (e.g. fewer than `min_samples` attempts in the
//! window) are skipped entirely: they neither fire nor resolve.

use super::window::WindowSnapshot;
use crate::telemetry::{Event, EventKind};
use bbsim_net::SimTime;

/// What a rule measures over the current window.
#[derive(Debug, Clone, PartialEq)]
pub enum SloSignal {
    /// Hits per finished attempt (breaches *below* threshold).
    HitRate,
    /// Windowed attempt-latency p50 in ms (breaches above).
    LatencyP50Ms,
    /// Windowed attempt-latency p99 in ms (breaches above).
    LatencyP99Ms,
    /// Retries per finished attempt (breaches above).
    RetryRate,
    /// Circuit-breaker flaps (opens) in the window (breaches above).
    BreakerFlaps,
    /// Watchdog stall reclaims in the window (breaches above).
    StallsReclaimed,
    /// Workers currently live (breaches *below* threshold).
    WorkersLive,
    /// Jobs begun but unfinished (breaches above).
    QueueDepth,
    /// Fraction of windowed attempts whose pages the template set
    /// recognized (breaches *below* threshold) — the drift signal.
    MatchConfidence,
    /// Fraction of windowed serve lookups the LRU answer cache satisfied
    /// (breaches *below* threshold).
    CacheHitRate,
}

impl SloSignal {
    /// The signal's current value, or `None` when the window cannot
    /// support a judgement yet.
    fn measure(&self, snap: &WindowSnapshot, scope: Option<&str>) -> Option<f64> {
        if let Some(endpoint) = scope {
            let e = snap.per_endpoint.get(endpoint)?;
            return match self {
                SloSignal::HitRate => e.hit_rate(),
                SloSignal::LatencyP50Ms => e.latency.quantile_ms(0.5).map(|v| v as f64),
                SloSignal::LatencyP99Ms => e.latency.quantile_ms(0.99).map(|v| v as f64),
                SloSignal::MatchConfidence => e.match_confidence(),
                // The remaining signals are campaign-wide; a scoped rule
                // over them still reads the global value.
                _ => self.measure(snap, None),
            };
        }
        match self {
            SloSignal::HitRate => snap.hit_rate(),
            SloSignal::LatencyP50Ms => snap.p50_ms().map(|v| v as f64),
            SloSignal::LatencyP99Ms => snap.p99_ms().map(|v| v as f64),
            SloSignal::RetryRate => snap.retry_rate(),
            SloSignal::BreakerFlaps => Some(snap.breaker_trips as f64),
            SloSignal::StallsReclaimed => Some(snap.stalls as f64),
            SloSignal::WorkersLive => Some(snap.workers_live as f64),
            SloSignal::QueueDepth => Some(snap.jobs_open as f64),
            SloSignal::MatchConfidence => snap.match_confidence(),
            SloSignal::CacheHitRate => snap.cache_hit_rate(),
        }
    }

    /// Whether the rule breaches when the signal falls *below* the
    /// threshold (true for the "health floor" signals).
    fn breaches_below(&self) -> bool {
        matches!(
            self,
            SloSignal::HitRate
                | SloSignal::WorkersLive
                | SloSignal::MatchConfidence
                | SloSignal::CacheHitRate
        )
    }
}

/// One declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Unique label; appears in `AlertFired`/`AlertResolved` events.
    pub name: String,
    pub signal: SloSignal,
    /// Restrict the signal to one endpoint (`None` = whole campaign).
    pub endpoint: Option<String>,
    pub threshold: f64,
    /// Attempts the window must hold before the rule is evaluated at all.
    /// Scoped rules count only the scoped endpoint's attempts — a trickle
    /// of stragglers on one endpoint must not flap its alert.
    pub min_samples: u64,
    /// Consecutive breaching evaluations before the alert fires.
    pub fire_after: u32,
    /// Consecutive clean evaluations before an active alert resolves.
    pub resolve_after: u32,
}

impl SloRule {
    fn base(name: &str, signal: SloSignal, threshold: f64) -> Self {
        Self {
            name: name.to_string(),
            signal,
            endpoint: None,
            threshold,
            min_samples: 10,
            fire_after: 2,
            resolve_after: 3,
        }
    }

    /// `hit_rate >= threshold` over the window.
    pub fn hit_rate_at_least(threshold: f64) -> Self {
        Self::base("hit_rate", SloSignal::HitRate, threshold)
    }

    /// Windowed attempt-latency p99 must stay at or below `ms`.
    pub fn p99_latency_at_most(ms: u64) -> Self {
        Self::base("p99_latency", SloSignal::LatencyP99Ms, ms as f64)
    }

    /// Breaker flaps per window must stay at or below `n`.
    pub fn breaker_flaps_at_most(n: u64) -> Self {
        Self {
            min_samples: 0,
            ..Self::base("breaker_flaps", SloSignal::BreakerFlaps, n as f64)
        }
    }

    /// Retries per attempt must stay at or below `rate`.
    pub fn retry_rate_at_most(rate: f64) -> Self {
        Self::base("retry_rate", SloSignal::RetryRate, rate)
    }

    /// Template match confidence must stay at or above `threshold` —
    /// degradation means the endpoint's markup drifted away from the
    /// bootstrapped template set.
    pub fn match_confidence_at_least(threshold: f64) -> Self {
        Self::base("match_confidence", SloSignal::MatchConfidence, threshold)
    }

    /// Serve answer-cache hit rate must stay at or above `threshold` —
    /// a collapse means the request mix outran the cache (e.g. a
    /// cache-hostile scan is sweeping distinct keys).
    pub fn cache_hit_rate_at_least(threshold: f64) -> Self {
        Self::base("cache_hit_rate", SloSignal::CacheHitRate, threshold)
    }

    /// Scopes the rule to one endpoint and tags the name with it.
    pub fn scoped(mut self, endpoint: &str) -> Self {
        self.name = format!("{}:{}", self.name, endpoint);
        self.endpoint = Some(endpoint.to_string());
        self
    }

    /// Overrides the hysteresis counts.
    pub fn hysteresis(mut self, fire_after: u32, resolve_after: u32) -> Self {
        self.fire_after = fire_after.max(1);
        self.resolve_after = resolve_after.max(1);
        self
    }

    /// Overrides the evaluation floor.
    pub fn min_samples(mut self, n: u64) -> Self {
        self.min_samples = n;
        self
    }

    /// Whether the measured `value` violates the objective.
    fn breached(&self, value: f64) -> bool {
        if self.signal.breaches_below() {
            value < self.threshold
        } else {
            value > self.threshold
        }
    }
}

/// One opened (and possibly closed) alert, in firing order.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    pub rule: String,
    pub fired_at: SimTime,
    pub resolved_at: Option<SimTime>,
    /// The signal's value at the evaluation that fired the alert.
    pub value: f64,
    /// Comma-joined slowest-trace exemplar ids at fire time.
    pub exemplars: String,
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    breaching: u32,
    clean: u32,
    /// Index into the engine's alert log while the alert is open.
    active: Option<usize>,
}

/// Evaluates every rule at each window boundary and owns the alert log.
#[derive(Debug)]
pub struct SloEngine {
    rules: Vec<(SloRule, RuleState)>,
    alerts: Vec<Alert>,
}

impl SloEngine {
    pub fn new(rules: Vec<SloRule>) -> Self {
        Self {
            rules: rules
                .into_iter()
                .map(|r| (r, RuleState::default()))
                .collect(),
            alerts: Vec::new(),
        }
    }

    /// Evaluates all rules against `snap` at boundary time `at`, appending
    /// any `AlertFired`/`AlertResolved` events to `out`. `exemplars` is
    /// the comma-joined slowest-trace ids current at this boundary — every
    /// alert that fires carries it, so a page names the offending traces.
    /// Returns how many alerts fired at this boundary.
    pub fn evaluate(
        &mut self,
        at: SimTime,
        snap: &WindowSnapshot,
        exemplars: &str,
        out: &mut Vec<Event>,
    ) -> u32 {
        let mut fired = 0;
        for (rule, state) in &mut self.rules {
            let samples = match rule.endpoint.as_deref() {
                Some(e) => snap.per_endpoint.get(e).map_or(0, |s| s.attempts),
                None => snap.attempts,
            };
            if samples < rule.min_samples {
                continue;
            }
            let Some(value) = rule.signal.measure(snap, rule.endpoint.as_deref()) else {
                continue;
            };
            if rule.breached(value) {
                state.breaching += 1;
                state.clean = 0;
                if state.active.is_none() && state.breaching >= rule.fire_after {
                    state.active = Some(self.alerts.len());
                    self.alerts.push(Alert {
                        rule: rule.name.clone(),
                        fired_at: at,
                        resolved_at: None,
                        value,
                        exemplars: exemplars.to_string(),
                    });
                    out.push(Event {
                        at,
                        kind: EventKind::AlertFired {
                            rule: rule.name.clone(),
                            exemplars: exemplars.to_string(),
                        },
                    });
                    fired += 1;
                }
            } else {
                state.clean += 1;
                state.breaching = 0;
                if let Some(idx) = state.active {
                    if state.clean >= rule.resolve_after {
                        self.alerts[idx].resolved_at = Some(at);
                        state.active = None;
                        out.push(Event {
                            at,
                            kind: EventKind::AlertResolved {
                                rule: rule.name.clone(),
                            },
                        });
                    }
                }
            }
        }
        fired
    }

    pub fn into_alerts(self) -> Vec<Alert> {
        self.alerts
    }

    #[cfg(test)]
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Histogram;

    fn snap(attempts: u64, hits: u64) -> WindowSnapshot {
        let mut latency = Histogram::new();
        for _ in 0..attempts {
            latency.record(50_000);
        }
        WindowSnapshot {
            attempts,
            hits,
            latency,
            ..WindowSnapshot::default()
        }
    }

    fn eval(engine: &mut SloEngine, ms: u64, s: &WindowSnapshot) -> Vec<Event> {
        let mut out = Vec::new();
        engine.evaluate(SimTime::from_millis(ms), s, "isp:2a@0", &mut out);
        out
    }

    #[test]
    fn hysteresis_gates_both_edges() {
        let rule = SloRule::hit_rate_at_least(0.95)
            .hysteresis(2, 3)
            .min_samples(5);
        let mut engine = SloEngine::new(vec![rule]);
        // One breaching boundary: not enough to fire.
        assert!(eval(&mut engine, 60_000, &snap(20, 10)).is_empty());
        // Second consecutive breach: fires.
        let events = eval(&mut engine, 120_000, &snap(20, 10));
        assert!(matches!(
            &events[0].kind,
            EventKind::AlertFired { rule, exemplars } if rule == "hit_rate" && exemplars == "isp:2a@0"
        ));
        // Two clean boundaries: still open (resolve_after = 3)...
        assert!(eval(&mut engine, 180_000, &snap(20, 20)).is_empty());
        assert!(eval(&mut engine, 240_000, &snap(20, 20)).is_empty());
        // ...third resolves it.
        let events = eval(&mut engine, 300_000, &snap(20, 20));
        assert!(matches!(&events[0].kind, EventKind::AlertResolved { rule } if rule == "hit_rate"));
        let alerts = engine.into_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].fired_at, SimTime::from_millis(120_000));
        assert_eq!(alerts[0].resolved_at, Some(SimTime::from_millis(300_000)));
        assert!((alerts[0].value - 0.5).abs() < 1e-9);
    }

    #[test]
    fn a_clean_boundary_resets_the_breach_streak() {
        let rule = SloRule::hit_rate_at_least(0.95)
            .hysteresis(2, 1)
            .min_samples(1);
        let mut engine = SloEngine::new(vec![rule]);
        assert!(eval(&mut engine, 1, &snap(10, 5)).is_empty());
        assert!(eval(&mut engine, 2, &snap(10, 10)).is_empty());
        // The earlier breach no longer counts toward the streak.
        assert!(eval(&mut engine, 3, &snap(10, 5)).is_empty());
        assert!(!eval(&mut engine, 4, &snap(10, 5)).is_empty());
    }

    #[test]
    fn min_samples_suppresses_judgement_on_thin_windows() {
        let rule = SloRule::hit_rate_at_least(0.95)
            .hysteresis(1, 1)
            .min_samples(50);
        let mut engine = SloEngine::new(vec![rule]);
        assert!(eval(&mut engine, 1, &snap(49, 0)).is_empty());
        assert!(!eval(&mut engine, 2, &snap(50, 0)).is_empty());
    }

    #[test]
    fn above_signals_breach_above_and_track_their_value() {
        let rule = SloRule::breaker_flaps_at_most(2).hysteresis(1, 1);
        let mut engine = SloEngine::new(vec![rule]);
        let mut s = snap(10, 10);
        s.breaker_trips = 2;
        assert!(eval(&mut engine, 1, &s).is_empty(), "at threshold is fine");
        s.breaker_trips = 3;
        assert!(!eval(&mut engine, 2, &s).is_empty());
        assert!((engine.alerts()[0].value - 3.0).abs() < 1e-9);
    }
}
