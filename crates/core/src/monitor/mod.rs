//! Live campaign observability: sliding-window health, SLO alerting,
//! metrics exposition and a virtual-clock phase profiler.
//!
//! The ROADMAP's telemetry layer narrates a campaign; this module *judges*
//! it while it runs. A [`CampaignMonitor`] rides inside the
//! [`Telemetry`](crate::telemetry::Telemetry) fan-out (installed via
//! `Campaign::monitor`) and maintains:
//!
//! * a [`SlidingWindow`] — a ring of virtual-time buckets tracking hit
//!   rate, latency p50/p99, retry and breaker-flap rate, queue depth, shed
//!   level and worker liveness;
//! * an [`SloEngine`](slo::SloEngine) of declarative [`SloRule`]s with
//!   hysteresis, which emits [`AlertFired`](crate::telemetry::EventKind)/
//!   `AlertResolved` events back into the stream and can optionally
//!   escalate to the load-shedder;
//! * a [`PhaseProfiler`](profile::PhaseProfiler) folding the span tree
//!   into flamegraph-compatible folded stacks.
//!
//! At campaign end the monitor condenses into a [`HealthReport`]
//! (`OrchestratorReport::health`), from which [`render_prometheus`] and
//! [`render_folded`] produce the `health.prom` / `profile.folded`
//! artifacts the dataset pipeline writes next to `events.jsonl`.
//!
//! ## Determinism
//!
//! The monitor consumes only the *replay-stable* event subset and orders
//! it by virtual time before folding (the raw stream is in emission
//! order, where an attempt's end is announced ahead of later-emitted but
//! earlier-stamped events; a watermark heap restores time order exactly).
//! Windows, alerts, the exposition and the stable profile are therefore
//! byte-identical across repeated runs *and* across crash+resume — the
//! invariant the `health` CI job enforces. Only `profile_fetches` mode
//! (per-page `step_N` frames) reads ephemeral events and gives up the
//! resume half of that guarantee.

mod expo;
mod merge;
mod profile;
mod slo;
mod window;

pub use expo::{render_folded, render_prometheus, CampaignSection};
pub use merge::{advances_watermark, WatermarkHeap};
pub use slo::{Alert, SloRule, SloSignal};
pub use window::{EndpointWindow, WindowSnapshot};

use crate::telemetry::{Event, EventKind};
use crate::trace::{ExemplarSet, TraceAssembler};
use bbsim_net::{SimDuration, SimTime};
use slo::SloEngine;
use std::collections::BTreeMap;

/// Configuration for a campaign's live monitor.
#[derive(Debug, Clone)]
pub struct MonitorPolicy {
    /// Width of one window bucket on the virtual clock.
    pub bucket: SimDuration,
    /// Buckets in the ring; window span = `bucket × buckets`.
    pub buckets: usize,
    /// The SLOs to watch. Rules are evaluated at every bucket boundary.
    pub rules: Vec<SloRule>,
    /// Ask the load-shedder to cut the concurrency ceiling whenever an
    /// alert fires (the orchestrator polls this between loop steps).
    pub escalate: bool,
    /// Split profiled attempts into per-page `step_N` frames using the
    /// ephemeral page-fetch spans. Richer attribution, but a resumed run
    /// no longer folds identically — leave off for journaled campaigns.
    pub profile_fetches: bool,
    /// Capture a window snapshot every so often (for dashboards); the
    /// final snapshot is always captured.
    pub checkpoint_every: Option<SimDuration>,
    /// Global capacity of the slowest-trace exemplar reservoir (the
    /// slowest trace per endpoint is kept regardless). Exemplar ids ride
    /// on `AlertFired` events and `# EXEMPLAR` lines in `health.prom`.
    pub exemplars: usize,
}

impl MonitorPolicy {
    /// The paper-scale defaults: 10 one-minute buckets, hit rate ≥ 0.95
    /// over the window, p99 attempt latency ≤ 10 virtual minutes, at most
    /// 10 breaker flaps per window. No escalation, stable profile.
    pub fn paper_default() -> Self {
        Self {
            bucket: SimDuration::from_secs(60),
            buckets: 10,
            rules: vec![
                SloRule::hit_rate_at_least(0.95),
                SloRule::p99_latency_at_most(600_000),
                SloRule::breaker_flaps_at_most(10),
            ],
            escalate: false,
            profile_fetches: false,
            checkpoint_every: None,
            exemplars: 3,
        }
    }

    pub fn rules(mut self, rules: Vec<SloRule>) -> Self {
        self.rules = rules;
        self
    }

    pub fn escalate(mut self, on: bool) -> Self {
        self.escalate = on;
        self
    }

    pub fn profile_fetches(mut self, on: bool) -> Self {
        self.profile_fetches = on;
        self
    }

    pub fn checkpoint_every(mut self, every: SimDuration) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    pub fn exemplars(mut self, k: usize) -> Self {
        self.exemplars = k;
        self
    }
}

/// What the monitor knows once the campaign ends.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Every alert that fired, in firing order (unresolved ones keep
    /// `resolved_at: None`).
    pub alerts: Vec<Alert>,
    /// The sliding window's state at campaign end.
    pub window: WindowSnapshot,
    /// `(virtual_ms, snapshot)` at each checkpoint interval, if enabled.
    pub checkpoints: Vec<(u64, WindowSnapshot)>,
    /// Folded-stack frames: virtual ms per `;`-joined stack (no root
    /// label; [`render_folded`] prepends the campaign label).
    pub frames: BTreeMap<String, u64>,
    pub makespan_ms: u64,
    /// Workers that actually entered the pool.
    pub started_workers: u32,
    /// Shed cuts the SLO engine requested (granted or not).
    pub escalations: u64,
    /// The slowest-trace exemplars assembled from the same ordered
    /// stream the window consumed (see [`crate::trace`]).
    pub exemplars: ExemplarSet,
}

impl HealthReport {
    pub fn alerts_fired(&self) -> u64 {
        self.alerts.len() as u64
    }

    pub fn alerts_resolved(&self) -> u64 {
        self.alerts
            .iter()
            .filter(|a| a.resolved_at.is_some())
            .count() as u64
    }

    /// Alerts still open at campaign end.
    pub fn alerts_active(&self) -> u64 {
        self.alerts_fired() - self.alerts_resolved()
    }

    /// One-line pass/fail: healthy means nothing is burning *now*.
    pub fn healthy(&self) -> bool {
        self.alerts_active() == 0
    }
}

/// The live monitor: windows, SLO engine and profiler over one campaign.
pub struct CampaignMonitor {
    policy: MonitorPolicy,
    window: window::SlidingWindow,
    engine: SloEngine,
    profiler: profile::PhaseProfiler,
    assembler: TraceAssembler,
    heap: WatermarkHeap<EventKind>,
    seq: u64,
    pending: Vec<Event>,
    escalation_pending: bool,
    escalations: u64,
    checkpoints: Vec<(u64, WindowSnapshot)>,
    next_checkpoint_ms: Option<u64>,
    makespan_ms: u64,
    started_workers: u32,
}

impl CampaignMonitor {
    pub fn new(policy: MonitorPolicy) -> Self {
        let window = window::SlidingWindow::new(policy.bucket.as_millis(), policy.buckets);
        let engine = SloEngine::new(policy.rules.clone());
        let profiler = profile::PhaseProfiler::new(policy.profile_fetches);
        let next_checkpoint_ms = policy.checkpoint_every.map(|d| d.as_millis().max(1));
        let assembler = TraceAssembler::new(policy.exemplars);
        Self {
            policy,
            window,
            engine,
            profiler,
            assembler,
            heap: WatermarkHeap::new(),
            seq: 0,
            pending: Vec::new(),
            escalation_pending: false,
            escalations: 0,
            checkpoints: Vec::new(),
            next_checkpoint_ms,
            makespan_ms: 0,
            started_workers: 0,
        }
    }

    /// Feeds one event of the stream, in emission order.
    pub fn observe(&mut self, event: &Event) {
        if !event.kind.replay_stable() {
            // Ephemeral events never reach the window or the SLO engine;
            // the profiler reads page fetches only in fetch-frames mode.
            if self.policy.profile_fetches {
                self.profiler.observe(&event.kind);
            }
            return;
        }
        self.profiler.observe(&event.kind);
        match &event.kind {
            EventKind::WorkerBegin { .. } => self.started_workers += 1,
            EventKind::CampaignEnd { makespan_ms } => self.makespan_ms = *makespan_ms,
            _ => {}
        }
        self.seq += 1;
        self.heap
            .push(event.at.as_millis(), self.seq, event.kind.clone());
        if advances_watermark(&event.kind) {
            self.heap.advance(event.at.as_millis());
            self.drain();
        }
    }

    fn drain(&mut self) {
        while let Some((at_ms, _, kind)) = self.heap.pop_ready() {
            self.process(at_ms, &kind);
        }
    }

    /// Handles one event in exact virtual-time order: cross any bucket
    /// boundaries (evaluating the SLO rules at each) and checkpoint
    /// instants up to its timestamp, then fold it into the open bucket.
    fn process(&mut self, at_ms: u64, kind: &EventKind) {
        loop {
            let boundary = self.window.next_boundary_ms();
            let checkpoint = self.next_checkpoint_ms.unwrap_or(u64::MAX);
            if boundary.min(checkpoint) > at_ms {
                break;
            }
            if checkpoint < boundary {
                let snap = self.window.snapshot(checkpoint);
                self.checkpoints.push((checkpoint, snap));
                self.next_checkpoint_ms = self
                    .policy
                    .checkpoint_every
                    .map(|every| checkpoint + every.as_millis());
                continue;
            }
            let snap = self.window.snapshot(boundary);
            let exemplars = self.assembler.exemplar_csv();
            let fired = self.engine.evaluate(
                SimTime::from_millis(boundary),
                &snap,
                &exemplars,
                &mut self.pending,
            );
            if fired > 0 && self.policy.escalate {
                self.escalation_pending = true;
                self.escalations += fired as u64;
            }
            if checkpoint == boundary {
                self.checkpoints.push((boundary, snap));
                self.next_checkpoint_ms = self
                    .policy
                    .checkpoint_every
                    .map(|every| boundary + every.as_millis());
            }
            self.window.rotate();
        }
        self.window.record(kind);
        self.assembler.ingest(at_ms, kind);
    }

    /// Alert events synthesized since the last call, in order.
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.pending)
    }

    /// True once per pending escalation request; clears it.
    pub fn take_escalation(&mut self) -> bool {
        std::mem::take(&mut self.escalation_pending)
    }

    /// The window's current state (for live dashboards).
    pub fn snapshot(&self) -> WindowSnapshot {
        self.window.snapshot(self.heap.watermark())
    }

    /// Condenses the monitor into its final report. Call after the stream
    /// ended (`CampaignEnd` drains the heap completely).
    pub fn finish(mut self) -> HealthReport {
        // Belt and braces: a truncated stream (simulated crash) may leave
        // future-stamped events queued. Fold them so nothing is lost.
        self.heap.advance(u64::MAX);
        self.drain();
        let window = self.window.snapshot(self.makespan_ms);
        HealthReport {
            alerts: self.engine.into_alerts(),
            window,
            checkpoints: self.checkpoints,
            frames: self.profiler.finish(self.makespan_ms, self.started_workers),
            makespan_ms: self.makespan_ms,
            started_workers: self.started_workers,
            escalations: self.escalations,
            exemplars: self.assembler.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::OutcomeCode;

    fn e(ms: u64, kind: EventKind) -> Event {
        Event {
            at: SimTime::from_millis(ms),
            kind,
        }
    }

    fn attempt_pair(monitor: &mut CampaignMonitor, begin_ms: u64, ms: u64, hit: bool) {
        monitor.observe(&e(
            begin_ms,
            EventKind::AttemptBegin {
                tag: begin_ms,
                attempt: 1,
                worker: 0,
                endpoint: "isp/city".into(),
            },
        ));
        monitor.observe(&e(
            begin_ms + ms,
            EventKind::AttemptEnd {
                tag: begin_ms,
                attempt: 1,
                worker: 0,
                endpoint: "isp/city".into(),
                outcome: if hit {
                    OutcomeCode::Plans
                } else {
                    OutcomeCode::Failed
                },
                duration_ms: ms,
                steps: 2,
            },
        ));
    }

    fn policy() -> MonitorPolicy {
        MonitorPolicy::paper_default().rules(vec![SloRule::hit_rate_at_least(0.9)
            .hysteresis(1, 1)
            .min_samples(1)])
    }

    #[test]
    fn failing_attempts_fire_an_alert_and_recovery_resolves_it() {
        let mut m = CampaignMonitor::new(policy());
        m.observe(&e(
            0,
            EventKind::CampaignBegin {
                seed: 1,
                n_jobs: 10,
                n_workers: 1,
            },
        ));
        m.observe(&e(0, EventKind::WorkerBegin { worker: 0 }));
        for i in 0..10 {
            attempt_pair(&mut m, i * 10_000, 5_000, false);
        }
        // Crossing the first bucket boundary evaluates the rule.
        attempt_pair(&mut m, 70_000, 5_000, true);
        let fired: Vec<Event> = m.take_events();
        assert!(
            matches!(&fired[0].kind, EventKind::AlertFired { rule, .. } if rule == "hit_rate"),
            "got {fired:?}"
        );
        // Pure hits until the failure buckets (0–120 s) rotate out of the
        // ten-minute window: the 720 s boundary is the first clean one, so
        // traffic must push the watermark past it.
        for i in 0..13 {
            attempt_pair(&mut m, 80_000 + i * 60_000, 5_000, true);
        }
        let resolved = m.take_events();
        assert!(resolved
            .iter()
            .any(|ev| matches!(&ev.kind, EventKind::AlertResolved { .. })));
        m.observe(&e(900_000, EventKind::WorkerEnd { worker: 0 }));
        m.observe(&e(
            900_000,
            EventKind::CampaignEnd {
                makespan_ms: 900_000,
            },
        ));
        let report = m.finish();
        assert_eq!(report.alerts_fired(), 1);
        assert_eq!(report.alerts_resolved(), 1);
        assert!(report.healthy());
        assert_eq!(report.makespan_ms, 900_000);
        assert_eq!(report.started_workers, 1);
    }

    #[test]
    fn out_of_order_emission_is_refolded_into_time_order() {
        // An attempt's end is emitted before a later AttemptBegin with an
        // *earlier* timestamp — the heap must hold it back so the early
        // attempt lands in the early bucket.
        let mut m = CampaignMonitor::new(policy());
        m.observe(&e(0, EventKind::WorkerBegin { worker: 0 }));
        m.observe(&e(
            0,
            EventKind::AttemptBegin {
                tag: 1,
                attempt: 1,
                worker: 0,
                endpoint: "isp/city".into(),
            },
        ));
        // Stamped at 70s, emitted now: waits in the heap.
        m.observe(&e(
            70_000,
            EventKind::AttemptEnd {
                tag: 1,
                attempt: 1,
                worker: 0,
                endpoint: "isp/city".into(),
                outcome: OutcomeCode::Failed,
                duration_ms: 70_000,
                steps: 1,
            },
        ));
        // No boundary has been crossed yet: the watermark is still at 0.
        assert!(m.take_events().is_empty());
        attempt_pair(&mut m, 10_000, 5_000, true);
        // Still none: watermark 15s < first boundary 60s.
        assert!(m.take_events().is_empty());
        // This begin pushes the watermark past 60s; the boundary sees only
        // the 15s hit (the 70s failure is still in the future), so the
        // hit-rate rule stays clean.
        m.observe(&e(
            61_000,
            EventKind::AttemptBegin {
                tag: 3,
                attempt: 1,
                worker: 0,
                endpoint: "isp/city".into(),
            },
        ));
        assert!(m.take_events().is_empty());
        m.observe(&e(
            200_000,
            EventKind::CampaignEnd {
                makespan_ms: 200_000,
            },
        ));
        let report = m.finish();
        // Both attempts were eventually folded in.
        assert_eq!(report.window.attempts, 2);
    }

    #[test]
    fn checkpoints_capture_window_evolution() {
        let mut m = CampaignMonitor::new(policy().checkpoint_every(SimDuration::from_secs(90)));
        m.observe(&e(0, EventKind::WorkerBegin { worker: 0 }));
        for i in 0..4 {
            attempt_pair(&mut m, i * 60_000, 5_000, true);
        }
        m.observe(&e(
            300_000,
            EventKind::CampaignEnd {
                makespan_ms: 300_000,
            },
        ));
        let report = m.finish();
        let at: Vec<u64> = report.checkpoints.iter().map(|(ms, _)| *ms).collect();
        assert_eq!(at, vec![90_000, 180_000, 270_000]);
        assert!(report.checkpoints[0].1.attempts >= 1);
    }

    #[test]
    fn exemplar_trace_ids_ride_alerts_and_land_on_the_report() {
        let mut m = CampaignMonitor::new(policy());
        m.observe(&e(0, EventKind::WorkerBegin { worker: 0 }));
        for i in 0..10u64 {
            let t = i * 5_000;
            m.observe(&e(
                t,
                EventKind::JobBegin {
                    tag: t,
                    endpoint: "isp/city".into(),
                },
            ));
            attempt_pair(&mut m, t, 4_000, false);
            m.observe(&e(
                t + 4_000,
                EventKind::JobEnd {
                    tag: t,
                    outcome: OutcomeCode::Failed,
                    attempts: 1,
                    dead_lettered: false,
                },
            ));
        }
        // Crossing the first bucket boundary fires the hit-rate rule; by
        // then the completed jobs above are in the reservoir.
        attempt_pair(&mut m, 70_000, 5_000, true);
        let fired = m.take_events();
        let EventKind::AlertFired { rule, exemplars } = &fired[0].kind else {
            panic!("expected AlertFired, got {fired:?}");
        };
        assert_eq!(rule, "hit_rate");
        // All ties at 4 s — the earliest-finished three win, in order.
        assert_eq!(
            exemplars,
            "isp/city:0@0,isp/city:1388@5000,isp/city:2710@10000"
        );
        m.observe(&e(
            100_000,
            EventKind::CampaignEnd {
                makespan_ms: 100_000,
            },
        ));
        let report = m.finish();
        assert_eq!(report.exemplars.global.len(), 3);
        assert_eq!(report.exemplars.csv(), *exemplars);
        assert_eq!(report.exemplars.per_endpoint["isp/city"].tag, 0);
    }

    #[test]
    fn escalation_is_requested_only_when_enabled() {
        for (escalate, expect) in [(false, false), (true, true)] {
            let mut m = CampaignMonitor::new(policy().escalate(escalate));
            m.observe(&e(0, EventKind::WorkerBegin { worker: 0 }));
            for i in 0..10 {
                attempt_pair(&mut m, i * 5_000, 2_000, false);
            }
            attempt_pair(&mut m, 70_000, 1_000, false);
            assert_eq!(m.take_escalation(), expect);
            assert!(!m.take_escalation(), "request is one-shot");
        }
    }
}
