//! Sliding-window aggregation on the virtual clock.
//!
//! A [`SlidingWindow`] is a ring of fixed-width time buckets plus a small
//! set of instantaneous gauges. Replay-stable events are folded into the
//! bucket their timestamp falls in; the window "slides" by rotating the
//! ring each time virtual time crosses a bucket boundary, which is also
//! when the SLO engine evaluates its rules (see [`super::slo`]). Everything
//! is a pure function of the stable event subset, so a resumed campaign
//! reproduces the exact window history of an uninterrupted one.

use crate::telemetry::{EventKind, Histogram};
use std::collections::{BTreeMap, VecDeque};

/// Counters one time bucket accumulates.
#[derive(Debug, Clone, Default)]
struct Bucket {
    attempts: u64,
    hits: u64,
    latency: Histogram,
    retries: u64,
    breaker_trips: u64,
    breaker_defers: u64,
    shed_cuts: u64,
    stalls: u64,
    drift_suspected: u64,
    rebootstraps: u64,
    cache_lookups: u64,
    cache_hits: u64,
    cache_evictions: u64,
    serve_sheds: u64,
    per_endpoint: BTreeMap<String, EndpointWindow>,
}

impl Bucket {
    fn absorb_into(&self, snap: &mut WindowSnapshot) {
        snap.attempts += self.attempts;
        snap.hits += self.hits;
        snap.latency.merge(&self.latency);
        snap.retries += self.retries;
        snap.breaker_trips += self.breaker_trips;
        snap.breaker_defers += self.breaker_defers;
        snap.shed_cuts += self.shed_cuts;
        snap.stalls += self.stalls;
        snap.drift_suspected += self.drift_suspected;
        snap.rebootstraps += self.rebootstraps;
        snap.cache_lookups += self.cache_lookups;
        snap.cache_hits += self.cache_hits;
        snap.cache_evictions += self.cache_evictions;
        snap.serve_sheds += self.serve_sheds;
        for (endpoint, e) in &self.per_endpoint {
            let t = snap.per_endpoint.entry(endpoint.clone()).or_default();
            t.attempts += e.attempts;
            t.hits += e.hits;
            t.latency.merge(&e.latency);
            t.drift_suspected += e.drift_suspected;
        }
    }
}

/// One endpoint's share of a window (or bucket).
#[derive(Debug, Clone, Default)]
pub struct EndpointWindow {
    pub attempts: u64,
    pub hits: u64,
    pub latency: Histogram,
    /// Unrecognized-page sightings charged to this endpoint.
    pub drift_suspected: u64,
}

impl EndpointWindow {
    pub fn hit_rate(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.hits as f64 / self.attempts as f64)
    }

    /// Fraction of windowed attempts whose pages the template set
    /// recognized — the per-ISP drift health signal.
    pub fn match_confidence(&self) -> Option<f64> {
        (self.attempts > 0)
            .then(|| 1.0 - self.drift_suspected.min(self.attempts) as f64 / self.attempts as f64)
    }
}

/// The merged view of a window at one instant: counters summed over the
/// ring's buckets plus the current value of each gauge.
#[derive(Debug, Clone, Default)]
pub struct WindowSnapshot {
    /// Start of the oldest bucket covered (virtual ms).
    pub from_ms: u64,
    /// The instant the snapshot was taken (virtual ms).
    pub at_ms: u64,
    pub attempts: u64,
    pub hits: u64,
    /// Attempt latency inside the window.
    pub latency: Histogram,
    pub retries: u64,
    /// Breaker flaps (circuit opens) inside the window.
    pub breaker_trips: u64,
    pub breaker_defers: u64,
    pub shed_cuts: u64,
    pub stalls: u64,
    /// Unrecognized-page sightings inside the window.
    pub drift_suspected: u64,
    /// Re-bootstrap cycles begun inside the window.
    pub rebootstraps: u64,
    /// Serve lookups inside the window (cache hits + misses).
    pub cache_lookups: u64,
    /// Serve lookups the LRU answer cache satisfied inside the window.
    pub cache_hits: u64,
    /// Serve answer-cache evictions inside the window.
    pub cache_evictions: u64,
    /// Serve lookups refused at admission inside the window.
    pub serve_sheds: u64,
    pub per_endpoint: BTreeMap<String, EndpointWindow>,
    /// Workers currently inside their worker span.
    pub workers_live: u32,
    /// Jobs begun but not yet finished (queue depth).
    pub jobs_open: u32,
    /// Current shed ceiling, if the controller has ever spoken.
    pub shed_limit: Option<u32>,
}

impl WindowSnapshot {
    pub fn hit_rate(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.hits as f64 / self.attempts as f64)
    }

    /// Retries per finished attempt inside the window.
    pub fn retry_rate(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.retries as f64 / self.attempts as f64)
    }

    pub fn p50_ms(&self) -> Option<u64> {
        self.latency.quantile_ms(0.5)
    }

    pub fn p99_ms(&self) -> Option<u64> {
        self.latency.quantile_ms(0.99)
    }

    /// Fraction of windowed attempts whose pages the template set
    /// recognized, across all endpoints.
    pub fn match_confidence(&self) -> Option<f64> {
        (self.attempts > 0)
            .then(|| 1.0 - self.drift_suspected.min(self.attempts) as f64 / self.attempts as f64)
    }

    /// Fraction of windowed serve lookups the answer cache satisfied.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        (self.cache_lookups > 0).then(|| self.cache_hits as f64 / self.cache_lookups as f64)
    }
}

/// Ring of time buckets over the virtual clock.
#[derive(Debug)]
pub struct SlidingWindow {
    bucket_ms: u64,
    max_buckets: usize,
    /// Newest bucket at the back; covers `[epoch*w, (epoch+1)*w)`.
    ring: VecDeque<Bucket>,
    epoch: u64,
    workers_live: u32,
    jobs_open: u32,
    shed_limit: Option<u32>,
}

impl SlidingWindow {
    pub fn new(bucket_ms: u64, buckets: usize) -> Self {
        let mut ring = VecDeque::new();
        ring.push_back(Bucket::default());
        Self {
            bucket_ms: bucket_ms.max(1),
            max_buckets: buckets.max(1),
            ring,
            epoch: 0,
            workers_live: 0,
            jobs_open: 0,
            shed_limit: None,
        }
    }

    /// Virtual time at which the current bucket closes.
    pub fn next_boundary_ms(&self) -> u64 {
        (self.epoch + 1) * self.bucket_ms
    }

    /// Closes the current bucket and opens the next, evicting the oldest
    /// once the ring is full. Call after evaluating rules at the boundary.
    pub fn rotate(&mut self) {
        self.ring.push_back(Bucket::default());
        if self.ring.len() > self.max_buckets {
            self.ring.pop_front();
        }
        self.epoch += 1;
    }

    /// Folds one replay-stable event into the current bucket and gauges.
    /// The caller is responsible for boundary handling (rotation happens
    /// in time order, so an event is always charged to the open bucket).
    pub fn record(&mut self, kind: &EventKind) {
        // The ring is constructed non-empty and `rotate` pushes before it
        // pops, so `back_mut` always has a bucket; dropping the event
        // beats panicking mid-campaign if that ever breaks.
        let Some(bucket) = self.ring.back_mut() else {
            return;
        };
        match kind {
            EventKind::AttemptEnd {
                endpoint,
                outcome,
                duration_ms,
                ..
            } => {
                bucket.attempts += 1;
                bucket.latency.record(*duration_ms);
                let e = bucket.per_endpoint.entry(endpoint.clone()).or_default();
                e.attempts += 1;
                e.latency.record(*duration_ms);
                if outcome.is_hit() {
                    bucket.hits += 1;
                    e.hits += 1;
                }
            }
            EventKind::Retry { .. } => bucket.retries += 1,
            EventKind::BreakerTrip { .. } => bucket.breaker_trips += 1,
            EventKind::BreakerDefer { .. } => bucket.breaker_defers += 1,
            EventKind::ShedCut { limit } => {
                bucket.shed_cuts += 1;
                self.shed_limit = Some(*limit);
            }
            EventKind::ShedRaise { limit } => self.shed_limit = Some(*limit),
            EventKind::StallReclaimed { .. } => bucket.stalls += 1,
            EventKind::DriftSuspected { endpoint, .. } => {
                bucket.drift_suspected += 1;
                bucket
                    .per_endpoint
                    .entry(endpoint.clone())
                    .or_default()
                    .drift_suspected += 1;
            }
            EventKind::RebootstrapStarted { .. } => bucket.rebootstraps += 1,
            EventKind::ServeLookupEnd {
                endpoint,
                outcome,
                cache_hit,
                duration_ms,
                ..
            } => {
                bucket.attempts += 1;
                bucket.latency.record(*duration_ms);
                bucket.cache_lookups += 1;
                if *cache_hit {
                    bucket.cache_hits += 1;
                }
                let e = bucket.per_endpoint.entry(endpoint.clone()).or_default();
                e.attempts += 1;
                e.latency.record(*duration_ms);
                if outcome.is_hit() {
                    bucket.hits += 1;
                    e.hits += 1;
                }
            }
            EventKind::CacheEvicted { .. } => bucket.cache_evictions += 1,
            EventKind::ServeShed { .. } => bucket.serve_sheds += 1,
            EventKind::WorkerBegin { .. } => self.workers_live += 1,
            EventKind::WorkerEnd { .. } => self.workers_live = self.workers_live.saturating_sub(1),
            EventKind::JobBegin { .. } => self.jobs_open += 1,
            EventKind::JobEnd { .. } => self.jobs_open = self.jobs_open.saturating_sub(1),
            _ => {}
        }
    }

    /// Merges the ring into one view at virtual time `at_ms`.
    pub fn snapshot(&self, at_ms: u64) -> WindowSnapshot {
        let mut snap = WindowSnapshot {
            from_ms: (self.epoch + 1).saturating_sub(self.ring.len() as u64) * self.bucket_ms,
            at_ms,
            workers_live: self.workers_live,
            jobs_open: self.jobs_open,
            shed_limit: self.shed_limit,
            ..WindowSnapshot::default()
        };
        for bucket in &self.ring {
            bucket.absorb_into(&mut snap);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::OutcomeCode;

    fn attempt(endpoint: &str, outcome: OutcomeCode, ms: u64) -> EventKind {
        EventKind::AttemptEnd {
            tag: 1,
            attempt: 1,
            worker: 0,
            endpoint: endpoint.into(),
            outcome,
            duration_ms: ms,
            steps: 2,
        }
    }

    #[test]
    fn buckets_slide_and_old_counts_fall_out() {
        let mut w = SlidingWindow::new(60_000, 3);
        w.record(&attempt("a", OutcomeCode::Plans, 40_000));
        assert_eq!(w.next_boundary_ms(), 60_000);
        // Cross three boundaries: the first bucket is still in the ring...
        w.rotate();
        w.rotate();
        w.record(&attempt("a", OutcomeCode::Failed, 50_000));
        let snap = w.snapshot(130_000);
        assert_eq!(snap.attempts, 2);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.from_ms, 0);
        // ...and one more rotation evicts it.
        w.rotate();
        let snap = w.snapshot(190_000);
        assert_eq!(snap.attempts, 1);
        assert_eq!(snap.hits, 0);
        assert_eq!(snap.from_ms, 60_000);
        assert_eq!(snap.per_endpoint["a"].attempts, 1);
    }

    #[test]
    fn gauges_track_instantaneous_state_across_rotation() {
        let mut w = SlidingWindow::new(1_000, 2);
        w.record(&EventKind::WorkerBegin { worker: 0 });
        w.record(&EventKind::WorkerBegin { worker: 1 });
        w.record(&EventKind::JobBegin {
            tag: 9,
            endpoint: "a".into(),
        });
        w.record(&EventKind::ShedCut { limit: 4 });
        w.rotate();
        w.rotate();
        w.rotate();
        w.record(&EventKind::WorkerEnd { worker: 1 });
        let snap = w.snapshot(4_000);
        assert_eq!(snap.workers_live, 1);
        assert_eq!(snap.jobs_open, 1);
        assert_eq!(snap.shed_limit, Some(4));
        // The windowed cut counter itself rotated out.
        assert_eq!(snap.shed_cuts, 0);
    }

    #[test]
    fn rates_and_quantiles_come_from_the_window_only() {
        let mut w = SlidingWindow::new(10_000, 4);
        for _ in 0..9 {
            w.record(&attempt("a", OutcomeCode::Plans, 1_000));
        }
        w.record(&attempt("a", OutcomeCode::Failed, 64_000));
        w.record(&EventKind::Retry {
            tag: 1,
            next_attempt: 2,
            delay_ms: 5_000,
        });
        let snap = w.snapshot(9_000);
        assert_eq!(snap.hit_rate(), Some(0.9));
        assert_eq!(snap.retry_rate(), Some(0.1));
        assert!(snap.p99_ms().unwrap() >= 64_000);
        assert!(snap.p50_ms().unwrap() < 2_048);
    }
}
