//! Prometheus-style text exposition of a campaign's health.
//!
//! Renders `# TYPE` headers plus name/label/value lines from the run's
//! counters, gauges and log2 latency histograms. Only replay-stable
//! families are exposed (no page-fetch or fault-injection counters), so
//! the exposition of a crashed-and-resumed campaign is byte-identical to
//! an uninterrupted run's — the property the `health` CI job pins down.
//! Within one document, families appear in a fixed order and sections
//! (one per campaign) in caller order; label values are the campaign
//! label and the endpoint name, which the rest of the system already
//! keeps deterministic.

use super::HealthReport;
use crate::telemetry::{Histogram, TelemetrySummary};
use std::fmt::Write;

/// One campaign's slice of the exposition (and the folded profile).
pub struct CampaignSection<'a> {
    /// Label value for the `campaign` dimension (e.g. the ISP slug).
    pub label: &'a str,
    pub telemetry: &'a TelemetrySummary,
    pub health: &'a HealthReport,
}

fn counter(
    out: &mut String,
    name: &str,
    sections: &[CampaignSection],
    value: impl Fn(&CampaignSection) -> u64,
) {
    let _ = writeln!(out, "# TYPE {name} counter");
    for s in sections {
        let _ = writeln!(out, "{name}{{campaign=\"{}\"}} {}", s.label, value(s));
    }
}

fn gauge(
    out: &mut String,
    name: &str,
    sections: &[CampaignSection],
    value: impl Fn(&CampaignSection) -> u64,
) {
    let _ = writeln!(out, "# TYPE {name} gauge");
    for s in sections {
        let _ = writeln!(out, "{name}{{campaign=\"{}\"}} {}", s.label, value(s));
    }
}

fn histogram_series(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let mut cum = 0u64;
    for (i, n) in h.bucket_counts().iter().enumerate() {
        cum += n;
        let le = Histogram::bucket_bounds(i).1;
        let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum_ms());
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
}

fn histogram(
    out: &mut String,
    name: &str,
    sections: &[CampaignSection],
    select: impl for<'s> Fn(&'s CampaignSection) -> &'s Histogram,
) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    for s in sections {
        histogram_series(out, name, &format!("campaign=\"{}\"", s.label), select(s));
    }
}

/// Renders the full exposition document for one or more campaigns.
pub fn render_prometheus(sections: &[CampaignSection]) -> String {
    let mut out = String::new();
    counter(&mut out, "bqt_attempts_total", sections, |s| {
        s.telemetry.attempts
    });
    counter(&mut out, "bqt_retries_total", sections, |s| {
        s.telemetry.retries
    });
    counter(&mut out, "bqt_breaker_trips_total", sections, |s| {
        s.telemetry.breaker_trips
    });
    counter(&mut out, "bqt_breaker_defers_total", sections, |s| {
        s.telemetry.breaker_defers
    });
    counter(&mut out, "bqt_shed_cuts_total", sections, |s| {
        s.telemetry.shed_cuts
    });
    counter(&mut out, "bqt_shed_raises_total", sections, |s| {
        s.telemetry.shed_raises
    });
    counter(&mut out, "bqt_stalls_reclaimed_total", sections, |s| {
        s.telemetry.stalls_reclaimed
    });
    counter(&mut out, "bqt_alerts_fired_total", sections, |s| {
        s.telemetry.alerts_fired
    });
    counter(&mut out, "bqt_alerts_resolved_total", sections, |s| {
        s.telemetry.alerts_resolved
    });
    counter(&mut out, "bqt_drift_suspected_total", sections, |s| {
        s.telemetry.drift_suspected
    });
    counter(&mut out, "bqt_rebootstraps_started_total", sections, |s| {
        s.telemetry.rebootstraps_started
    });
    counter(&mut out, "bqt_templates_swapped_total", sections, |s| {
        s.telemetry.templates_swapped
    });
    counter(
        &mut out,
        "bqt_rebootstraps_completed_total",
        sections,
        |s| s.telemetry.rebootstraps_completed,
    );
    counter(&mut out, "bqt_serve_lookups_total", sections, |s| {
        s.telemetry.serve_lookups
    });
    counter(&mut out, "bqt_serve_cache_hits_total", sections, |s| {
        s.telemetry.serve_cache_hits
    });
    counter(&mut out, "bqt_serve_cache_evictions_total", sections, |s| {
        s.telemetry.cache_evictions
    });
    counter(&mut out, "bqt_serve_shed_total", sections, |s| {
        s.telemetry.serve_sheds
    });
    gauge(&mut out, "bqt_makespan_ms", sections, |s| {
        s.health.makespan_ms
    });
    gauge(&mut out, "bqt_workers", sections, |s| {
        s.health.started_workers as u64
    });

    let _ = writeln!(&mut out, "# TYPE bqt_endpoint_attempts_total counter");
    for s in sections {
        for (endpoint, e) in &s.telemetry.per_endpoint {
            let _ = writeln!(
                &mut out,
                "bqt_endpoint_attempts_total{{campaign=\"{}\",endpoint=\"{endpoint}\"}} {}",
                s.label, e.attempts
            );
        }
    }
    let _ = writeln!(&mut out, "# TYPE bqt_endpoint_hits_total counter");
    for s in sections {
        for (endpoint, e) in &s.telemetry.per_endpoint {
            let _ = writeln!(
                &mut out,
                "bqt_endpoint_hits_total{{campaign=\"{}\",endpoint=\"{endpoint}\"}} {}",
                s.label, e.hits
            );
        }
    }
    let _ = writeln!(
        &mut out,
        "# TYPE bqt_endpoint_drift_suspected_total counter"
    );
    for s in sections {
        for (endpoint, e) in &s.telemetry.per_endpoint {
            let _ = writeln!(
                &mut out,
                "bqt_endpoint_drift_suspected_total{{campaign=\"{}\",endpoint=\"{endpoint}\"}} {}",
                s.label, e.drift_suspected
            );
        }
    }
    let _ = writeln!(&mut out, "# TYPE bqt_endpoint_match_confidence_pct gauge");
    for s in sections {
        for (endpoint, e) in &s.telemetry.per_endpoint {
            let _ = writeln!(
                &mut out,
                "bqt_endpoint_match_confidence_pct{{campaign=\"{}\",endpoint=\"{endpoint}\"}} {}",
                s.label,
                e.match_confidence_pct()
            );
        }
    }

    histogram(&mut out, "bqt_attempt_latency_ms", sections, |s| {
        &s.telemetry.attempt_latency
    });
    histogram(&mut out, "bqt_backoff_delay_ms", sections, |s| {
        &s.telemetry.backoff_delay
    });
    histogram(&mut out, "bqt_pages_per_session", sections, |s| {
        &s.telemetry.pages_per_session
    });
    histogram(&mut out, "bqt_serve_lookup_latency_ms", sections, |s| {
        &s.telemetry.lookup_latency
    });
    let _ = writeln!(&mut out, "# TYPE bqt_endpoint_attempt_latency_ms histogram");
    for s in sections {
        for (endpoint, e) in &s.telemetry.per_endpoint {
            histogram_series(
                &mut out,
                "bqt_endpoint_attempt_latency_ms",
                &format!("campaign=\"{}\",endpoint=\"{endpoint}\"", s.label),
                &e.latency,
            );
        }
    }

    // Slowest-trace exemplars as comment lines: one per global exemplar
    // (rank order), with its critical-path attribution — the "why" next
    // to the histograms' "how much". Comments, so Prometheus scrapers
    // ignore them but `grep '# EXEMPLAR'` answers a page.
    for s in sections {
        for trace in &s.health.exemplars.global {
            let a = crate::trace::attribute(&trace.root);
            let _ = writeln!(
                &mut out,
                "# EXEMPLAR campaign=\"{}\" trace=\"{}\" dur_ms={} {}",
                s.label,
                trace.id(),
                trace.duration_ms(),
                a.summary()
            );
        }
    }
    out
}

/// Renders the folded-stack profile for one or more campaigns: one
/// `label;frame;...;frame <virtual_ms>` line per stack.
pub fn render_folded(sections: &[CampaignSection]) -> String {
    let mut out = String::new();
    for s in sections {
        super::profile::folded_lines(s.label, &s.health.frames, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> TelemetrySummary {
        let mut t = TelemetrySummary {
            attempts: 3,
            ..Default::default()
        };
        t.attempt_latency.record(40_000);
        t.attempt_latency.record(50_000);
        t.attempt_latency.record(0);
        t.per_endpoint
            .entry("isp/city".into())
            .or_default()
            .attempts = 3;
        t
    }

    fn health() -> HealthReport {
        let mut frames = std::collections::BTreeMap::new();
        frames.insert("worker_0000;idle".to_string(), 10_000);
        HealthReport {
            alerts: Vec::new(),
            window: Default::default(),
            checkpoints: Vec::new(),
            frames,
            makespan_ms: 100_000,
            started_workers: 8,
            escalations: 0,
            exemplars: Default::default(),
        }
    }

    #[test]
    fn exposition_has_typed_families_and_cumulative_buckets() {
        let (t, h) = (summary(), health());
        let text = render_prometheus(&[CampaignSection {
            label: "billings",
            telemetry: &t,
            health: &h,
        }]);
        assert!(text.contains("# TYPE bqt_attempts_total counter\n"));
        assert!(text.contains("bqt_attempts_total{campaign=\"billings\"} 3\n"));
        assert!(text.contains("bqt_makespan_ms{campaign=\"billings\"} 100000\n"));
        assert!(text.contains("bqt_attempt_latency_ms_bucket{campaign=\"billings\",le=\"0\"} 1\n"));
        assert!(
            text.contains("bqt_attempt_latency_ms_bucket{campaign=\"billings\",le=\"+Inf\"} 3\n")
        );
        assert!(text.contains("bqt_attempt_latency_ms_sum{campaign=\"billings\"} 90000\n"));
        // le bounds are cumulative: the bucket holding 40k and 50k (2^15..2^16)
        // reports all three samples.
        assert!(text.contains(",le=\"65535\"} 3\n"));
        assert!(text.contains(
            "bqt_endpoint_attempts_total{campaign=\"billings\",endpoint=\"isp/city\"} 3\n"
        ));
    }

    #[test]
    fn sections_render_in_caller_order_under_one_type_header() {
        let (t, h) = (summary(), health());
        let a = CampaignSection {
            label: "a",
            telemetry: &t,
            health: &h,
        };
        let b = CampaignSection {
            label: "b",
            telemetry: &t,
            health: &h,
        };
        let text = render_prometheus(&[a, b]);
        let header = text.find("# TYPE bqt_attempts_total").unwrap();
        let la = text.find("bqt_attempts_total{campaign=\"a\"}").unwrap();
        let lb = text.find("bqt_attempts_total{campaign=\"b\"}").unwrap();
        assert!(header < la && la < lb);
        assert_eq!(text.matches("# TYPE bqt_attempts_total counter").count(), 1);
    }

    #[test]
    fn exemplar_comment_lines_carry_the_attribution() {
        use crate::trace::{Span, SpanKind, Trace};
        let t = summary();
        let mut h = health();
        h.exemplars.global.push(Trace {
            tag: 0x2a,
            endpoint: "isp/city".into(),
            root: Span {
                kind: SpanKind::Job,
                label: "isp/city:plans".into(),
                start_ms: 60_000,
                end_ms: 75_000,
                children: vec![Span {
                    kind: SpanKind::Attempt,
                    label: "attempt_1:plans".into(),
                    start_ms: 61_000,
                    end_ms: 75_000,
                    children: Vec::new(),
                }],
            },
        });
        let text = render_prometheus(&[CampaignSection {
            label: "billings",
            telemetry: &t,
            health: &h,
        }]);
        assert!(
            text.contains(
                "# EXEMPLAR campaign=\"billings\" trace=\"isp/city:2a@60000\" \
                 dur_ms=15000 job=1000 attempt=14000\n"
            ),
            "missing exemplar line in:\n{text}"
        );
    }

    #[test]
    fn folded_render_prefixes_the_campaign_label() {
        let (t, h) = (summary(), health());
        let text = render_folded(&[CampaignSection {
            label: "billings",
            telemetry: &t,
            health: &h,
        }]);
        assert_eq!(text, "billings;worker_0000;idle 10000\n");
    }
}
