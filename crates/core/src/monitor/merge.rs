//! The watermark + `(at, seq)` ordering heap, shared by the live monitor
//! and the shard-stream merger.
//!
//! The telemetry stream arrives in *emission* order, which is not virtual
//! time order: an attempt's end is stamped in the future and emitted the
//! moment the attempt is scheduled. Consumers that need exact time order
//! (the sliding-window monitor, the multi-shard merge in
//! [`shard`](crate::shard)) push every event into a [`WatermarkHeap`] and
//! pop only once the watermark — the largest timestamp carried by an
//! event that is emitted *at* the loop's current time — has passed an
//! entry's stamp. Ties on the same virtual millisecond break on `seq`,
//! a caller-assigned total order (emission order within one stream;
//! shard-namespaced counters across streams), so the drained order is a
//! deterministic function of the event set alone.

use crate::telemetry::EventKind;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry waiting for the watermark to pass its timestamp.
#[derive(Debug)]
struct Entry<T> {
    at_ms: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms == other.at_ms && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop earliest-first.
        (other.at_ms, other.seq).cmp(&(self.at_ms, self.seq))
    }
}

/// Whether this kind is emitted at the event loop's current time (so its
/// timestamp is a lower bound for everything still unemitted). End-of-
/// attempt kinds are stamped in the *future* and must wait in the heap.
pub fn advances_watermark(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::CampaignBegin { .. }
            | EventKind::WorkerBegin { .. }
            | EventKind::JobBegin { .. }
            | EventKind::AttemptBegin { .. }
            | EventKind::BreakerDefer { .. }
            | EventKind::WorkerEnd { .. }
            | EventKind::CampaignEnd { .. }
            // Serve-side kinds reach the monitor through the pre-sorted
            // merged shard stream, so their stamps are already monotone
            // and safe to treat as loop-current.
            | EventKind::ServeLookupEnd { .. }
            | EventKind::CacheEvicted { .. }
            | EventKind::ServeShed { .. }
    )
}

/// A min-heap over `(at_ms, seq)` gated by a monotone watermark.
///
/// `push` entries in any order; `advance` the watermark as loop-current
/// events reveal it; `pop_ready` yields entries whose stamp the watermark
/// has passed, earliest `(at_ms, seq)` first. Advancing to `u64::MAX`
/// drains everything — the end-of-stream flush.
#[derive(Debug)]
pub struct WatermarkHeap<T> {
    heap: BinaryHeap<Entry<T>>,
    watermark: u64,
}

impl<T> Default for WatermarkHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WatermarkHeap<T> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            watermark: 0,
        }
    }

    /// Queues one entry. `seq` must be unique per stream; entries sharing
    /// a millisecond drain in `seq` order.
    pub fn push(&mut self, at_ms: u64, seq: u64, payload: T) {
        self.heap.push(Entry {
            at_ms,
            seq,
            payload,
        });
    }

    /// Raises the watermark (never lowers it — late, lower stamps are
    /// exactly what the heap exists to reorder).
    pub fn advance(&mut self, watermark_ms: u64) {
        self.watermark = self.watermark.max(watermark_ms);
    }

    /// The current watermark.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Pops the earliest entry whose stamp the watermark has passed, or
    /// `None` when everything still queued is stamped in the future.
    pub fn pop_ready(&mut self) -> Option<(u64, u64, T)> {
        if self
            .heap
            .peek()
            .is_some_and(|entry| entry.at_ms <= self.watermark)
        {
            self.heap
                .pop()
                .map(|entry| (entry.at_ms, entry.seq, entry.payload))
        } else {
            None
        }
    }

    /// Entries still queued (ready or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_at_seq_order_once_watermark_passes() {
        let mut heap = WatermarkHeap::new();
        heap.push(70, 2, "late-stamped");
        heap.push(10, 3, "early");
        heap.push(10, 1, "earlier-seq");
        assert!(heap.pop_ready().is_none(), "watermark still at 0");

        heap.advance(15);
        assert_eq!(heap.pop_ready(), Some((10, 1, "earlier-seq")));
        assert_eq!(heap.pop_ready(), Some((10, 3, "early")));
        assert!(heap.pop_ready().is_none(), "70ms entry is in the future");

        heap.advance(u64::MAX);
        assert_eq!(heap.pop_ready(), Some((70, 2, "late-stamped")));
        assert!(heap.is_empty());
    }

    #[test]
    fn watermark_never_regresses() {
        let mut heap = WatermarkHeap::new();
        heap.advance(100);
        heap.advance(40);
        assert_eq!(heap.watermark(), 100);
        heap.push(60, 1, ());
        assert_eq!(heap.pop_ready(), Some((60, 1, ())));
    }
}
