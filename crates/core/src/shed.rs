//! Adaptive load shedding: an AIMD controller over worker concurrency.
//!
//! When a BAT starts rate-limiting (a brownout, or the campaign simply
//! running too hot for the endpoint), retrying at full concurrency digs
//! the hole deeper: every worker burns attempt budget into the same 429
//! wall and jobs die to the dead-letter queue. The controller watches the
//! recent rate of retryable failures and reacts the way TCP does to loss:
//! **multiplicative decrease** of the concurrency ceiling when the failure
//! rate crosses the trip threshold, **additive increase** (one worker at a
//! time) after sustained success, never dropping below a floor that keeps
//! the campaign live.
//!
//! The controller is pure bookkeeping on the virtual clock — the
//! orchestrator feeds it one observation per finished attempt and parks or
//! wakes workers to honour the ceiling it reports.

use bbsim_net::SimTime;
use std::collections::VecDeque;

/// Tuning for the AIMD concurrency controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Sliding window of recent attempt outcomes the failure rate is
    /// computed over.
    pub window: usize,
    /// Retryable-failure rate in the window that triggers a cut.
    pub trip_rate: f64,
    /// Concurrency never drops below this (≥ 1 keeps the campaign live).
    pub floor: u32,
    /// Consecutive clean attempts required per +1 worker of recovery.
    pub recovery_streak: u32,
    /// Minimum virtual time between successive cuts, so one storm is
    /// answered with one cut, not a cascade.
    pub cooldown: bbsim_net::SimDuration,
}

impl ShedPolicy {
    /// Defaults tuned for the paper-scale runs: trip when more than half
    /// of the last 20 attempts needed a retry, halve, recover one worker
    /// per 5 clean attempts, at most one cut per virtual minute.
    pub fn paper_default() -> Self {
        Self {
            window: 20,
            trip_rate: 0.5,
            floor: 2,
            recovery_streak: 5,
            cooldown: bbsim_net::SimDuration::from_secs(60),
        }
    }
}

/// What [`ShedController::observe`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedDecision {
    /// Ceiling unchanged.
    Hold,
    /// Multiplicative decrease fired; the new ceiling is carried.
    Cut(u32),
    /// Additive increase fired; the new ceiling is carried.
    Raise(u32),
}

/// AIMD controller state.
#[derive(Debug, Clone)]
pub struct ShedController {
    policy: ShedPolicy,
    /// The configured maximum (what the pool was sized for).
    ceiling_max: u32,
    /// Current concurrency ceiling.
    limit: u32,
    /// Recent attempts: `true` = retryable failure (pressure).
    window: VecDeque<bool>,
    clean_streak: u32,
    last_cut: Option<SimTime>,
    cuts: u64,
    /// `(when, new_limit)` every time the ceiling changed, plus the
    /// starting point — the report's concurrency-over-time series.
    timeline: Vec<(SimTime, u32)>,
}

impl ShedController {
    pub fn new(policy: ShedPolicy, max_workers: u32) -> Self {
        assert!(max_workers >= 1, "need at least one worker");
        assert!(policy.floor >= 1, "floor must keep one worker live");
        assert!(
            (0.0..=1.0).contains(&policy.trip_rate),
            "trip rate is a fraction"
        );
        let limit = max_workers;
        Self {
            policy,
            ceiling_max: max_workers,
            limit,
            window: VecDeque::with_capacity(policy.window),
            clean_streak: 0,
            last_cut: None,
            cuts: 0,
            timeline: vec![(SimTime::ZERO, limit)],
        }
    }

    /// Current concurrency ceiling.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Number of multiplicative cuts taken.
    pub fn cuts(&self) -> u64 {
        self.cuts
    }

    /// The ceiling's history: `(virtual time, new limit)` per change.
    pub fn timeline(&self) -> &[(SimTime, u32)] {
        &self.timeline
    }

    /// Feeds one finished attempt. `pressure` is true when the attempt
    /// ended in a retryable failure (Blocked / Failed / Stalled).
    pub fn observe(&mut self, now: SimTime, pressure: bool) -> ShedDecision {
        if self.window.len() == self.policy.window {
            self.window.pop_front();
        }
        self.window.push_back(pressure);

        if pressure {
            self.clean_streak = 0;
            let hot = self.window.iter().filter(|&&p| p).count();
            let rate = hot as f64 / self.window.len() as f64;
            // Observations arrive at attempt-completion times, which are
            // not monotone across workers — compare, don't subtract.
            let cooled = match self.last_cut {
                None => true,
                Some(at) => now >= at + self.policy.cooldown,
            };
            if self.window.len() >= self.policy.window.min(4)
                && rate >= self.policy.trip_rate
                && cooled
                && self.limit > self.policy.floor
            {
                self.limit = (self.limit / 2).max(self.policy.floor);
                self.last_cut = Some(now);
                self.cuts += 1;
                self.window.clear();
                self.timeline.push((now, self.limit));
                return ShedDecision::Cut(self.limit);
            }
        } else {
            self.clean_streak += 1;
            if self.clean_streak >= self.policy.recovery_streak && self.limit < self.ceiling_max {
                self.clean_streak = 0;
                self.limit += 1;
                self.timeline.push((now, self.limit));
                return ShedDecision::Raise(self.limit);
            }
        }
        ShedDecision::Hold
    }

    /// A cut demanded from outside the failure-rate path — the monitor's
    /// SLO escalation. Skips the window test but still honours the floor
    /// and the cut cooldown (an alert storm must not cascade either).
    /// Returns the new ceiling when the cut was granted.
    pub fn force_cut(&mut self, now: SimTime) -> Option<u32> {
        let cooled = match self.last_cut {
            None => true,
            Some(at) => now >= at + self.policy.cooldown,
        };
        if !cooled || self.limit <= self.policy.floor {
            return None;
        }
        self.limit = (self.limit / 2).max(self.policy.floor);
        self.last_cut = Some(now);
        self.cuts += 1;
        self.clean_streak = 0;
        self.window.clear();
        self.timeline.push((now, self.limit));
        Some(self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbsim_net::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn policy() -> ShedPolicy {
        ShedPolicy {
            window: 8,
            trip_rate: 0.5,
            floor: 2,
            recovery_streak: 3,
            cooldown: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn sustained_pressure_halves_down_to_the_floor() {
        let mut c = ShedController::new(policy(), 16);
        let mut now = 0;
        while c.limit() > 2 {
            let before = c.limit();
            // One storm per cooldown period.
            for _ in 0..8 {
                now += 1;
                c.observe(t(now * 100), true);
            }
            assert!(c.limit() <= before, "never grows under pressure");
        }
        assert_eq!(c.limit(), 2, "floor holds");
        assert!(c.cuts() >= 3, "16 → 8 → 4 → 2");
        // Floor is sticky: more pressure doesn't go below it.
        for _ in 0..20 {
            now += 1;
            c.observe(t(now * 100), true);
        }
        assert_eq!(c.limit(), 2);
    }

    #[test]
    fn cooldown_limits_cut_cascades() {
        let mut c = ShedController::new(policy(), 16);
        // A burst of pressure all inside one cooldown window.
        for i in 0..40 {
            c.observe(t(i), true);
        }
        assert_eq!(c.cuts(), 1, "one storm, one cut");
        assert_eq!(c.limit(), 8);
    }

    #[test]
    fn recovery_is_additive_and_capped() {
        let mut c = ShedController::new(policy(), 16);
        for i in 0..40 {
            c.observe(t(i), true);
        }
        assert_eq!(c.limit(), 8);
        // Clean traffic: +1 per 3 successes, up to the original ceiling.
        let mut raised = 0;
        for i in 0..100 {
            if let ShedDecision::Raise(_) = c.observe(t(100 + i), false) {
                raised += 1;
            }
        }
        assert_eq!(c.limit(), 16, "recovers to the ceiling, not past it");
        assert_eq!(raised, 8);
    }

    #[test]
    fn mixed_traffic_below_trip_rate_holds_steady() {
        let mut c = ShedController::new(policy(), 16);
        // 25% pressure, below the 50% trip rate; streak resets keep
        // recovery quiet too.
        for i in 0..200u64 {
            c.observe(t(i), i % 4 == 0);
        }
        assert_eq!(c.cuts(), 0);
        assert_eq!(c.limit(), 16);
    }

    #[test]
    fn timeline_records_every_change() {
        let mut c = ShedController::new(policy(), 8);
        for i in 0..20 {
            c.observe(t(i), true);
        }
        for i in 0..10 {
            c.observe(t(100 + i), false);
        }
        let tl = c.timeline();
        assert_eq!(tl[0], (SimTime::ZERO, 8), "starting point recorded");
        assert!(tl.len() >= 3, "cut + raises present: {tl:?}");
        assert!(tl.windows(2).all(|w| w[0].0 <= w[1].0), "time-ordered");
    }

    #[test]
    fn forced_cuts_honour_the_floor_and_the_cooldown() {
        let mut c = ShedController::new(policy(), 16);
        assert_eq!(c.force_cut(t(1)), Some(8));
        assert_eq!(c.force_cut(t(2)), None, "inside the cooldown");
        assert_eq!(c.force_cut(t(120)), Some(4));
        assert_eq!(c.force_cut(t(300)), Some(2));
        assert_eq!(c.force_cut(t(600)), None, "floor holds");
        assert_eq!(c.cuts(), 3);
        assert_eq!(c.timeline().last(), Some(&(t(300), 2)));
    }

    #[test]
    fn small_pools_and_floor_interact_safely() {
        // max_workers below the floor: the controller simply never cuts.
        let mut c = ShedController::new(policy(), 2);
        for i in 0..50 {
            c.observe(t(i * 100), true);
        }
        assert_eq!(c.limit(), 2);
        assert_eq!(c.cuts(), 0);
    }
}
