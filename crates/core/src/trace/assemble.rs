//! The trace assembler: a pure fold from the event stream to span trees.
//!
//! Two feeding modes share one state machine:
//!
//! * [`TraceAssembler::ingest`] takes events already in exact virtual-time
//!   order — the [`CampaignMonitor`](crate::monitor::CampaignMonitor)
//!   calls it from the same watermark-ordered drain that feeds the
//!   sliding window, so monitored campaigns grow traces for free;
//! * [`TraceAssembler::observe`] takes events in raw emission order and
//!   reorders them through its own [`WatermarkHeap`], for standalone use
//!   over a recorded stream (benches, tests, `repro tail`).
//!
//! A job trace's children partition `[JobBegin, JobEnd]` exactly: attempt
//! spans cover worker occupancy, and every gap between them is decomposed
//! — in priority order — into retry backoff (from the preceding `Retry`),
//! breaker wait (from the preceding `BreakerDefer`), rebootstrap
//! quarantine (while the job's endpoint is between `RebootstrapStarted`
//! and `RebootstrapCompleted`), shed parking (between `ShedCut` and
//! `ShedRaise`) and plain queue wait for whatever remains. That exact
//! partition is what lets the attribution report sum to the trace's
//! duration to the millisecond.
//!
//! Serve traces are flat: a `Serve` root from arrival to response with a
//! `QueueWait` child (reconstructed from the shard's FIFO discipline —
//! consecutive lookups on one shard cannot overlap service) and a
//! `CacheLookup` child for the remainder. Batch members share their
//! batch's completion instant and queue wait, mirroring the engine.
//!
//! Tags must be unique among *concurrently open* jobs, which holds for
//! every stream one assembler sees: a shard's monitor folds only its own
//! shard (one ISP — tags are address ids, unique per ISP), and serve
//! streams carry no job spans at all.

use super::reservoir::{ExemplarReservoir, ExemplarSet};
use super::{Span, SpanKind, Trace};
use crate::monitor::{advances_watermark, WatermarkHeap};
use crate::telemetry::{Event, EventKind};
use std::collections::BTreeMap;

/// `(start_ms, end_ms)` with `None` meaning "still open".
type Interval = (u64, Option<u64>);

/// One job between its `JobBegin` and `JobEnd`.
#[derive(Debug)]
struct OpenJob {
    endpoint: String,
    started_ms: u64,
    /// Everything before this instant is already covered by `children`.
    cursor_ms: u64,
    children: Vec<Span>,
    /// `(attempt, begin_ms)` while a worker holds the job.
    open_attempt: Option<(u32, u64)>,
    /// Backoff delay announced by the last `Retry`, unconsumed.
    pending_backoff_ms: Option<u64>,
    /// Hold-until instant announced by the last `BreakerDefer`.
    pending_defer_until_ms: Option<u64>,
}

/// Per-shard FIFO bookkeeping for serve lookups.
#[derive(Debug, Clone, Copy, Default)]
struct ServeCursor {
    done_ms: u64,
    duration_ms: u64,
    queue_wait_ms: u64,
}

/// Folds the event stream into traces and keeps the top-K slowest.
#[derive(Debug)]
pub struct TraceAssembler {
    heap: WatermarkHeap<EventKind>,
    heap_seq: u64,
    /// Events ingested so far — the deterministic `(at, seq)` tie-break
    /// key the reservoir uses (identical for any thread count, because
    /// the merged stream order is).
    seq: u64,
    jobs: BTreeMap<u64, OpenJob>,
    /// Ephemeral page-fetch spans per `(tag, attempt)`, attached at
    /// `AttemptEnd` when the stream carries them (unfiltered mode only).
    fetches: BTreeMap<(u64, u32), Vec<(u64, u64)>>,
    /// Rebootstrap quarantine intervals per endpoint, in start order.
    quarantines: BTreeMap<String, Vec<Interval>>,
    /// Campaign-wide shed intervals (`ShedCut` opens, `ShedRaise` closes).
    sheds: Vec<Interval>,
    serve_shards: BTreeMap<u32, ServeCursor>,
    reservoir: ExemplarReservoir,
    makespan_ms: u64,
}

impl TraceAssembler {
    /// `k` is the global exemplar capacity; the slowest trace per
    /// endpoint is tracked regardless.
    pub fn new(k: usize) -> Self {
        Self {
            heap: WatermarkHeap::new(),
            heap_seq: 0,
            seq: 0,
            jobs: BTreeMap::new(),
            fetches: BTreeMap::new(),
            quarantines: BTreeMap::new(),
            sheds: Vec::new(),
            serve_shards: BTreeMap::new(),
            reservoir: ExemplarReservoir::new(k),
            makespan_ms: 0,
        }
    }

    /// Standalone mode: feeds one event in raw emission order, reordering
    /// through the assembler's own watermark heap exactly like the
    /// monitor does.
    pub fn observe(&mut self, event: &Event) {
        self.heap_seq += 1;
        self.heap
            .push(event.at.as_millis(), self.heap_seq, event.kind.clone());
        if advances_watermark(&event.kind) {
            self.heap.advance(event.at.as_millis());
            self.drain();
        }
    }

    fn drain(&mut self) {
        while let Some((at_ms, _, kind)) = self.heap.pop_ready() {
            self.ingest(at_ms, &kind);
        }
    }

    /// Folds one event already in exact virtual-time order (the
    /// monitor's post-watermark drain).
    pub fn ingest(&mut self, at_ms: u64, kind: &EventKind) {
        self.seq += 1;
        match kind {
            EventKind::CampaignEnd { makespan_ms } => {
                self.makespan_ms = self.makespan_ms.max(*makespan_ms);
            }
            EventKind::JobBegin { tag, endpoint } => {
                self.jobs.insert(
                    *tag,
                    OpenJob {
                        endpoint: endpoint.clone(),
                        started_ms: at_ms,
                        cursor_ms: at_ms,
                        children: Vec::new(),
                        open_attempt: None,
                        pending_backoff_ms: None,
                        pending_defer_until_ms: None,
                    },
                );
            }
            EventKind::AttemptBegin { tag, attempt, .. } => {
                let (jobs, quarantines, sheds) = (&mut self.jobs, &self.quarantines, &self.sheds);
                if let Some(job) = jobs.get_mut(tag) {
                    close_gap(job, at_ms, quarantines, sheds);
                    job.open_attempt = Some((*attempt, at_ms));
                }
            }
            EventKind::AttemptEnd {
                tag,
                attempt,
                outcome,
                duration_ms,
                ..
            } => {
                let fetches = self.fetches.remove(&(*tag, *attempt)).unwrap_or_default();
                if let Some(job) = self.jobs.get_mut(tag) {
                    let start = job
                        .open_attempt
                        .take()
                        .map_or_else(|| at_ms.saturating_sub(*duration_ms), |(_, begin)| begin);
                    let mut span = Span {
                        kind: SpanKind::Attempt,
                        label: format!("attempt_{attempt}:{}", outcome.as_str()),
                        start_ms: start,
                        end_ms: at_ms,
                        children: Vec::new(),
                    };
                    for (i, (fs, fe)) in fetches.into_iter().enumerate() {
                        let (fs, fe) = (fs.max(start), fe.min(at_ms));
                        if fe > fs {
                            span.children.push(Span {
                                kind: SpanKind::PageFetch,
                                label: format!("step_{i}"),
                                start_ms: fs,
                                end_ms: fe,
                                children: Vec::new(),
                            });
                        }
                    }
                    job.children.push(span);
                    job.cursor_ms = at_ms;
                }
            }
            EventKind::Retry { tag, delay_ms, .. } => {
                if let Some(job) = self.jobs.get_mut(tag) {
                    job.pending_backoff_ms = Some(*delay_ms);
                }
            }
            EventKind::BreakerDefer { tag, until_ms, .. } => {
                if let Some(job) = self.jobs.get_mut(tag) {
                    job.pending_defer_until_ms = Some(*until_ms);
                }
            }
            EventKind::JobEnd { tag, outcome, .. } => {
                if let Some(mut job) = self.jobs.remove(tag) {
                    close_gap(&mut job, at_ms, &self.quarantines, &self.sheds);
                    let endpoint = job.endpoint;
                    let root = Span {
                        kind: SpanKind::Job,
                        label: format!("{endpoint}:{}", outcome.as_str()),
                        start_ms: job.started_ms,
                        end_ms: at_ms,
                        children: job.children,
                    };
                    self.reservoir.offer(
                        Trace {
                            tag: *tag,
                            endpoint,
                            root,
                        },
                        at_ms,
                        self.seq,
                    );
                }
            }
            EventKind::ShedCut { .. } if !matches!(self.sheds.last(), Some((_, None))) => {
                self.sheds.push((at_ms, None));
            }
            EventKind::ShedCut { .. } => {}
            EventKind::ShedRaise { .. } => {
                if let Some((_, end @ None)) = self.sheds.last_mut() {
                    *end = Some(at_ms);
                }
            }
            EventKind::RebootstrapStarted { endpoint } => {
                let intervals = self.quarantines.entry(endpoint.clone()).or_default();
                if !matches!(intervals.last(), Some((_, None))) {
                    intervals.push((at_ms, None));
                }
            }
            EventKind::RebootstrapCompleted { endpoint, .. } => {
                if let Some((_, end @ None)) = self
                    .quarantines
                    .entry(endpoint.clone())
                    .or_default()
                    .last_mut()
                {
                    *end = Some(at_ms);
                }
            }
            EventKind::PageFetchEnd {
                tag,
                attempt,
                duration_ms,
                ..
            } => {
                self.fetches
                    .entry((*tag, *attempt))
                    .or_default()
                    .push((at_ms.saturating_sub(*duration_ms), at_ms));
            }
            EventKind::ServeLookupEnd {
                tag,
                shard,
                endpoint,
                outcome,
                cache_hit,
                duration_ms,
            } => {
                let arrival = at_ms.saturating_sub(*duration_ms);
                let cursor = self.serve_shards.entry(*shard).or_default();
                // Batch members complete together: same shard, same
                // (done, duration) — reuse the batch's queue wait. The
                // shard's FIFO makes `done` strictly increase otherwise.
                let queue_wait = if at_ms == cursor.done_ms && *duration_ms == cursor.duration_ms {
                    cursor.queue_wait_ms
                } else {
                    let wait = cursor.done_ms.saturating_sub(arrival).min(*duration_ms);
                    *cursor = ServeCursor {
                        done_ms: at_ms,
                        duration_ms: *duration_ms,
                        queue_wait_ms: wait,
                    };
                    wait
                };
                let mut root = Span {
                    kind: SpanKind::Serve,
                    label: format!("{endpoint}:{}", outcome.as_str()),
                    start_ms: arrival,
                    end_ms: at_ms,
                    children: Vec::new(),
                };
                if queue_wait > 0 {
                    root.children.push(Span {
                        kind: SpanKind::QueueWait,
                        label: "queue".into(),
                        start_ms: arrival,
                        end_ms: arrival + queue_wait,
                        children: Vec::new(),
                    });
                }
                if at_ms > arrival + queue_wait {
                    root.children.push(Span {
                        kind: SpanKind::CacheLookup,
                        label: if *cache_hit {
                            "cache_hit"
                        } else {
                            "cache_miss"
                        }
                        .into(),
                        start_ms: arrival + queue_wait,
                        end_ms: at_ms,
                        children: Vec::new(),
                    });
                }
                self.reservoir.offer(
                    Trace {
                        tag: *tag,
                        endpoint: endpoint.clone(),
                        root,
                    },
                    at_ms,
                    self.seq,
                );
            }
            _ => {}
        }
    }

    /// The current exemplar ids, comma-joined — what `AlertFired` carries.
    pub fn exemplar_csv(&self) -> String {
        self.reservoir.csv()
    }

    /// Traces assembled so far that ended at or before nowhere — the live
    /// reservoir snapshot (for dashboards).
    pub fn exemplars(&self) -> ExemplarSet {
        self.reservoir.snapshot()
    }

    pub fn makespan_ms(&self) -> u64 {
        self.makespan_ms
    }

    /// Flushes standalone-mode events still in the heap and condenses
    /// into the final exemplar set. Jobs left open by a truncated stream
    /// (a simulated crash) are dropped — the resumed stream re-plays them
    /// to completion.
    pub fn finish(mut self) -> ExemplarSet {
        self.heap.advance(u64::MAX);
        self.drain();
        self.reservoir.into_set()
    }
}

/// Decomposes `[job.cursor_ms, end_ms)` into typed wait spans appended to
/// `job.children`, consuming any pending backoff/defer marker. The
/// segments partition the gap exactly.
fn close_gap(
    job: &mut OpenJob,
    end_ms: u64,
    quarantines: &BTreeMap<String, Vec<Interval>>,
    sheds: &[Interval],
) {
    let backoff = job.pending_backoff_ms.take();
    let defer = job.pending_defer_until_ms.take();
    let mut cur = job.cursor_ms;
    if cur >= end_ms {
        return;
    }
    if let Some(delay) = backoff {
        let seg_end = cur.saturating_add(delay).min(end_ms);
        cur = push_wait(job, SpanKind::RetryBackoff, "backoff", cur, seg_end);
    }
    if let Some(until) = defer {
        let seg_end = until.clamp(cur, end_ms);
        cur = push_wait(job, SpanKind::BreakerWait, "breaker", cur, seg_end);
    }
    let no_intervals = Vec::new();
    let quars = quarantines.get(&job.endpoint).unwrap_or(&no_intervals);
    while cur < end_ms {
        if let Some(seg_end) = covering_end(quars, cur) {
            cur = push_wait(
                job,
                SpanKind::Rebootstrap,
                "quarantine",
                cur,
                seg_end.min(end_ms),
            );
        } else if let Some(seg_end) = covering_end(sheds, cur) {
            cur = push_wait(job, SpanKind::Shed, "shed", cur, seg_end.min(end_ms));
        } else {
            let seg_end = next_interval_start(quars, sheds, cur).min(end_ms);
            cur = push_wait(job, SpanKind::QueueWait, "queue", cur, seg_end);
        }
    }
    job.cursor_ms = end_ms;
}

fn push_wait(job: &mut OpenJob, kind: SpanKind, label: &str, start: u64, end: u64) -> u64 {
    if end > start {
        job.children.push(Span {
            kind,
            label: label.to_string(),
            start_ms: start,
            end_ms: end,
            children: Vec::new(),
        });
    }
    end.max(start)
}

/// If some interval covers `at`, its effective end (open = forever).
fn covering_end(intervals: &[Interval], at: u64) -> Option<u64> {
    intervals
        .iter()
        .filter(|(start, end)| *start <= at && end.is_none_or(|e| e > at))
        .map(|(_, end)| end.unwrap_or(u64::MAX))
        .max()
}

/// The earliest interval start strictly after `at` (so a queue-wait
/// segment ends exactly where a quarantine or shed segment begins).
fn next_interval_start(quarantines: &[Interval], sheds: &[Interval], at: u64) -> u64 {
    quarantines
        .iter()
        .chain(sheds)
        .map(|(start, _)| *start)
        .filter(|start| *start > at)
        .min()
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::OutcomeCode;
    use bbsim_net::SimTime;

    fn ev(ms: u64, kind: EventKind) -> Event {
        Event {
            at: SimTime::from_millis(ms),
            kind,
        }
    }

    fn attempt_begin(tag: u64, attempt: u32, ms: u64) -> Event {
        ev(
            ms,
            EventKind::AttemptBegin {
                tag,
                attempt,
                worker: 0,
                endpoint: "isp/city".into(),
            },
        )
    }

    fn attempt_end(tag: u64, attempt: u32, ms: u64, duration: u64, outcome: OutcomeCode) -> Event {
        ev(
            ms,
            EventKind::AttemptEnd {
                tag,
                attempt,
                worker: 0,
                endpoint: "isp/city".into(),
                outcome,
                duration_ms: duration,
                steps: 2,
            },
        )
    }

    fn feed(events: &[Event]) -> ExemplarSet {
        let mut asm = TraceAssembler::new(4);
        for e in events {
            asm.observe(e);
        }
        asm.finish()
    }

    #[test]
    fn a_retried_job_decomposes_into_attempts_backoff_and_queue_wait() {
        let set = feed(&[
            ev(
                0,
                EventKind::JobBegin {
                    tag: 7,
                    endpoint: "isp/city".into(),
                },
            ),
            attempt_begin(7, 1, 1_000),
            attempt_end(7, 1, 5_000, 4_000, OutcomeCode::Failed),
            ev(
                5_000,
                EventKind::Retry {
                    tag: 7,
                    next_attempt: 2,
                    delay_ms: 2_000,
                },
            ),
            attempt_begin(7, 2, 8_000),
            attempt_end(7, 2, 12_000, 4_000, OutcomeCode::Plans),
            ev(
                12_000,
                EventKind::JobEnd {
                    tag: 7,
                    outcome: OutcomeCode::Plans,
                    attempts: 2,
                    dead_lettered: false,
                },
            ),
            ev(
                20_000,
                EventKind::CampaignEnd {
                    makespan_ms: 20_000,
                },
            ),
        ]);
        let trace = &set.global[0];
        assert_eq!(trace.tag, 7);
        assert_eq!(trace.duration_ms(), 12_000);
        let kinds: Vec<(SpanKind, u64)> = trace
            .root
            .children
            .iter()
            .map(|s| (s.kind, s.duration_ms()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (SpanKind::QueueWait, 1_000),
                (SpanKind::Attempt, 4_000),
                (SpanKind::RetryBackoff, 2_000),
                (SpanKind::QueueWait, 1_000),
                (SpanKind::Attempt, 4_000),
            ]
        );
        // The children partition the job exactly.
        let covered: u64 = trace.root.children.iter().map(Span::duration_ms).sum();
        assert_eq!(covered, trace.duration_ms());
    }

    #[test]
    fn breaker_defer_and_quarantine_type_the_waits() {
        let set = feed(&[
            ev(
                0,
                EventKind::JobBegin {
                    tag: 1,
                    endpoint: "isp/city".into(),
                },
            ),
            attempt_begin(1, 1, 0),
            attempt_end(1, 1, 2_000, 2_000, OutcomeCode::Failed),
            ev(
                2_000,
                EventKind::BreakerDefer {
                    tag: 1,
                    endpoint: "isp/city".into(),
                    until_ms: 6_000,
                },
            ),
            ev(
                6_000,
                EventKind::RebootstrapStarted {
                    endpoint: "isp/city".into(),
                },
            ),
            ev(
                9_000,
                EventKind::RebootstrapCompleted {
                    endpoint: "isp/city".into(),
                    confidence_pct: 95,
                },
            ),
            attempt_begin(1, 2, 10_000),
            attempt_end(1, 2, 11_000, 1_000, OutcomeCode::Plans),
            ev(
                11_000,
                EventKind::JobEnd {
                    tag: 1,
                    outcome: OutcomeCode::Plans,
                    attempts: 2,
                    dead_lettered: false,
                },
            ),
            ev(
                11_000,
                EventKind::CampaignEnd {
                    makespan_ms: 11_000,
                },
            ),
        ]);
        let kinds: Vec<(SpanKind, u64)> = set.global[0]
            .root
            .children
            .iter()
            .map(|s| (s.kind, s.duration_ms()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (SpanKind::Attempt, 2_000),
                (SpanKind::BreakerWait, 4_000),
                (SpanKind::Rebootstrap, 3_000),
                (SpanKind::QueueWait, 1_000),
                (SpanKind::Attempt, 1_000),
            ]
        );
    }

    #[test]
    fn serve_lookups_split_into_queue_wait_and_cache_lookup() {
        let lookup = |tag: u64, done: u64, duration: u64, cache_hit: bool| {
            ev(
                done,
                EventKind::ServeLookupEnd {
                    tag,
                    shard: 0,
                    endpoint: "billings/centurylink".into(),
                    outcome: OutcomeCode::Plans,
                    cache_hit,
                    duration_ms: duration,
                },
            )
        };
        // Arrival 0 served immediately (10ms); arrival 5 queues behind it
        // until 10, served by 25 → 5ms wait, 15ms service.
        let set = feed(&[
            lookup(1, 10, 10, false),
            lookup(2, 25, 20, true),
            ev(25, EventKind::CampaignEnd { makespan_ms: 25 }),
        ]);
        let slow = &set.global[0];
        assert_eq!(slow.tag, 2);
        let kinds: Vec<(SpanKind, u64)> = slow
            .root
            .children
            .iter()
            .map(|s| (s.kind, s.duration_ms()))
            .collect();
        assert_eq!(
            kinds,
            vec![(SpanKind::QueueWait, 5), (SpanKind::CacheLookup, 15)]
        );
        assert_eq!(slow.root.children[1].label, "cache_hit");
    }

    #[test]
    fn batch_members_share_their_batch_queue_wait() {
        let lookup = |tag: u64, done: u64, duration: u64| {
            ev(
                done,
                EventKind::ServeLookupEnd {
                    tag,
                    shard: 3,
                    endpoint: "billings/centurylink".into(),
                    outcome: OutcomeCode::Plans,
                    cache_hit: false,
                    duration_ms: duration,
                },
            )
        };
        // One batch: same (done, duration) twice on one shard.
        let set = feed(&[
            lookup(1, 100, 40),
            lookup(2, 100, 40),
            ev(100, EventKind::CampaignEnd { makespan_ms: 100 }),
        ]);
        let waits: Vec<u64> = [&set.global[0], &set.global[1]]
            .iter()
            .map(|t| {
                t.root
                    .children
                    .iter()
                    .filter(|s| s.kind == SpanKind::QueueWait)
                    .map(Span::duration_ms)
                    .sum()
            })
            .collect();
        assert_eq!(waits[0], waits[1]);
    }

    #[test]
    fn out_of_order_emission_is_reordered_before_folding() {
        // AttemptEnd emitted before an earlier-stamped AttemptBegin of
        // another job: the heap must restore time order.
        let mut asm = TraceAssembler::new(2);
        asm.observe(&ev(
            0,
            EventKind::JobBegin {
                tag: 1,
                endpoint: "isp/city".into(),
            },
        ));
        asm.observe(&ev(
            0,
            EventKind::JobBegin {
                tag: 2,
                endpoint: "isp/city".into(),
            },
        ));
        asm.observe(&attempt_begin(1, 1, 0));
        // Stamped late, emitted early.
        asm.observe(&attempt_end(1, 1, 9_000, 9_000, OutcomeCode::Plans));
        asm.observe(&attempt_begin(2, 1, 1_000));
        asm.observe(&attempt_end(2, 1, 3_000, 2_000, OutcomeCode::Plans));
        asm.observe(&ev(
            3_000,
            EventKind::JobEnd {
                tag: 2,
                outcome: OutcomeCode::Plans,
                attempts: 1,
                dead_lettered: false,
            },
        ));
        asm.observe(&ev(
            9_000,
            EventKind::JobEnd {
                tag: 1,
                outcome: OutcomeCode::Plans,
                attempts: 1,
                dead_lettered: false,
            },
        ));
        asm.observe(&ev(9_000, EventKind::CampaignEnd { makespan_ms: 9_000 }));
        let set = asm.finish();
        assert_eq!(set.global.len(), 2);
        assert_eq!(set.global[0].tag, 1, "slowest first");
        assert_eq!(set.global[0].duration_ms(), 9_000);
    }

    #[test]
    fn exemplar_csv_is_the_joined_trace_ids() {
        let mut asm = TraceAssembler::new(2);
        assert_eq!(asm.exemplar_csv(), "");
        asm.ingest(
            0,
            &EventKind::JobBegin {
                tag: 0x2a,
                endpoint: "centurylink".into(),
            },
        );
        asm.ingest(
            5_000,
            &EventKind::JobEnd {
                tag: 0x2a,
                outcome: OutcomeCode::Plans,
                attempts: 1,
                dead_lettered: false,
            },
        );
        assert_eq!(asm.exemplar_csv(), "centurylink:2a@0");
    }
}
